"""``repro verify`` — whole-program SPMD verification at lint time.

The interprocedural tier above :mod:`repro.sanitize.lint`: where the
lint inspects one function at a time, the verifier loads the whole
program (:mod:`repro.sanitize.callgraph`), finds every function that
takes or carries a communicator, and symbolically executes each one per
abstract rank (:mod:`repro.sanitize.absint`).  The resulting per-rank
collective/point-to-point traces are then *matched against each other*
the same way the runtime sanitizer matches live ranks:

``collective-mismatch``
    The ranks' next collectives disagree in op or root signature, or
    one rank reaches a collective that another rank never calls — the
    cross-function generalization of ``rank-divergent-collective``.

``deadlock``
    Every rank is blocked (receives with no matching send in flight,
    mutually-waiting collectives) — the classic recv/recv cycle, found
    without running the program.

``tag-mismatch``
    A rank blocks in a receive while the matching sender used a
    different tag — including tags threaded through helper calls as
    constants, which the per-function lint cannot see.

``message-leak``
    All ranks terminate but a sent message was never received.

``use-after-move``
    A buffer moved by ``send(..., copy=False)`` is used afterwards —
    tracked through aliases, across call boundaries, and through
    returns.

Cross-rank findings are only reported from **complete** traces (see
:mod:`repro.sanitize.absint`): when the interpreter had to guess about
communication, it stays silent rather than guessing wrong.  Ownership
findings are local facts and always surface.  ``# repro-lint:`` pragmas
suppress verifier findings exactly as they do lint findings.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .absint import CommEvent, Trace, run_rank
from .callgraph import FunctionInfo, Project, load_project
from .diagnostics import ERROR, Diagnostic, Suppressions
from .lint import _is_collective_call, _TAG_POSITIONS, default_lint_roots

__all__ = [
    "EntryReport",
    "VerifyResult",
    "verify_paths",
    "verify_project",
    "match_traces",
    "comm_graph_json",
    "comm_graph_dot",
    "write_comm_graph",
    "default_verify_roots",
]

DEFAULT_WORLD_SIZE = 2


@dataclass
class EntryReport:
    """One analyzed communicator-taking function."""

    entry: FunctionInfo
    traces: list[Trace]
    findings: list[Diagnostic] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return all(t.complete for t in self.traces)


@dataclass
class VerifyResult:
    """Whole-program verification outcome: per-driver reports + findings."""

    project: Project
    reports: list[EntryReport]
    findings: list[Diagnostic]

    @property
    def functions_analyzed(self) -> int:
        return len(self.reports)


# ----------------------------------------------------------------------
# Cross-rank trace matching
# ----------------------------------------------------------------------
def match_traces(traces: Sequence[Trace],
                 entry: FunctionInfo) -> list[Diagnostic]:
    """Simulate the ranks' traces against each other, MUST-style.

    Sends are buffered (eager), receives block until a matching send
    is in flight, collectives rendezvous; the simulation runs until all
    ranks terminate or no rank can advance, and the stuck state is
    diagnosed.  Only called on complete traces.
    """
    world = len(traces)
    pc = [0] * world
    buffered: dict[tuple[int, int, int], list[CommEvent]] = {}

    def current(r: int) -> CommEvent | None:
        evs = traces[r].events
        return evs[pc[r]] if pc[r] < len(evs) else None

    findings: list[Diagnostic] = []

    def emit(kind: str, message: str, site, rank=None) -> None:
        findings.append(Diagnostic(
            kind=kind, message=message, severity=ERROR,
            file=site.file if site else entry.file,
            line=site.line if site else entry.line,
            rank=rank,
            extra={"entry": entry.qualname},
        ))

    for _ in range(sum(len(t.events) for t in traces) * 2 + 8):
        progress = False
        for r in range(world):
            ev = current(r)
            if ev is None:
                continue
            if ev.kind == "send":
                buffered.setdefault((r, ev.peer, ev.tag), []).append(ev)
                pc[r] += 1
                progress = True
            elif ev.kind == "recv":
                queue = buffered.get((ev.peer, r, ev.tag))
                if queue:
                    queue.pop(0)
                    pc[r] += 1
                    progress = True
            # collectives rendezvous below
        colls = {r: current(r) for r in range(world)
                 if current(r) is not None
                 and current(r).kind == "collective"}
        if len(colls) == world:
            sigs = {ev.signature() for ev in colls.values()}
            if len(sigs) == 1:
                for r in range(world):
                    pc[r] += 1
                progress = True
            else:
                by_sig: dict[tuple, list[int]] = {}
                for r, ev in colls.items():
                    by_sig.setdefault(ev.signature(), []).append(r)
                desc = "; ".join(
                    f"rank{'s' if len(rs) > 1 else ''} "
                    f"{','.join(map(str, rs))} at {sig[0]}()"
                    + (f" root={sig[1]}" if sig[1] is not None else "")
                    + f" ({colls[rs[0]].site})"
                    for sig, rs in sorted(by_sig.items(),
                                          key=lambda kv: kv[1]))
                emit("collective-mismatch",
                     f"ranks disagree on the next collective: {desc}",
                     next(iter(colls.values())).site)
                return findings
        if progress:
            continue
        # No rank advanced: diagnose the stuck state.
        if all(current(r) is None for r in range(world)):
            for (src, dst, tag), queue in sorted(buffered.items()):
                for ev in queue:
                    emit("message-leak",
                         f"message sent by rank {src} to rank {dst} with "
                         f"tag {tag} at {ev.site} is never received",
                         ev.site, rank=src)
            return findings
        blocked_recvs = {r: current(r) for r in range(world)
                         if current(r) is not None
                         and current(r).kind == "recv"}
        for r, ev in blocked_recvs.items():
            wrong_tags = sorted(
                tag for (src, dst, tag), queue in buffered.items()
                if src == ev.peer and dst == r and queue and tag != ev.tag)
            if wrong_tags:
                send_site = buffered[(ev.peer, r, wrong_tags[0])][0].site
                emit("tag-mismatch",
                     f"rank {r} blocks in {ev.op}(source={ev.peer}, "
                     f"tag={ev.tag}) at {ev.site} while rank {ev.peer} "
                     f"sent tag{'s' if len(wrong_tags) > 1 else ''} "
                     f"{', '.join(map(str, wrong_tags))} at {send_site}; "
                     f"the tags never match",
                     ev.site, rank=r)
                return findings
        if colls and blocked_recvs:
            # Collective/p2p interlock.
            parts = [
                f"rank {r} waits at {ev.op}() ({ev.site})"
                for r, ev in sorted(colls.items())
            ] + [
                f"rank {r} blocks in {ev.op}(source={ev.peer}, "
                f"tag={ev.tag}) ({ev.site})"
                for r, ev in sorted(blocked_recvs.items())
            ]
            emit("deadlock",
                 "no rank can advance: " + "; ".join(parts),
                 next(iter(blocked_recvs.values())).site)
            return findings
        if colls:
            # Some ranks wait at a collective the others never call.
            waiting = sorted(colls)
            finished = [r for r in range(world) if current(r) is None]
            ev = colls[waiting[0]]
            emit("collective-mismatch",
                 f"rank{'s' if len(waiting) > 1 else ''} "
                 f"{','.join(map(str, waiting))} call{'s' if len(waiting) == 1 else ''} "
                 f"{ev.op}() at {ev.site} but rank"
                 f"{'s' if len(finished) > 1 else ''} "
                 f"{','.join(map(str, finished))} "
                 f"never reach{'es' if len(finished) == 1 else ''} a "
                 f"matching collective",
                 ev.site)
            return findings
        if blocked_recvs:
            parts = [
                f"rank {r} blocks in {ev.op}(source={ev.peer}, "
                f"tag={ev.tag}) at {ev.site}"
                for r, ev in sorted(blocked_recvs.items())
            ]
            emit("deadlock",
                 ("receive cycle: " if len(blocked_recvs) == world
                  else "unmatched receive: ") + "; ".join(parts),
                 next(iter(blocked_recvs.values())).site)
            return findings
        return findings
    return findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _entry_functions(project: Project) -> list[FunctionInfo]:
    """Comm-taking call-graph roots: the drivers.

    A helper that only ever runs inside a driver is analyzed *through*
    the driver's symbolic execution, where its sends and receives meet
    their real partners; analyzing it standalone would misread, say, a
    send-only shard-distribution helper as a message leak.  Functions
    nobody in the project calls (entry drivers, exported API) are the
    roots the matcher can judge as whole programs.
    """
    called = {e.callee for e in project.edges if e.caller != e.callee}
    entries = [f for f in project.functions.values()
               if f.takes_comm() and f.qualname not in called]
    entries.sort(key=lambda f: (f.file, f.line))
    return entries


def verify_project(project: Project,
                   world_size: int = DEFAULT_WORLD_SIZE,
                   entries: Sequence[str] | None = None) -> VerifyResult:
    """Symbolically execute and cross-check every entry function."""
    if entries is not None:
        wanted = set(entries)
        selected = sorted(
            (f for f in project.functions.values()
             if f.takes_comm()
             and (f.qualname in wanted or f.name in wanted)),
            key=lambda f: (f.file, f.line))
    else:
        selected = _entry_functions(project)
    reports: list[EntryReport] = []
    all_findings: list[Diagnostic] = []
    seen: set[tuple] = set()

    def add(diags: Iterable[Diagnostic]) -> None:
        for d in diags:
            key = (d.kind, d.file, d.line)
            if key not in seen:
                seen.add(key)
                all_findings.append(d)

    for info in selected:
        traces: list[Trace] = []
        local: list[Diagnostic] = []
        for rank in range(world_size):
            trace, findings = run_rank(project, info, rank, world_size)
            traces.append(trace)
            local.extend(findings)
        report = EntryReport(entry=info, traces=traces)
        report.findings.extend(local)
        if report.complete:
            report.findings.extend(match_traces(traces, info))
        reports.append(report)
        add(report.findings)

    all_findings = _apply_pragmas(all_findings)
    all_findings.sort(key=lambda d: (d.file or "", d.line or 0, d.kind))
    return VerifyResult(project=project, reports=reports,
                        findings=all_findings)


def _apply_pragmas(findings: list[Diagnostic]) -> list[Diagnostic]:
    by_file: dict[str, Suppressions] = {}
    out = []
    for d in findings:
        if d.file and d.file not in by_file:
            try:
                with open(d.file, encoding="utf-8") as f:
                    by_file[d.file] = Suppressions(f.read())
            except OSError:
                by_file[d.file] = Suppressions("")
        sup = by_file.get(d.file)
        if sup is not None and d.line and sup.suppressed(d.kind, d.line):
            continue
        out.append(d)
    return out


def default_verify_roots(cwd: str | None = None) -> list[str]:
    """Same convention as the lint: the repro package plus examples/."""
    return default_lint_roots(cwd)


def verify_paths(paths: Iterable[str] | None = None,
                 world_size: int = DEFAULT_WORLD_SIZE,
                 entries: Sequence[str] | None = None) -> VerifyResult:
    """Load, link, and verify files and directory trees."""
    if paths is None:
        paths = default_verify_roots()
    project = load_project(paths)
    return verify_project(project, world_size=world_size, entries=entries)


# ----------------------------------------------------------------------
# Comm-graph artifact
# ----------------------------------------------------------------------
def _comm_ops_of(info: FunctionInfo) -> list[dict]:
    """Syntactic communication operations of one function body."""
    ops = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        coll = _is_collective_call(node)
        if coll is not None:
            ops.append({"op": coll, "kind": "collective",
                        "line": node.lineno})
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _TAG_POSITIONS:
            entry = {"op": func.attr, "kind": "p2p", "line": node.lineno}
            for kw in node.keywords:
                if (kw.arg == "tag" and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, int)):
                    entry["tag"] = kw.value.value
            ops.append(entry)
    return ops


def comm_graph_json(project: Project, entry: FunctionInfo,
                    world_size: int = DEFAULT_WORLD_SIZE,
                    report: EntryReport | None = None) -> dict:
    """The comm-graph artifact for one driver, as JSON-ready data."""
    reach = project.reachable_from(entry.qualname)
    nodes = []
    for qual in sorted(reach):
        info = project.functions.get(qual)
        if info is None:
            continue
        nodes.append({
            "qualname": qual,
            "file": info.file,
            "line": info.line,
            "takes_comm": info.takes_comm(),
            "rank_sensitive": info.rank_sensitive,
            "comm_ops": _comm_ops_of(info),
        })
    edges = sorted(
        {(e.caller, e.callee, e.line) for e in project.edges
         if e.caller in reach and e.callee in reach})
    data = {
        "entry": entry.qualname,
        "world_size": world_size,
        "nodes": nodes,
        "edges": [{"caller": c, "callee": t, "line": ln}
                  for c, t, ln in edges],
    }
    if report is not None:
        data["traces"] = {
            str(t.rank): {
                "complete": t.complete,
                "notes": t.notes,
                "events": [
                    {"kind": ev.kind, "op": ev.op, "root": ev.root,
                     "peer": ev.peer, "tag": ev.tag, "moved": ev.moved,
                     "site": str(ev.site)}
                    for ev in t.events
                ],
            }
            for t in report.traces
        }
    return data


def comm_graph_dot(project: Project, entry: FunctionInfo) -> str:
    """The reachable call graph as Graphviz DOT, comm ops annotated."""
    reach = project.reachable_from(entry.qualname)
    lines = [
        f'digraph "{entry.qualname}" {{',
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for qual in sorted(reach):
        info = project.functions.get(qual)
        if info is None:
            continue
        ops = sorted({o["op"] for o in _comm_ops_of(info)})
        label = qual
        if ops:
            label += "\\n" + ", ".join(ops)
        attrs = [f'label="{label}"']
        if qual == entry.qualname:
            attrs.append("style=bold")
        if info.rank_sensitive:
            attrs.append('color="firebrick"')
        lines.append(f'  "{qual}" [{", ".join(attrs)}];')
    for caller, callee in sorted(
            {(e.caller, e.callee) for e in project.edges
             if e.caller in reach and e.callee in reach}):
        lines.append(f'  "{caller}" -> "{callee}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_comm_graph(project: Project, entry: FunctionInfo, out_dir: str,
                     world_size: int = DEFAULT_WORLD_SIZE,
                     report: EntryReport | None = None) -> tuple[str, str]:
    """Write ``<entry>.dot`` and ``<entry>.json``; returns the paths."""
    os.makedirs(out_dir, exist_ok=True)
    base = entry.qualname.replace("/", "_")
    dot_path = os.path.join(out_dir, f"{base}.dot")
    json_path = os.path.join(out_dir, f"{base}.json")
    with open(dot_path, "w", encoding="utf-8") as f:
        f.write(comm_graph_dot(project, entry))
    with open(json_path, "w", encoding="utf-8") as f:
        json.dump(comm_graph_json(project, entry, world_size, report), f,
                  indent=2, sort_keys=True)
        f.write("\n")
    return dot_path, json_path
