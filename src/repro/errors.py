"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` on wrong argument types
from NumPy, etc.) propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "DistributionError",
    "CommunicatorError",
    "ConvergenceError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or tensor has an incompatible shape for the operation."""


class DistributionError(ReproError, ValueError):
    """A distributed object is laid out incompatibly with the operation.

    Raised, for example, when a processor grid does not divide work the
    way an algorithm requires, or when two distributed tensors on
    different grids are combined.
    """


class CommunicatorError(ReproError, RuntimeError):
    """Misuse of the simulated MPI layer (bad rank, dead communicator...)."""


class ConvergenceError(ReproError, RuntimeError):
    """A numerical routine failed to converge."""


class ConfigurationError(ReproError, ValueError):
    """Invalid configuration of an algorithm or machine model."""
