"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` on wrong argument types
from NumPy, etc.) propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "DistributionError",
    "CommunicatorError",
    "ConvergenceError",
    "ConfigurationError",
    "SanitizerError",
    "CollectiveMismatchError",
    "DeadlockError",
    "UseAfterMoveError",
    "MessageLeakError",
    "RankFailedError",
    "RankKilledError",
    "CommRevokedError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or tensor has an incompatible shape for the operation."""


class DistributionError(ReproError, ValueError):
    """A distributed object is laid out incompatibly with the operation.

    Raised, for example, when a processor grid does not divide work the
    way an algorithm requires, or when two distributed tensors on
    different grids are combined.
    """


class CommunicatorError(ReproError, RuntimeError):
    """Misuse of the simulated MPI layer (bad rank, dead communicator...)."""


class ConvergenceError(ReproError, RuntimeError):
    """A numerical routine failed to converge."""


class ConfigurationError(ReproError, ValueError):
    """Invalid configuration of an algorithm or machine model."""


class RankFailedError(CommunicatorError):
    """A communication partner finalized or died while we were blocked on it.

    Raised instead of deadlocking when a blocking receive (including the
    exchanges inside ``barrier``) waits on a rank that has already
    returned from the SPMD function or raised.  Carries the
    :class:`~repro.sanitize.Diagnostic` describing the wait in
    ``diagnostic`` when the sanitizer is active.
    """

    def __init__(self, message: str, diagnostic=None) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic


class WorldAbortedError(CommunicatorError):
    """The SPMD world was aborted while this rank was blocked.

    Always a *secondary* symptom: some other rank raised (or timed out)
    first, the launcher set the world abort flag, and this rank's
    blocking operation woke on it.  The launcher re-raises every other
    error class ahead of this one so callers see the root cause.
    """


class RankKilledError(CommunicatorError):
    """An injected fault (see :mod:`repro.faults`) crashed this rank.

    Raised inside the victim rank by the fault injector when a
    ``CrashRule`` fires.  The launcher treats it as a *simulated*
    failure: the rank is marked failed so partners observe
    :class:`RankFailedError`, but the world is not aborted — surviving
    ranks get the chance to shrink and recover.  It is never re-raised
    to the caller of :func:`repro.mpi.run_spmd` when fault injection is
    active; inspect ``SpmdResult.failed_ranks`` instead.
    """


class CommRevokedError(RankFailedError):
    """The communicator epoch was revoked after a rank failure.

    The analogue of ULFM's ``MPI_ERR_REVOKED``: once any survivor calls
    :meth:`Communicator.revoke`, every operation on communicators of the
    current epoch (the world and all sub-communicators split from it)
    raises this error, releasing ranks blocked in exchanges with *live*
    partners that have already left for recovery.  Derives from
    :class:`RankFailedError` so ``except RankFailedError`` recovery
    loops catch both the original detection and the revocation echo.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint could not be saved, validated, or recovered."""


class SanitizerError(ReproError, RuntimeError):
    """Base class for correctness violations found by the SPMD sanitizer.

    Deliberately *not* a :class:`CommunicatorError`: the launcher treats
    CommunicatorError as a secondary symptom (a rank unblocked by a world
    abort), while sanitizer findings are the root cause and take priority
    when re-raised from :func:`repro.mpi.run_spmd`.

    ``diagnostics`` holds the :class:`~repro.sanitize.Diagnostic` records
    (severity, kind, rank, ``file:line``) behind the failure.
    """

    def __init__(self, message: str, diagnostics=()) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class CollectiveMismatchError(SanitizerError):
    """Ranks disagreed on which collective to run (or its signature)."""


class DeadlockError(SanitizerError):
    """A cycle in the wait-for graph, or a global stall, was detected."""


class UseAfterMoveError(SanitizerError):
    """A buffer was mutated after being relinquished by a zero-copy send."""


class MessageLeakError(SanitizerError):
    """Messages were still undelivered when the SPMD world finalized."""
