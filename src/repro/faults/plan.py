"""Declarative, seeded fault plans for the simulated SPMD runtime.

A :class:`FaultPlan` describes *what goes wrong* in a run — rank
crashes, message-level faults (drop/delay/duplicate/corrupt), and
transient numerical corruption inside named linalg kernels — without
saying anything about *when the code runs*.  The plan is installed via
``run_spmd(faults=plan)``; the :class:`~repro.faults.FaultInjector`
built from it draws every probabilistic decision from per-rank
``numpy`` generator streams keyed by ``(seed, rank)``, so the same plan
and seed reproduce the identical fault schedule on every replay (the
runtime's message schedules are deterministic per rank, which makes the
draw sequence deterministic too).

:class:`Resilience` is the other half of the contract: the tolerance
knobs (retry budget, backoff, checksums) the runtime uses to survive
what the plan injects.  Keeping them separate means a plan can be run
*without* tolerance to demonstrate the failure mode, then *with* it to
demonstrate the recovery — same seed, same faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigurationError

__all__ = [
    "CrashRule",
    "MessageFaultRule",
    "KernelFaultRule",
    "NetworkFaultRule",
    "FaultPlan",
    "Resilience",
    "FaultEvent",
    "MESSAGE_FAULT_KINDS",
    "KERNEL_FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
]

MESSAGE_FAULT_KINDS = ("drop", "delay", "duplicate", "corrupt")
KERNEL_FAULT_KINDS = ("nan", "inf")
NETWORK_FAULT_KINDS = ("connect_refused", "reset", "partition", "slow")


@dataclass(frozen=True)
class CrashRule:
    """Kill one rank after its ``at_op``-th communicator operation.

    ``at_op`` counts the rank's own point-to-point sends and receives
    (including those inside collectives), so "mid-mode" crashes are
    expressed as an operation count, not wall time — deterministic by
    construction.  The victim raises
    :class:`~repro.errors.RankKilledError` from inside the operation.

    ``repeat`` extends the rule across *incarnations* of the rank under
    elastic recovery (``recover="replace"``): each respawned
    replacement counts its operations from zero and is killed again at
    ``at_op`` until the rule has fired ``repeat`` times in total.  The
    default (1) kills only the original incarnation, so replacement
    succeeds on the first try; ``repeat=2`` kills the replacement too.
    """

    rank: int
    at_op: int
    repeat: int = 1

    def validate(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"crash rule rank must be >= 0, got {self.rank}")
        if self.at_op < 1:
            raise ConfigurationError(f"crash rule at_op must be >= 1, got {self.at_op}")
        if self.repeat < 1:
            raise ConfigurationError(
                f"crash rule repeat must be >= 1, got {self.repeat}"
            )


@dataclass(frozen=True)
class MessageFaultRule:
    """Probabilistic per-message fault on the (simulated) wire.

    Each outgoing message that matches the predicate draws one uniform
    variate from the *sender's* stream; the rule fires when the draw is
    below ``prob``.  The first matching rule that fires wins.

    Predicate fields (``None`` matches everything):

    ``tags``
        Exact tags, or the strings ``"user"`` (tag >= 0) /
        ``"collectives"`` (the runtime's negative internal tag space).
    ``min_bytes`` / ``max_bytes``
        Inclusive bounds on the modeled payload size.
    ``senders``
        World ranks whose outgoing messages are eligible.

    Kinds: ``"drop"`` (message lost; retransmitted when
    :class:`Resilience` is active), ``"delay"`` (logical-clock stall of
    ``delay_seconds`` before delivery), ``"duplicate"`` (delivered
    twice; deduplicated by sequence number under resilience),
    ``"corrupt"`` (one byte of an ndarray payload is bit-flipped in a
    *copy*; detected and discarded when checksums are enabled).
    """

    kind: str
    prob: float
    tags: object = None
    min_bytes: int = 0
    max_bytes: int | None = None
    senders: Sequence[int] | None = None
    delay_seconds: float = 1e-3

    def validate(self) -> None:
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise ConfigurationError(
                f"message fault kind must be one of {MESSAGE_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if not 0.0 <= self.prob <= 1.0:
            raise ConfigurationError(f"prob must be in [0, 1], got {self.prob}")
        if isinstance(self.tags, str) and self.tags not in ("user", "collectives"):
            raise ConfigurationError(
                f"tags must be 'user', 'collectives', or a tag collection, "
                f"got {self.tags!r}"
            )

    def matches(self, sender: int, tag: int, nbytes: int) -> bool:
        if self.senders is not None and sender not in self.senders:
            return False
        if self.tags is not None:
            if self.tags == "user":
                if tag < 0:
                    return False
            elif self.tags == "collectives":
                if tag >= 0:
                    return False
            elif tag not in self.tags:
                return False
        if nbytes < self.min_bytes:
            return False
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return False
        return True


@dataclass(frozen=True)
class KernelFaultRule:
    """Transient numerical corruption in one named linalg kernel call.

    ``kernel`` names the hook point (``"gesvd"``, ``"eigh"``,
    ``"gelq"``, ``"geqr"``); ``call_index`` is the 0-based per-rank call
    count at which the fault fires — count-based, not probabilistic, so
    replays corrupt the same call.  ``ranks=None`` (the default) fires
    on *every* rank at that call index, matching the replicated-SVD
    execution model where each rank computes the same small
    decomposition redundantly — corrupting all copies keeps the
    replicated factors bitwise identical, so the fault tests the
    numerical guards rather than manufacturing divergence the sanitizer
    would (correctly) flag.
    """

    kernel: str
    call_index: int
    kind: str = "nan"
    ranks: Sequence[int] | None = None

    def validate(self) -> None:
        if self.kind not in KERNEL_FAULT_KINDS:
            raise ConfigurationError(
                f"kernel fault kind must be one of {KERNEL_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.call_index < 0:
            raise ConfigurationError(
                f"call_index must be >= 0, got {self.call_index}"
            )


@dataclass(frozen=True)
class NetworkFaultRule:
    """Deterministic fault at the *socket layer* of a networked backend.

    These rules are injected by the transport's connection machinery
    (``backend="sockets"``), not the communicator, and they are
    count-based rather than probabilistic: connection attempts and
    outgoing data frames per rank are deterministic sequences, so a
    trigger expressed as "the N-th attempt/frame" replays identically
    with no variate draws at all.  In-process backends (threads, procs)
    have no sockets and ignore them.

    Kinds:

    ``"connect_refused"``
        The rank's first ``attempts`` connection attempts to the master
        fail with ``ConnectionRefusedError``; the transport's
        :class:`~repro.mpi.transport.net.RetryPolicy` must ride them
        out.  Models a master that is still binding, or a transient
        SYN drop.
    ``"reset"``
        The rank's data link is hard-closed (RST) right before its
        ``after_frames``-th outgoing frame; the transport reconnects
        with backoff and retransmits.  Models a mid-stream TCP reset.
    ``"partition"``
        The rank's links go silently dark before its
        ``after_frames``-th outgoing frame — no FIN, no RST, no
        heartbeats; the master's liveness deadline must detect it and
        fail the rank so survivors can revoke/shrink.  ``ranks`` names
        the set cut off from the rest of the world.
    ``"slow"``
        Every outgoing frame pays ``latency_seconds`` plus
        ``nbytes / bytes_per_second`` of real wall latency — link
        shaping for overhead and timeout testing.

    ``ranks=None`` applies the rule to every rank.
    """

    kind: str
    ranks: Sequence[int] | None = None
    attempts: int = 1
    after_frames: int = 1
    latency_seconds: float = 0.0
    bytes_per_second: float | None = None

    def validate(self) -> None:
        if self.kind not in NETWORK_FAULT_KINDS:
            raise ConfigurationError(
                f"network fault kind must be one of {NETWORK_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "connect_refused" and self.attempts < 1:
            raise ConfigurationError(
                f"attempts must be >= 1, got {self.attempts}"
            )
        if self.kind in ("reset", "partition") and self.after_frames < 1:
            raise ConfigurationError(
                f"after_frames must be >= 1, got {self.after_frames}"
            )
        if self.kind == "slow":
            if self.latency_seconds < 0:
                raise ConfigurationError("latency_seconds must be >= 0")
            if self.bytes_per_second is not None and self.bytes_per_second <= 0:
                raise ConfigurationError("bytes_per_second must be positive")
            if self.latency_seconds == 0 and self.bytes_per_second is None:
                raise ConfigurationError(
                    "a 'slow' rule needs latency_seconds and/or "
                    "bytes_per_second — with neither it shapes nothing"
                )

    def applies_to(self, rank: int) -> bool:
        return self.ranks is None or rank in self.ranks


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of injected faults for one SPMD run.

    An empty plan is valid and useful: the injector still counts
    operations per rank (``FaultInjector.ops_per_rank``), which is how
    the chaos driver calibrates "mid-run" crash points.
    """

    seed: int = 0
    crashes: tuple[CrashRule, ...] = ()
    messages: tuple[MessageFaultRule, ...] = ()
    kernels: tuple[KernelFaultRule, ...] = ()
    network: tuple[NetworkFaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "messages", tuple(self.messages))
        object.__setattr__(self, "kernels", tuple(self.kernels))
        object.__setattr__(self, "network", tuple(self.network))
        for rule in (*self.crashes, *self.messages, *self.kernels,
                     *self.network):
            rule.validate()
        by_rank = [c.rank for c in self.crashes]
        if len(by_rank) != len(set(by_rank)):
            raise ConfigurationError("at most one crash rule per rank")


@dataclass(frozen=True)
class Resilience:
    """Tolerance configuration for a lossy (injected-fault) world.

    ``max_retries``
        Send attempts beyond the first before the sender gives up and
        raises :class:`~repro.errors.CommunicatorError`.
    ``backoff_base``
        Logical seconds charged to the sender's clock for the first
        retransmission; doubles per attempt (exponential backoff).
    ``checksums``
        Attach a payload checksum to every message; receivers discard
        envelopes whose payload no longer matches (bit corruption) and
        wait for the retransmission.
    ``poll_interval``
        Seconds between dead-partner/revocation polls while blocked in
        a receive or a rendezvous (split/shrink).
    """

    max_retries: int = 16
    backoff_base: float = 1e-6
    checksums: bool = True
    poll_interval: float = 0.05

    def validate(self) -> None:
        if self.max_retries < 1:
            raise ConfigurationError("max_retries must be >= 1")
        if self.poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")

    def retry_policy(self):
        """The sender-retry schedule as a transport RetryPolicy.

        Uncapped exponential backoff from ``backoff_base`` with zero
        jitter: the delays are charged to the *logical* clock, so they
        must replay bit-identically — randomization belongs to
        wall-clock consumers (socket connects), not here.
        """
        # Imported lazily: repro.mpi.transport pulls in the injector for
        # its rank-program hooks, so a module-level import here would
        # close that cycle.
        from ..mpi.transport.net import RetryPolicy

        return RetryPolicy(
            max_retries=self.max_retries, backoff_base=self.backoff_base,
            backoff_cap=None, jitter=0.0,
        )


# Default event-trace capacity per run; a fuse against pathological
# plans (e.g. prob=1 drops with a large retry budget) ballooning memory.
DEFAULT_TRACE_LIMIT = 100_000


@dataclass
class FaultEvent:
    """One injected fault occurrence (for replay verification)."""

    rank: int
    op_index: int
    kind: str  # "crash" | message kind | "kernel:<name>"
    detail: tuple = field(default_factory=tuple)

    def as_tuple(self) -> tuple:
        return (self.rank, self.op_index, self.kind, tuple(self.detail))
