"""Worker-side engine for deterministic socket-layer fault injection.

A :class:`NetworkFaultState` lives inside one worker of the sockets
backend and is consulted at exactly two choke points of the connection
machinery:

* :meth:`on_connect_attempt` — before each real TCP ``connect()``;
* :meth:`on_frame` — before each outgoing data frame.

Both sites are deterministic per rank (connection attempts and data
frames happen in program order on the worker's own threads), so rules
expressed as "the N-th attempt/frame" replay identically with no random
draws.  Heartbeat and bookkeeping frames are *not* counted toward frame
triggers — their cadence is wall-clock driven and would make replays
diverge — though slow-link shaping still delays them like any real
bytes on the wire.

Every fault the engine fires is buffered as a
:class:`~repro.faults.plan.FaultEvent` tuple; the transport ships the
buffer to the master in-band (a ``netfault`` frame ahead of the
triggering action) where it is absorbed into the run's
:class:`~repro.faults.FaultInjector` trace, keeping ``trace_key()``
replay verification uniform across message- and network-level faults.
"""

from __future__ import annotations

import time
from typing import Sequence

from .plan import FaultEvent, NetworkFaultRule

__all__ = ["NetworkFaultState"]


class NetworkFaultState:
    """Per-rank deterministic trigger state for network fault rules.

    Thread-compat note: the sockets worker consults this from its send
    pump thread (frames) and its connect path (attempts), which never
    overlap in time, so no locking is needed.
    """

    def __init__(self, rules: Sequence[NetworkFaultRule], rank: int) -> None:
        self.rank = rank
        self.connect_attempts = 0
        self.frames = 0
        self.dark = False
        self._events: list[tuple] = []
        self._refusals: list[NetworkFaultRule] = []
        self._resets: list[NetworkFaultRule] = []
        self._partitions: list[NetworkFaultRule] = []
        self._slow: list[NetworkFaultRule] = []
        self._slow_recorded = False
        for rule in rules:
            if not rule.applies_to(rank):
                continue
            {"connect_refused": self._refusals,
             "reset": self._resets,
             "partition": self._partitions,
             "slow": self._slow}[rule.kind].append(rule)

    @property
    def active(self) -> bool:
        """Whether any rule applies to this rank at all."""
        return bool(self._refusals or self._resets
                    or self._partitions or self._slow)

    def _record(self, op_index: int, kind: str, detail: tuple) -> None:
        self._events.append(
            FaultEvent(self.rank, op_index, kind, tuple(detail)).as_tuple()
        )

    def drain_events(self) -> list[tuple]:
        """Buffered fault-event tuples, clearing the buffer."""
        out, self._events = self._events, []
        return out

    # -- connect path --------------------------------------------------
    def on_connect_attempt(self, purpose: str) -> None:
        """Called before each real TCP connect; raises to simulate refusal.

        Refusal budgets are counted across *all* connections the rank
        opens (attempt numbering is global per rank), so a rule with
        ``attempts=2`` refuses the first two connects the rank ever
        makes, whichever link they belong to.
        """
        self.connect_attempts += 1
        remaining = sum(r.attempts for r in self._refusals)
        if self.connect_attempts <= remaining:
            self._record(self.connect_attempts, "net:connect_refused",
                         (purpose,))
            raise ConnectionRefusedError(
                f"injected: connection refused (attempt "
                f"{self.connect_attempts} of {remaining} refused)"
            )

    # -- frame path ----------------------------------------------------
    def on_frame(self, nbytes: int, *, countable: bool = True) -> str:
        """Decide the fate of the next outgoing frame.

        Returns one of:

        ``"send"``
            Deliver normally (possibly after slow-link shaping).
        ``"reset"``
            Hard-close the data link with RST *instead of* sending; the
            caller reconnects and retransmits this frame.
        ``"dark"``
            Enter (or remain in) silent partition: drop the frame, stop
            heartbeats, never speak again.

        ``countable`` is True only for application ``put`` frames; the
        heartbeat/bookkeeping cadence must not advance the trigger
        counters (see module docstring).
        """
        if self.dark:
            return "dark"
        self._shape(nbytes)
        if not countable:
            return "send"
        self.frames += 1
        for rule in self._partitions:
            if self.frames == rule.after_frames:
                self.dark = True
                self._record(self.frames, "net:partition",
                             tuple(sorted(rule.ranks))
                             if rule.ranks is not None else ("all",))
                return "dark"
        for rule in self._resets:
            if self.frames == rule.after_frames:
                self._record(self.frames, "net:reset", (nbytes,))
                return "reset"
        return "send"

    def _shape(self, nbytes: int) -> None:
        delay = 0.0
        for rule in self._slow:
            delay += rule.latency_seconds
            if rule.bytes_per_second is not None:
                delay += nbytes / rule.bytes_per_second
        if delay > 0.0:
            if not self._slow_recorded:
                self._slow_recorded = True
                self._record(0, "net:slow",
                             tuple((r.latency_seconds, r.bytes_per_second)
                                   for r in self._slow))
            time.sleep(delay)
