"""NaN/Inf guards for the per-mode factor computation.

A transient kernel fault (cosmic-ray bit flip, an unstable vendor
routine, or this package's own :class:`KernelFaultRule` injection) puts
non-finite values into a mode's factor matrix; everything downstream
silently inherits them.  :func:`guarded_mode_svd` wraps the parallel
per-mode SVD with a detection + escalation ladder:

1. compute with the requested method;
2. on non-finite output, retry with a numerically safer route — the
   Jacobi triangle solver for QR-SVD, or the full QR-SVD in place of
   the Gram baseline (the paper's own accuracy escalation);
3. still non-finite in single precision → recompute in float64 and cast
   back;
4. still non-finite → :class:`~repro.errors.ConvergenceError`.

Detection and the decision to escalate use only *replicated* data (the
factor is bitwise identical on every rank under both SVD strategies),
so all ranks take the same branch and collective matching is preserved
— the guard is itself SPMD-safe.  Every escalation is reported through
the active tracer (an ``ft.numeric_recovery`` span plus
``ft.numeric_recoveries`` counters) so ``repro trace`` output shows
what degraded and how it was repaired.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError
from ..obs.tracer import current_tracer, trace_span

__all__ = ["guarded_mode_svd", "factors_finite"]


def factors_finite(U: np.ndarray, sigma: np.ndarray | None = None) -> bool:
    """True when the factor (and sigma) contain only finite values."""
    if not bool(np.isfinite(U).all()):
        return False
    return sigma is None or bool(np.isfinite(sigma).all())


def _note_recovery(action: str) -> None:
    t = current_tracer()
    if t is not None:
        t.metrics.counter("ft.numeric_recoveries").inc()
        t.metrics.counter(f"ft.numeric_recoveries[{action}]").inc()


def guarded_mode_svd(
    current,
    n: int,
    *,
    method: str,
    backend: str = "lapack",
    svd_strategy: str = "replicated",
    counter=None,
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Per-mode parallel SVD with NaN/Inf detection and escalation.

    Returns ``(U, sigma, recoveries)`` where ``recoveries`` lists the
    escalation actions taken (empty on the clean path).  Collective
    over ``current``'s communicator, like the kernels it wraps.
    """
    from ..dist.svd import par_tensor_gram_svd, par_tensor_qr_svd

    def attempt(compute):
        """Run one rung; non-finite input can also make the solver
        *raise* (LAPACK's gesvd reports non-convergence on NaN, the
        Jacobi sweep hits its sweep cap) — treat that exactly like
        non-finite output and move to the next rung."""
        try:
            U, sigma = compute()
        except (np.linalg.LinAlgError, ConvergenceError):
            return None, None, False
        return U, sigma, factors_finite(U, sigma)

    def qr(dt, solver):
        return par_tensor_qr_svd(
            dt, n, backend=backend, triangle_solver=solver,
            strategy=svd_strategy, counter=counter,
        )

    def gram(dt):
        return par_tensor_gram_svd(
            dt, n, strategy=svd_strategy, counter=counter,
        )

    if method == "qr":
        U, sigma, ok = attempt(lambda: qr(current, "lapack"))
    else:
        U, sigma, ok = attempt(lambda: gram(current))
    if ok:
        return U, sigma, []

    recoveries: list[str] = []
    # Rung 1: a numerically safer route at the same precision.
    action = "qr->jacobi" if method == "qr" else "gram->qr"
    recoveries.append(action)
    _note_recovery(action)
    with trace_span("ft.numeric_recovery", mode=n, action=action):
        if method == "qr":
            U, sigma, ok = attempt(lambda: qr(current, "jacobi"))
        else:
            U, sigma, ok = attempt(lambda: qr(current, "lapack"))
    if ok:
        return U, sigma, recoveries

    # Rung 2: escalate single precision to double, then cast back so
    # the driver's working dtype is preserved.
    orig = np.dtype(current.dtype)
    if orig == np.float32:
        action = "float32->float64"
        recoveries.append(action)
        _note_recovery(action)
        with trace_span("ft.numeric_recovery", mode=n, action=action):
            wide = current.astype(np.float64)
            if method == "qr":
                U, sigma, ok = attempt(lambda: qr(wide, "lapack"))
            else:
                U, sigma, ok = attempt(lambda: gram(wide))
        if ok:
            return U.astype(orig), sigma.astype(orig), recoveries

    raise ConvergenceError(
        f"mode-{n} factor is non-finite after escalation "
        f"({', '.join(recoveries)}); input data may be corrupt"
    )
