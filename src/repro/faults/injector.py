"""Deterministic fault injector driving a :class:`FaultPlan`.

One :class:`FaultInjector` serves a whole SPMD world.  Each rank owns a
private slice of its state — an operation counter, per-kernel call
counters, and a ``numpy`` generator stream seeded ``(plan.seed, rank)``
— touched only from that rank's thread, so injection decisions need no
locking on the hot path (the shared event trace takes a lock, but only
when a fault actually fires).

Determinism contract: the runtime's per-rank message schedule is a pure
function of the program, so the sequence of injection queries a rank
makes — and therefore the sequence of variates it draws — is identical
on every replay with the same plan.  ``trace`` records every fired
fault; comparing traces across replays is the replay test.

Kernel hooks use the same thread-local activation pattern as
:mod:`repro.obs.tracer`: the launcher binds the injector to each rank
thread, ``current_injector()`` reads one thread-local attribute, and
the linalg kernels call it only to discover "no injector" at the cost
of a single attribute read.
"""

from __future__ import annotations

import json
import threading
from typing import Any

import numpy as np

from ..errors import ConfigurationError, RankKilledError
from ..obs.recorder import record_event as _recorder_event
from .plan import (
    DEFAULT_TRACE_LIMIT,
    FaultEvent,
    FaultPlan,
    MessageFaultRule,
)

__all__ = [
    "FaultInjector",
    "activate",
    "deactivate",
    "current_injector",
    "current_fault_rank",
]

_ACTIVE = threading.local()


def activate(injector: "FaultInjector", rank: int) -> None:
    """Bind ``injector`` to the calling (rank) thread for kernel hooks."""
    _ACTIVE.injector = injector
    _ACTIVE.rank = rank


def deactivate() -> None:
    """Unbind the calling thread's injector."""
    _ACTIVE.injector = None
    _ACTIVE.rank = None


def current_injector() -> "FaultInjector | None":
    """The injector bound to this thread, or None (one attribute read)."""
    return getattr(_ACTIVE, "injector", None)


def current_fault_rank() -> int | None:
    """World rank bound to this thread by :func:`activate`, or None."""
    return getattr(_ACTIVE, "rank", None)


class _RankState:
    """Per-rank mutable injection state (single-thread access)."""

    __slots__ = ("rng", "ops", "kernel_calls", "crashed", "incarnation",
                 "crash_fires")

    def __init__(self, seed: int, rank: int) -> None:
        self.rng = np.random.default_rng((seed, rank))
        self.ops = 0
        self.kernel_calls: dict[str, int] = {}
        self.crashed = False
        self.incarnation = 0
        self.crash_fires = 0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` deterministically, rank by rank."""

    def __init__(self, plan: FaultPlan, *, trace_limit: int = DEFAULT_TRACE_LIMIT) -> None:
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError(
                f"faults= expects a FaultPlan, got {type(plan).__name__}"
            )
        self.plan = plan
        self._crash_by_rank = {c.rank: c for c in plan.crashes}
        self._states: dict[int, _RankState] = {}
        self._states_lock = threading.Lock()
        self._trace: list[FaultEvent] = []
        self._trace_lock = threading.Lock()
        self._trace_limit = trace_limit

    # -- per-rank state -------------------------------------------------
    def _state(self, rank: int) -> _RankState:
        st = self._states.get(rank)
        if st is None:
            # Lazily created once per rank; the lock only guards the
            # dict mutation, never the per-rank state it returns.
            with self._states_lock:
                st = self._states.setdefault(rank, _RankState(self.plan.seed, rank))
        return st

    def _record(self, event: FaultEvent) -> None:
        with self._trace_lock:
            if len(self._trace) < self._trace_limit:
                self._trace.append(event)
        # Mirror the fired fault into the flight recorder (if one is
        # active on this rank thread) so postmortems interleave faults
        # with the surrounding comm/kernel events.
        _recorder_event(
            "fault", event.kind, op_index=event.op_index,
            detail=list(event.detail),
        )

    # -- hooks ----------------------------------------------------------
    def on_op(self, rank: int) -> None:
        """Count one communicator operation; crash the rank when due."""
        st = self._state(rank)
        st.ops += 1
        crash = self._crash_by_rank.get(rank)
        if (
            crash is not None
            and not st.crashed
            and st.crash_fires < crash.repeat
            and st.ops >= crash.at_op
        ):
            st.crashed = True
            st.crash_fires += 1
            detail = (st.incarnation,) if st.incarnation else ()
            self._record(FaultEvent(rank, st.ops, "crash", detail))
            raise RankKilledError(
                f"rank {rank} (incarnation {st.incarnation}) killed by "
                f"injected fault at operation {st.ops}"
            )

    def note_respawn(
        self, rank: int, *, incarnation: int, fired: int | None = None
    ) -> None:
        """Reset ``rank``'s counters for a fresh incarnation.

        Elastic recovery respawns a replacement that replays the rank
        program from operation zero, so its crash calibration must
        count from zero too — otherwise ``at_op`` would mean something
        different for every incarnation and replays would diverge.
        ``fired`` pins the rule's total fire count (needed when the
        replacement runs in a fresh process whose forked/spawned
        injector copy never saw the original crash); ``None`` keeps the
        local count, which is correct for the shared-injector threads
        backend.
        """
        st = self._state(rank)
        st.ops = 0
        st.kernel_calls = {}
        st.crashed = False
        st.incarnation = incarnation
        if fired is not None:
            st.crash_fires = fired
        # A fresh generator stream keyed by incarnation keeps the
        # replacement's probabilistic draws deterministic regardless of
        # how many variates the dead incarnation consumed.
        st.rng = np.random.default_rng((self.plan.seed, rank, incarnation))

    def message_outcome(
        self, rank: int, dest: int, tag: int, nbytes: int
    ) -> MessageFaultRule | None:
        """The first message rule firing for this send, or None (clean).

        Every *matching* rule consumes exactly one variate whether it
        fires or not, so adding tolerance machinery (which never draws)
        cannot shift the fault schedule.
        """
        for rule in self.plan.messages:
            if not rule.matches(rank, tag, nbytes):
                continue
            st = self._state(rank)
            if st.rng.random() < rule.prob:
                self._record(
                    FaultEvent(rank, st.ops, rule.kind, (dest, tag, nbytes))
                )
                return rule
        return None

    def corrupted_copy(self, rank: int, payload: Any) -> Any | None:
        """A deep copy of ``payload`` with one ndarray byte bit-flipped.

        Returns None when the payload carries no ndarray to corrupt (the
        fault then degrades to a clean delivery).  Never touches the
        original payload — it may be a zero-copy *moved* buffer frozen
        read-only, and the sender's data must stay intact.
        """
        arrays: list[np.ndarray] = []

        def collect(obj: Any) -> Any:
            if isinstance(obj, np.ndarray):
                c = obj.copy()
                arrays.append(c)
                return c
            if isinstance(obj, list):
                return [collect(x) for x in obj]
            if isinstance(obj, tuple):
                return tuple(collect(x) for x in obj)
            return obj

        copied = collect(payload)
        targets = [a for a in arrays if a.nbytes > 0]
        if not targets:
            return None
        rng = self._state(rank).rng
        victim = targets[int(rng.integers(len(targets)))]
        flat = victim.reshape(-1).view(np.uint8)
        pos = int(rng.integers(flat.size))
        flat[pos] ^= np.uint8(1 << int(rng.integers(8)))
        return copied

    def kernel_fault(
        self, name: str, U: np.ndarray, sigma: np.ndarray | None = None, *,
        rank: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Apply any due kernel fault to ``(U, sigma)``; counts the call.

        Called by the linalg kernels through :func:`current_injector`.
        ``rank`` defaults to the thread-local rank bound at activation.
        """
        if rank is None:
            rank = current_fault_rank()
            if rank is None:
                return U, sigma
        st = self._state(rank)
        index = st.kernel_calls.get(name, 0)
        st.kernel_calls[name] = index + 1
        for rule in self.plan.kernels:
            if rule.kernel != name or rule.call_index != index:
                continue
            if rule.ranks is not None and rank not in rule.ranks:
                continue
            bad = np.array(U, copy=True)
            value = np.nan if rule.kind == "nan" else np.inf
            bad.flat[0] = value
            self._record(
                FaultEvent(rank, st.ops, f"kernel:{name}", (index, rule.kind))
            )
            return bad, sigma
        return U, sigma

    # -- introspection / replay ----------------------------------------
    @property
    def trace(self) -> list[FaultEvent]:
        """Snapshot of fired fault events (stable order per rank)."""
        with self._trace_lock:
            return list(self._trace)

    def trace_key(self) -> tuple:
        """Canonical, order-independent digest of the trace.

        Events from different rank threads interleave
        nondeterministically in wall time, so replay comparison sorts
        them; each rank's own subsequence is already deterministic.
        """
        return tuple(sorted(e.as_tuple() for e in self.trace))

    def trace_json(self) -> str:
        """The trace as JSON (one object per event), for replay files."""
        return json.dumps(
            [
                {
                    "rank": e.rank,
                    "op_index": e.op_index,
                    "kind": e.kind,
                    "detail": list(e.detail),
                }
                for e in self.trace
            ],
            indent=2,
        )

    def crash_fires(self, rank: int) -> int:
        """Times ``rank``'s crash rule has fired, across incarnations.

        Computed from the trace rather than per-rank state so it is
        correct on the master side of the process/socket transports,
        where the worker's counters live in another process but its
        fired events were absorbed with the rank's lifecycle message.
        """
        with self._trace_lock:
            return sum(
                1 for e in self._trace if e.rank == rank and e.kind == "crash"
            )

    def ops_per_rank(self) -> dict[int, int]:
        """Operation counts per rank (calibrates crash points)."""
        with self._states_lock:
            return {r: st.ops for r, st in sorted(self._states.items())}

    def absorb(self, events, ops_per_rank) -> None:
        """Merge a worker shard: fired events plus per-rank op counts.

        The process transport forks this injector into each worker; the
        worker ships back only post-fork events (as :meth:`FaultEvent.
        as_tuple` tuples) and its op counts, which merge here with
        ``max`` — a rank's counter only ever advances in its own
        process, so the largest value is the true one.
        """
        with self._trace_lock:
            for t in events:
                if len(self._trace) >= self._trace_limit:
                    break
                self._trace.append(FaultEvent(t[0], t[1], t[2], tuple(t[3])))
        with self._states_lock:
            for rank, ops in ops_per_rank.items():
                st = self._states.setdefault(
                    rank, _RankState(self.plan.seed, rank)
                )
                st.ops = max(st.ops, ops)
