"""Deterministic fault injection and fault tolerance for the SPMD runtime.

Three layers (see ``docs/fault-tolerance.md``):

* :class:`FaultPlan` / :class:`FaultInjector` — a seeded, replayable
  schedule of rank crashes, message faults, and kernel corruption,
  installed via ``run_spmd(faults=plan)``.
* :class:`Resilience` — the tolerance knobs (retry/backoff, checksums,
  sequence numbers) the communicator uses to survive message faults,
  installed via ``run_spmd(resilience=...)``.
* :class:`DistributedCheckpoint` — in-memory, buddy-replicated
  checkpoints that let ``sthosvd_parallel``/``hooi_parallel`` resume on
  a shrunk communicator after a rank death (imported lazily: it sits on
  top of :mod:`repro.dist`, which itself sits on top of the linalg
  kernels that host this package's injection hooks).

This ``__init__`` deliberately imports only the plan and injector
modules (numpy + errors only): ``repro.linalg`` imports
``repro.faults.injector`` for its kernel hooks, so anything heavier
here would be an import cycle.
"""

from __future__ import annotations

from .injector import FaultInjector, current_injector
from .network import NetworkFaultState
from .plan import (
    CrashRule,
    FaultEvent,
    FaultPlan,
    KernelFaultRule,
    MessageFaultRule,
    NetworkFaultRule,
    Resilience,
)

__all__ = [
    "FaultPlan",
    "CrashRule",
    "MessageFaultRule",
    "KernelFaultRule",
    "NetworkFaultRule",
    "NetworkFaultState",
    "Resilience",
    "FaultEvent",
    "FaultInjector",
    "current_injector",
    "DistributedCheckpoint",
]


def __getattr__(name: str):
    # Lazy: faults.checkpoint imports repro.dist (gather/redistribute),
    # which transitively imports repro.linalg, which imports
    # faults.injector — eager import here would close that cycle.
    if name == "DistributedCheckpoint":
        from .checkpoint import DistributedCheckpoint

        return DistributedCheckpoint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
