"""In-memory distributed checkpoints with buddy-rank replication.

The out-of-core driver checkpoints to disk (:mod:`repro.core.checkpoint`);
the *parallel* drivers cannot — a dead rank takes its node's filesystem
with it in the failure model we simulate.  Instead each rank keeps its
checkpoint entry in its own node-local store (the context's per-rank
slot, which nobody else reads) and replicates a copy to its **buddy**,
the next rank around the ring, via a real message.  Any single failure
then leaves every entry reachable: the dead rank's block survives in its
buddy's store.  This is the classic in-memory buddy checkpointing scheme
of large MPI codes, scaled down to the threads-as-ranks runtime.

An entry stores the rank's local tensor block *with its global slice
coordinates*, so recovery never needs the dead grid's arithmetic: the
survivors gather every block of the most recent complete step to the
root of the shrunk communicator, paste them into a full tensor by
coordinates, and redistribute over whatever grid the survivors form
(:func:`repro.dist.redistribute.distribute_from_root`).

Entries are keyed by the *epoch* (communicator id) that wrote them, so
blocks saved before and after a shrink never mix: a complete set is
``nprocs`` entries from one epoch, any epoch.

The optional **durable tier** (``ckpt_dir=``) additionally lands every
shard on disk — each rank writes its own block and the buddy copy it
holds, then rank 0 commits a versioned JSON manifest using the same
tmp + rename discipline as :mod:`repro.core.checkpoint` — so a *total*
world crash (every rank dead, the master gone) can be survived by a new
``run_spmd`` invocation resuming from the directory.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any

import numpy as np

from ..errors import CheckpointError
from ..obs.recorder import record_event as _record_event
from ..core.checkpoint import _write_atomic

__all__ = ["DistributedCheckpoint"]

#: Manifest schema tag; bump on incompatible layout changes.
_MANIFEST_SCHEMA = "repro-dckpt/1"

# User tag reserved for the buddy-copy exchange.  Drivers communicate
# through collectives (negative internal tags), so any non-negative tag
# is free on their communicators; picking a large one keeps accidental
# collision with test programs' small hand-picked tags unlikely.
_BUDDY_TAG = 988_000


class DistributedCheckpoint:
    """Buddy-replicated in-memory checkpoint over an SPMD context.

    One instance is shared SPMD-style: every rank constructs it with the
    same ``name``/``keep`` and calls :meth:`save` collectively.  State
    lives in the :class:`~repro.mpi.context.SpmdContext` node store, so
    the instance itself is stateless and cheap.

    ``keep`` bounds retained steps per rank: after saving step ``s``,
    entries at steps ``<= s - keep`` are pruned from the local slot.

    ``ckpt_dir`` enables the durable tier: shards and buddy copies are
    mirrored to that directory and committed under a per-step manifest,
    so :meth:`resume_from_disk` can restart a *fresh* world after every
    rank (and the master) died.
    """

    def __init__(self, name: str = "ckpt", keep: int = 2,
                 ckpt_dir: str | None = None) -> None:
        if keep < 1:
            raise CheckpointError("keep must be >= 1")
        self.name = name
        self.keep = keep
        self.ckpt_dir = ckpt_dir
        # The owning driver may pin the *input* tensor's fingerprint
        # (set on the root rank, whose manifest writes carry it); the
        # stored blocks themselves are progressively truncated, so only
        # this records what run the checkpoint belongs to.
        self.input_info: dict | None = None

    # -- saving ---------------------------------------------------------
    def save(self, dt, step: int, meta: dict) -> None:
        """Checkpoint ``dt``'s local block + replicated ``meta`` (collective).

        ``meta`` is the driver's replicated resume state (completed
        steps, factors, singular values, ...); every rank passes a
        bitwise-identical copy, so recovery can read it from any
        survivor's own entry.
        """
        comm = dt.comm
        ctx = comm.context
        me_world = comm.world_rank
        entry = {
            "name": self.name,
            "epoch": comm.comm_id,
            "step": int(step),
            "owner": comm.rank,
            "nprocs": comm.size,
            "global_shape": tuple(int(s) for s in dt.global_shape),
            "dtype": np.dtype(dt.dtype).name,
            "slices": tuple(
                (int(s.start), int(s.stop)) for s in dt.local_slices()
            ),
            "block": np.array(dt.local.data, copy=True, order="F"),
            "meta": meta,
        }
        key = (self.name, entry["epoch"], entry["step"], entry["owner"])
        ctx.store_put(me_world, key, entry)
        buddy_entry = None
        if comm.size > 1:
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(entry, right, tag=_BUDDY_TAG)
            buddy_entry = comm.recv(left, tag=_BUDDY_TAG)
            buddy_key = (
                self.name, buddy_entry["epoch"], buddy_entry["step"],
                buddy_entry["owner"],
            )
            ctx.store_put(me_world, buddy_key, buddy_entry)
        self._prune(ctx, me_world, step)
        if self.ckpt_dir is not None:
            self._save_to_disk(comm, entry, buddy_entry)
        _record_event(
            "checkpoint", self.name, step=int(step), epoch=comm.comm_id,
            nbytes=int(entry["block"].nbytes),
        )

    def _prune(self, ctx, holder: int, current_step: int) -> None:
        horizon = current_step - self.keep
        for key, _entry in ctx.store_items(holder):
            if key[0] == self.name and key[2] <= horizon:
                ctx.store_delete(holder, key)

    # -- durable tier ---------------------------------------------------
    def _shard_path(self, epoch: int, step: int, owner: int,
                    kind: str) -> str:
        return os.path.join(
            self.ckpt_dir,
            f"{self.name}-s{step:06d}-e{epoch}-{kind}-{owner:04d}.pkl",
        )

    def _manifest_path(self, epoch: int, step: int) -> str:
        return os.path.join(
            self.ckpt_dir,
            f"{self.name}-manifest-s{step:06d}-e{epoch}.json",
        )

    def _save_to_disk(self, comm, entry: dict,
                      buddy_entry: dict | None) -> None:
        """Land this step's shards durably; rank 0 commits the manifest.

        Every rank writes its own block and the buddy copy it holds
        (two independent copies of every shard on disk), then a barrier
        guarantees all shards are durable before rank 0 renames the
        manifest into place — the manifest is the commit point, so a
        crash mid-save leaves at worst an uncommitted pile of shards
        and the previous manifest still wins.
        """
        os.makedirs(self.ckpt_dir, exist_ok=True)
        epoch, step = entry["epoch"], entry["step"]
        for kind, shard in (("own", entry), ("buddy", buddy_entry)):
            if shard is None:
                continue
            path = self._shard_path(
                shard["epoch"], shard["step"], shard["owner"], kind)
            _write_atomic(
                path, lambda f, s=shard: pickle.dump(s, f, protocol=4))
        comm.barrier()
        if comm.rank == 0:
            manifest = {
                "schema": _MANIFEST_SCHEMA,
                "name": self.name,
                "step": int(step),
                "epoch": int(epoch),
                "nprocs": int(entry["nprocs"]),
                "global_shape": [int(s) for s in entry["global_shape"]],
                "dtype": entry["dtype"],
                "input_shape": (
                    list(self.input_info["shape"])
                    if self.input_info else None
                ),
                "input_dtype": (
                    self.input_info["dtype"] if self.input_info else None
                ),
                "shards": {
                    str(o): {
                        "own": os.path.basename(
                            self._shard_path(epoch, step, o, "own")),
                        "buddy": os.path.basename(
                            self._shard_path(epoch, step, o, "buddy")),
                    }
                    for o in range(entry["nprocs"])
                },
            }
            _write_atomic(
                self._manifest_path(epoch, step),
                lambda f: f.write(json.dumps(manifest, indent=1).encode()),
            )
            self._prune_disk(step)

    def _prune_disk(self, current_step: int) -> None:
        horizon = current_step - self.keep
        prefix = f"{self.name}-"
        for fname in os.listdir(self.ckpt_dir):
            if not fname.startswith(prefix):
                continue
            part = fname[len(prefix):]
            if part.startswith("manifest-"):
                part = part[len("manifest-"):]
            if not part.startswith("s"):
                continue
            try:
                step = int(part[1:7])
            except ValueError:
                continue
            if step <= horizon:
                try:
                    os.remove(os.path.join(self.ckpt_dir, fname))
                except OSError:  # pragma: no cover - concurrent prune
                    pass

    def manifests(self) -> list[tuple[int, int, str]]:
        """Committed ``(step, epoch, path)`` manifests, newest last."""
        if self.ckpt_dir is None or not os.path.isdir(self.ckpt_dir):
            return []
        found = []
        prefix = f"{self.name}-manifest-"
        for fname in sorted(os.listdir(self.ckpt_dir)):
            if not (fname.startswith(prefix) and fname.endswith(".json")):
                continue
            try:
                stem = fname[len(prefix):-len(".json")]
                s_part, e_part = stem.split("-", 1)
                found.append((int(s_part[1:]), int(e_part[1:]),
                              os.path.join(self.ckpt_dir, fname)))
            except (ValueError, IndexError):
                continue
        found.sort(key=lambda t: (t[0], t[1]))
        return found

    def resume_from_disk(self, comm, full=None):
        """Restart a fresh world from the newest on-disk manifest.

        Collective over ``comm`` (typically the brand-new world of a
        restarted ``run_spmd`` invocation).  Returns ``(step, meta,
        full)`` with the reassembled tensor on rank 0 (None elsewhere),
        or None when the directory holds no committed manifest.

        ``full`` — the caller's input tensor on rank 0 — anchors the
        refusal checks: a manifest whose dtype or global shape does not
        match it, or whose world size does not match ``comm.size``,
        raises :class:`~repro.errors.CheckpointError` on every rank
        rather than silently resuming the wrong run.
        """
        if self.ckpt_dir is None:
            raise CheckpointError(
                "resume_from_disk needs a DistributedCheckpoint built "
                "with ckpt_dir=")
        payload = None
        full_out = None
        if comm.rank == 0:
            loaded = self._load_newest_on_root(comm.size, full)
            if loaded[0] == "ok":
                # The reassembled tensor stays on the root; peers only
                # need the verdict, the step, and the replicated meta.
                payload = ("ok", loaded[1], loaded[2])
                full_out = loaded[3]
            else:
                payload = loaded
        payload = comm.bcast(payload, root=0)
        status = payload[0]
        if status == "none":
            return None
        if status == "err":
            raise CheckpointError(payload[1])
        _status, step, meta = payload
        _record_event(
            "checkpoint.resume_disk", self.name, step=int(step),
        )
        return step, meta, full_out

    def _load_newest_on_root(self, nprocs: int, full):
        """Rank 0: pick, validate, and reassemble the newest manifest.

        Returns a bcast-able status tuple so peers either proceed or
        raise the same refusal — never deadlock on a one-sided error.
        """
        committed = self.manifests()
        if not committed:
            return ("none",)
        step, epoch, path = committed[-1]
        try:
            with open(path, "rb") as f:
                manifest = json.load(f)
        except (OSError, ValueError) as exc:
            return ("err", f"checkpoint {self.name!r}: unreadable "
                           f"manifest {os.path.basename(path)}: {exc}")
        if manifest.get("schema") != _MANIFEST_SCHEMA:
            return ("err", f"checkpoint {self.name!r}: manifest schema "
                           f"{manifest.get('schema')!r} is not "
                           f"{_MANIFEST_SCHEMA!r}")
        if int(manifest["nprocs"]) != int(nprocs):
            return ("err",
                    f"checkpoint {self.name!r} was written by "
                    f"{manifest['nprocs']} ranks; refusing to resume on "
                    f"a world of {nprocs} (world-shape mismatch)")
        if full is not None:
            want_shape = manifest.get("input_shape")
            if want_shape is not None and (
                    tuple(int(s) for s in full.shape)
                    != tuple(int(s) for s in want_shape)):
                return ("err",
                        f"checkpoint {self.name!r} belongs to an input "
                        f"tensor of shape {tuple(want_shape)}; refusing "
                        f"to resume a run over shape {tuple(full.shape)}")
            want_dtype = manifest.get("input_dtype") or manifest["dtype"]
            if np.dtype(want_dtype) != np.dtype(full.dtype):
                return ("err",
                        f"checkpoint {self.name!r} stores dtype "
                        f"{np.dtype(want_dtype).name}; refusing to "
                        f"resume a run over dtype "
                        f"{np.dtype(full.dtype).name}")
        shape = tuple(int(s) for s in manifest["global_shape"])
        out = np.zeros(shape, dtype=np.dtype(manifest["dtype"]), order="F")
        meta = None
        for owner in range(int(manifest["nprocs"])):
            files = manifest["shards"][str(owner)]
            entry = None
            for kind in ("own", "buddy"):
                spath = os.path.join(self.ckpt_dir, files[kind])
                try:
                    with open(spath, "rb") as f:
                        entry = pickle.load(f)
                    break
                except (OSError, pickle.PickleError, EOFError):
                    continue
            if entry is None:
                return ("err",
                        f"checkpoint {self.name!r}: both copies of "
                        f"shard {owner} (step {step}) are unreadable")
            if meta is None:
                meta = entry["meta"]
            out[tuple(slice(a, b) for a, b in entry["slices"])] = (
                entry["block"])
        return ("ok", int(step), meta, out)

    # -- recovery -------------------------------------------------------
    def latest_complete(self, new_comm) -> tuple[int, int, int] | None:
        """``(epoch, step, nprocs)`` of the newest complete step (collective).

        A step is complete when the survivors jointly hold all
        ``nprocs`` owners' entries from one epoch.  Returns None when no
        complete step survives (e.g. a rank *and* its buddy died).
        """
        mine = self._held(new_comm)
        inventory = new_comm.allgather(
            [(e["epoch"], e["step"], e["nprocs"], e["owner"]) for e in mine]
        )
        owners: dict[tuple[int, int, int], set] = {}
        for rank_inv in inventory:
            for epoch, step, nprocs, owner in rank_inv:
                owners.setdefault((epoch, step, nprocs), set()).add(owner)
        complete = [
            key for key, have in owners.items()
            if len(have) == key[2]
        ]
        if not complete:
            return None
        # Newest step wins; between epochs that saved the same step
        # (a re-checkpoint after a previous recovery), the newer epoch.
        return max(complete, key=lambda k: (k[1], k[0]))

    def recover(self, new_comm, root: int = 0):
        """Assemble the newest complete checkpoint on the shrunk world.

        Collective over ``new_comm`` (the survivors, post-shrink).
        Returns ``(step, meta, full)``: the completed-step count, the
        replicated driver meta, and — on ``root`` only — the full
        tensor reassembled from the surviving blocks (None elsewhere).
        Raises :class:`~repro.errors.CheckpointError` when no complete
        step survives.
        """
        chosen = self.latest_complete(new_comm)
        if chosen is None:
            raise CheckpointError(
                f"checkpoint {self.name!r}: no complete step survives "
                f"on the shrunk communicator (a rank and its buddy died?)"
            )
        epoch, step, _nprocs = chosen
        held = [
            e for e in self._held(new_comm)
            if e["epoch"] == epoch and e["step"] == step
        ]
        # ``meta`` (and the global shape/dtype) are replicated, but
        # *this* rank may hold nothing: a replacement rank rejoining
        # after ``recover="replace"`` starts with an empty store — and
        # it may well be the root.  Take the first survivor's copy.
        refs = new_comm.allgather(
            (held[0]["meta"], held[0]["global_shape"], held[0]["dtype"])
            if held else None
        )
        ref = next((r for r in refs if r is not None), None)
        if ref is None:  # pragma: no cover - latest_complete found one
            raise CheckpointError(
                f"checkpoint {self.name!r}: no rank holds an entry for "
                f"step {step} (epoch {epoch})"
            )
        meta, shape, dtype = ref
        parts = new_comm.gather(
            [(e["owner"], e["slices"], e["block"]) for e in held], root=root,
        )
        full = None
        if new_comm.rank == root:
            full = np.zeros(shape, dtype=np.dtype(dtype), order="F")
            seen: set[int] = set()
            for rank_parts in parts:
                for owner, slices, block in rank_parts:
                    if owner in seen:
                        continue
                    seen.add(owner)
                    full[tuple(slice(a, b) for a, b in slices)] = block
        return step, meta, full

    def rebalance(self, comm) -> int:
        """Re-replicate entries left single-copy by a failure (collective).

        After a shrink, entries whose second copy lived on the dead rank
        survive only in one store — a follow-up failure of *that* holder
        would lose the last copy.  Every rank computes the same plan
        from an allgathered inventory of the newest complete step, and
        each single-copy entry is copied to one more rank (the owner's
        slot when it is empty, else the holder's current ring-right).
        Returns the number of entries re-replicated.
        """
        chosen = self.latest_complete(comm)
        if chosen is None or comm.size < 2:
            return 0
        epoch, step, _nprocs = chosen
        mine = {
            e["owner"]: e for e in self._held(comm)
            if e["epoch"] == epoch and e["step"] == step
        }
        inventory = comm.allgather(sorted(mine))
        holders: dict[int, list[int]] = {}
        for rank, owners in enumerate(inventory):
            for owner in owners:
                holders.setdefault(owner, []).append(rank)
        plan = []
        for owner in sorted(holders):
            who = holders[owner]
            if len(who) >= 2:
                continue
            src = who[0]
            if owner < comm.size and owner != src:
                dst = owner  # restore the natural layout when possible
            else:
                dst = (src + 1) % comm.size
            plan.append((src, dst, owner))
        for src, dst, owner in plan:
            if comm.rank == src:
                comm.send(mine[owner], dst, tag=_BUDDY_TAG + 1)
            elif comm.rank == dst:
                entry = comm.recv(src, tag=_BUDDY_TAG + 1)
                key = (self.name, entry["epoch"], entry["step"],
                       entry["owner"])
                comm.context.store_put(comm.world_rank, key, entry)
        if plan:
            _record_event(
                "checkpoint.rebalance", self.name, step=int(step),
                epoch=int(epoch), copies=len(plan),
            )
        return len(plan)

    def _held(self, comm) -> list[dict[str, Any]]:
        """This rank's stored entries for this checkpoint name."""
        ctx = comm.context
        return [
            entry for key, entry in ctx.store_items(comm.world_rank)
            if key[0] == self.name
        ]
