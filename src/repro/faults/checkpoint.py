"""In-memory distributed checkpoints with buddy-rank replication.

The out-of-core driver checkpoints to disk (:mod:`repro.core.checkpoint`);
the *parallel* drivers cannot — a dead rank takes its node's filesystem
with it in the failure model we simulate.  Instead each rank keeps its
checkpoint entry in its own node-local store (the context's per-rank
slot, which nobody else reads) and replicates a copy to its **buddy**,
the next rank around the ring, via a real message.  Any single failure
then leaves every entry reachable: the dead rank's block survives in its
buddy's store.  This is the classic in-memory buddy checkpointing scheme
of large MPI codes, scaled down to the threads-as-ranks runtime.

An entry stores the rank's local tensor block *with its global slice
coordinates*, so recovery never needs the dead grid's arithmetic: the
survivors gather every block of the most recent complete step to the
root of the shrunk communicator, paste them into a full tensor by
coordinates, and redistribute over whatever grid the survivors form
(:func:`repro.dist.redistribute.distribute_from_root`).

Entries are keyed by the *epoch* (communicator id) that wrote them, so
blocks saved before and after a shrink never mix: a complete set is
``nprocs`` entries from one epoch, any epoch.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import CheckpointError
from ..obs.recorder import record_event as _record_event

__all__ = ["DistributedCheckpoint"]

# User tag reserved for the buddy-copy exchange.  Drivers communicate
# through collectives (negative internal tags), so any non-negative tag
# is free on their communicators; picking a large one keeps accidental
# collision with test programs' small hand-picked tags unlikely.
_BUDDY_TAG = 988_000


class DistributedCheckpoint:
    """Buddy-replicated in-memory checkpoint over an SPMD context.

    One instance is shared SPMD-style: every rank constructs it with the
    same ``name``/``keep`` and calls :meth:`save` collectively.  State
    lives in the :class:`~repro.mpi.context.SpmdContext` node store, so
    the instance itself is stateless and cheap.

    ``keep`` bounds retained steps per rank: after saving step ``s``,
    entries at steps ``<= s - keep`` are pruned from the local slot.
    """

    def __init__(self, name: str = "ckpt", keep: int = 2) -> None:
        if keep < 1:
            raise CheckpointError("keep must be >= 1")
        self.name = name
        self.keep = keep

    # -- saving ---------------------------------------------------------
    def save(self, dt, step: int, meta: dict) -> None:
        """Checkpoint ``dt``'s local block + replicated ``meta`` (collective).

        ``meta`` is the driver's replicated resume state (completed
        steps, factors, singular values, ...); every rank passes a
        bitwise-identical copy, so recovery can read it from any
        survivor's own entry.
        """
        comm = dt.comm
        ctx = comm.context
        me_world = comm.world_rank
        entry = {
            "name": self.name,
            "epoch": comm.comm_id,
            "step": int(step),
            "owner": comm.rank,
            "nprocs": comm.size,
            "global_shape": tuple(int(s) for s in dt.global_shape),
            "dtype": np.dtype(dt.dtype).name,
            "slices": tuple(
                (int(s.start), int(s.stop)) for s in dt.local_slices()
            ),
            "block": np.array(dt.local.data, copy=True, order="F"),
            "meta": meta,
        }
        key = (self.name, entry["epoch"], entry["step"], entry["owner"])
        ctx.store_put(me_world, key, entry)
        if comm.size > 1:
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(entry, right, tag=_BUDDY_TAG)
            buddy_entry = comm.recv(left, tag=_BUDDY_TAG)
            buddy_key = (
                self.name, buddy_entry["epoch"], buddy_entry["step"],
                buddy_entry["owner"],
            )
            ctx.store_put(me_world, buddy_key, buddy_entry)
        self._prune(ctx, me_world, step)
        _record_event(
            "checkpoint", self.name, step=int(step), epoch=comm.comm_id,
            nbytes=int(entry["block"].nbytes),
        )

    def _prune(self, ctx, holder: int, current_step: int) -> None:
        horizon = current_step - self.keep
        for key, _entry in ctx.store_items(holder):
            if key[0] == self.name and key[2] <= horizon:
                ctx.store_delete(holder, key)

    # -- recovery -------------------------------------------------------
    def latest_complete(self, new_comm) -> tuple[int, int, int] | None:
        """``(epoch, step, nprocs)`` of the newest complete step (collective).

        A step is complete when the survivors jointly hold all
        ``nprocs`` owners' entries from one epoch.  Returns None when no
        complete step survives (e.g. a rank *and* its buddy died).
        """
        mine = self._held(new_comm)
        inventory = new_comm.allgather(
            [(e["epoch"], e["step"], e["nprocs"], e["owner"]) for e in mine]
        )
        owners: dict[tuple[int, int, int], set] = {}
        for rank_inv in inventory:
            for epoch, step, nprocs, owner in rank_inv:
                owners.setdefault((epoch, step, nprocs), set()).add(owner)
        complete = [
            key for key, have in owners.items()
            if len(have) == key[2]
        ]
        if not complete:
            return None
        # Newest step wins; between epochs that saved the same step
        # (a re-checkpoint after a previous recovery), the newer epoch.
        return max(complete, key=lambda k: (k[1], k[0]))

    def recover(self, new_comm, root: int = 0):
        """Assemble the newest complete checkpoint on the shrunk world.

        Collective over ``new_comm`` (the survivors, post-shrink).
        Returns ``(step, meta, full)``: the completed-step count, the
        replicated driver meta, and — on ``root`` only — the full
        tensor reassembled from the surviving blocks (None elsewhere).
        Raises :class:`~repro.errors.CheckpointError` when no complete
        step survives.
        """
        chosen = self.latest_complete(new_comm)
        if chosen is None:
            raise CheckpointError(
                f"checkpoint {self.name!r}: no complete step survives "
                f"on the shrunk communicator (a rank and its buddy died?)"
            )
        epoch, step, _nprocs = chosen
        held = [
            e for e in self._held(new_comm)
            if e["epoch"] == epoch and e["step"] == step
        ]
        meta = held[0]["meta"] if held else None
        # Every survivor contributed to the save, so it holds at least
        # its own entry; still, be defensive about meta availability.
        if meta is None:  # pragma: no cover - requires a pruned own entry
            raise CheckpointError(
                f"checkpoint {self.name!r}: rank {new_comm.rank} holds no "
                f"entry for step {step} (epoch {epoch})"
            )
        parts = new_comm.gather(
            [(e["owner"], e["slices"], e["block"]) for e in held], root=root,
        )
        full = None
        if new_comm.rank == root:
            ref = held[0]
            shape = ref["global_shape"]
            full = np.zeros(shape, dtype=np.dtype(ref["dtype"]), order="F")
            seen: set[int] = set()
            for rank_parts in parts:
                for owner, slices, block in rank_parts:
                    if owner in seen:
                        continue
                    seen.add(owner)
                    full[tuple(slice(a, b) for a, b in slices)] = block
        return step, meta, full

    def _held(self, comm) -> list[dict[str, Any]]:
        """This rank's stored entries for this checkpoint name."""
        ctx = comm.context
        return [
            entry for key, entry in ctx.store_items(comm.world_rank)
            if key[0] == self.name
        ]
