"""Collective-algorithm ablation: functional equivalence + modeled costs.

Shows why each collective fills its role in the pipeline:

* short messages (triangles, Gram matrices): latency-bound — recursive
  doubling / binomial trees win (log P alphas);
* long messages (redistribution slabs): bandwidth-bound — ring/pairwise
  schedules win ((P-1)/P of the payload, alpha-heavy but beta-light).

The functional side times the real implementations on the threaded
runtime; the modeled side evaluates the alpha-beta formulas at the
paper's scales where latency/bandwidth crossovers actually happen.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import (
    allgather_ring,
    allreduce_recursive_doubling,
    bcast_scatter_allgather,
    reduce_scatter_ring,
    run_spmd,
)
from repro.perf import ANDES
from repro.perf.collectives import (
    cost_allreduce_recursive_doubling,
    cost_allreduce_ring,
    cost_allreduce_tree,
    cost_alltoall_pairwise,
    cost_bcast_binomial,
    cost_bcast_scatter_allgather,
)
from repro.util import format_table

P_FUNCTIONAL = 8


class TestFunctionalEquivalence:
    """Time the real algorithms against the built-in collectives."""

    def test_bench_allreduce_builtin(self, benchmark):
        def run():
            def prog(comm):
                return comm.allreduce(np.ones(1000))

            return run_spmd(prog, P_FUNCTIONAL)

        benchmark.pedantic(run, rounds=2, iterations=1)

    def test_bench_allreduce_recursive_doubling(self, benchmark):
        def run():
            def prog(comm):
                return allreduce_recursive_doubling(comm, np.ones(1000))

            return run_spmd(prog, P_FUNCTIONAL)

        benchmark.pedantic(run, rounds=2, iterations=1)

    def test_bench_bcast_long_message(self, benchmark):
        def run():
            def prog(comm):
                payload = np.ones(100_000) if comm.rank == 0 else None
                return bcast_scatter_allgather(comm, payload, root=0)

            return run_spmd(prog, P_FUNCTIONAL)

        benchmark.pedantic(run, rounds=2, iterations=1)

    def test_all_variants_agree(self, benchmark):
        def run():
            def prog(comm):
                v = np.arange(64.0) + comm.rank
                a = comm.allreduce(v)
                b = allreduce_recursive_doubling(comm, v)
                g1 = comm.allgather(v[:2])
                g2 = allgather_ring(comm, v[:2])
                slots = [np.array([comm.rank + q]) for q in range(comm.size)]
                r1 = comm.reduce_scatter(slots)
                r2 = reduce_scatter_ring(comm, slots)
                return (
                    np.allclose(a, b)
                    and all(np.allclose(x, y) for x, y in zip(g1, g2))
                    and np.allclose(r1, r2)
                )

            return all(run_spmd(prog, 6).values)

        assert benchmark.pedantic(run, rounds=1, iterations=1)


class TestModeledCrossovers:
    def test_report_crossovers(self, benchmark, write_report):
        comm = ANDES.comm

        def compute():
            rows = []
            for p, nbytes in [(64, 8 * 256 * 256 // 2), (64, 8 * 32 * 32 // 2),
                              (2048, 8 * 256 * 256 // 2), (2048, 512)]:
                rows.append([
                    p, nbytes,
                    cost_allreduce_tree(p, nbytes, comm) * 1e6,
                    cost_allreduce_recursive_doubling(p, nbytes, comm) * 1e6,
                    cost_allreduce_ring(p, nbytes, comm) * 1e6,
                ])
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        write_report(
            "collectives_allreduce_crossover",
            format_table(
                ["P", "bytes", "tree [us]", "recdbl [us]", "ring [us]"],
                rows,
                title="Modeled allreduce critical paths (Andes alpha/beta)",
            ),
        )
        for p, nbytes, tree, rd, ring in rows:
            # Recursive doubling always beats tree (half the rounds).
            assert rd < tree
            if nbytes <= 512:
                # tiny payloads: latency dominates -> ring loses at scale
                if p >= 2048:
                    assert rd < ring

    def test_report_bcast_long_vs_short(self, benchmark, write_report):
        comm = ANDES.comm

        def compute():
            rows = []
            for nbytes in (1 << 10, 1 << 20, 1 << 28):
                rows.append([
                    nbytes,
                    cost_bcast_binomial(256, nbytes, comm) * 1e3,
                    cost_bcast_scatter_allgather(256, nbytes, comm) * 1e3,
                ])
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        write_report(
            "collectives_bcast_crossover",
            format_table(
                ["bytes", "binomial [ms]", "scatter+allgather [ms]"],
                rows,
                title="Broadcast algorithms, P=256 (Andes alpha/beta)",
            ),
        )
        # Long messages prefer scatter+allgather; short prefer the tree.
        assert rows[0][1] < rows[0][2]
        assert rows[-1][2] < rows[-1][1]

    def test_redistribution_schedule_is_bandwidth_optimal(self, benchmark):
        """The paper's pairwise all-to-all moves (P-1)/P of the local
        data — no schedule can move less, so the modeled cost is within
        ~latency terms of the bandwidth lower bound."""
        comm = ANDES.comm
        p, local_bytes = 16, 8 * (250**4 // 512)

        def compute():
            actual = cost_alltoall_pairwise(p, local_bytes, comm)
            lower_bound = comm.beta * local_bytes * (p - 1) / p
            return actual, lower_bound

        actual, lb = benchmark.pedantic(compute, rounds=1, iterations=1)
        assert actual < lb * 1.01 + p * comm.alpha * 1.01
        assert actual >= lb
