"""Collective-algorithm ablation: functional equivalence + modeled costs.

Shows why each collective fills its role in the pipeline:

* short messages (triangles, Gram matrices): latency-bound — recursive
  doubling / binomial trees win (log P alphas);
* long messages (redistribution slabs): bandwidth-bound — ring/pairwise
  schedules win ((P-1)/P of the payload, alpha-heavy but beta-light).

The functional side times the real implementations on the threaded
runtime; the modeled side evaluates the alpha-beta formulas at the
paper's scales where latency/bandwidth crossovers actually happen.

Two consumers share the row-computing functions below:

* the pytest classes — qualitative shape assertions plus the
  plain-text crossover reports (``collectives_*.txt``), CI's
  collectives-smoke job;
* ``main()`` — a versioned machine-readable snapshot
  (``benchmarks/reports/BENCH_collectives.json``) in the same envelope
  as ``BENCH_sthosvd_scaling.json``, diffable against a later run with
  ``repro bench --compare`` and its tolerance bands.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_collectives.py -q
    PYTHONPATH=src python benchmarks/bench_collectives.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.mpi import (  # noqa: E402
    allgather_ring,
    allreduce_recursive_doubling,
    bcast_scatter_allgather,
    reduce_scatter_ring,
    run_spmd,
)
from repro.obs.postmortem import host_metadata, repo_commit  # noqa: E402
from repro.perf import ANDES  # noqa: E402
from repro.perf.collectives import (  # noqa: E402
    cost_allreduce_recursive_doubling,
    cost_allreduce_ring,
    cost_allreduce_tree,
    cost_alltoall_pairwise,
    cost_bcast_binomial,
    cost_bcast_scatter_allgather,
    dispatched_allreduce_cost,
)
from repro.util import format_table  # noqa: E402

P_FUNCTIONAL = 8
P_MEASURED = 8
MEASURED_SIZES = (64, 1 << 12, 1 << 15, 1 << 18)  # elements (512 B .. 2 MiB)
MEASURED_REPEATS = 5

REPORT = os.path.join(os.path.dirname(__file__), "reports",
                      "BENCH_collectives.json")


# ---------------------------------------------------------------------------
# Row computations shared by the pytest reports and the JSON snapshot
# ---------------------------------------------------------------------------

def allreduce_crossover_rows(comm=ANDES.comm) -> list:
    """[P, bytes, tree_us, recdbl_us, ring_us] at the paper's scales."""
    rows = []
    for p, nbytes in [(64, 8 * 256 * 256 // 2), (64, 8 * 32 * 32 // 2),
                      (2048, 8 * 256 * 256 // 2), (2048, 512)]:
        rows.append([
            p, nbytes,
            cost_allreduce_tree(p, nbytes, comm) * 1e6,
            cost_allreduce_recursive_doubling(p, nbytes, comm) * 1e6,
            cost_allreduce_ring(p, nbytes, comm) * 1e6,
        ])
    return rows


def bcast_crossover_rows(comm=ANDES.comm) -> list:
    """[bytes, binomial_ms, scatter_allgather_ms] at P=256."""
    rows = []
    for nbytes in (1 << 10, 1 << 20, 1 << 28):
        rows.append([
            nbytes,
            cost_bcast_binomial(256, nbytes, comm) * 1e3,
            cost_bcast_scatter_allgather(256, nbytes, comm) * 1e3,
        ])
    return rows


def dispatch_rows(comm=ANDES.comm) -> list:
    """[P, bytes, recdbl_us, ring_us, dispatched_us] over both regimes."""
    rows = []
    for p in (8, 64, 512):
        for nbytes in (512, 1 << 14, 1 << 21, 1 << 27):
            rd = cost_allreduce_recursive_doubling(p, nbytes, comm)
            ring = cost_allreduce_ring(p, nbytes, comm)
            auto = dispatched_allreduce_cost(p, nbytes, comm)
            rows.append([p, nbytes, rd * 1e6, ring * 1e6, auto * 1e6])
    return rows


def measure_allreduce(algorithm, n, *, nprocs=P_MEASURED,
                      repeats=MEASURED_REPEATS) -> float:
    """Best-of-``repeats`` wall seconds for one allreduce algorithm."""
    def prog(comm):
        return comm.allreduce(np.ones(n), algorithm=algorithm)

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_spmd(prog, nprocs)
        best = min(best, time.perf_counter() - t0)
    return best


def measured_allreduce_rows(comm=ANDES.comm, *, sizes=MEASURED_SIZES,
                            repeats=MEASURED_REPEATS) -> list:
    """[bytes, recdbl_ms, ring_ms, dispatched_ms, model_rd_us, model_ring_us]."""
    rows = []
    for n in sizes:
        nbytes = n * 8
        rows.append([
            nbytes,
            measure_allreduce("recursive_doubling", n, repeats=repeats) * 1e3,
            measure_allreduce("ring", n, repeats=repeats) * 1e3,
            measure_allreduce(None, n, repeats=repeats) * 1e3,
            cost_allreduce_recursive_doubling(P_MEASURED, nbytes, comm) * 1e6,
            cost_allreduce_ring(P_MEASURED, nbytes, comm) * 1e6,
        ])
    return rows


class TestFunctionalEquivalence:
    """Time the real algorithms against the built-in collectives."""

    def test_bench_allreduce_builtin(self, benchmark):
        def run():
            def prog(comm):
                return comm.allreduce(np.ones(1000))

            return run_spmd(prog, P_FUNCTIONAL)

        benchmark.pedantic(run, rounds=2, iterations=1)

    def test_bench_allreduce_recursive_doubling(self, benchmark):
        def run():
            def prog(comm):
                return allreduce_recursive_doubling(comm, np.ones(1000))

            return run_spmd(prog, P_FUNCTIONAL)

        benchmark.pedantic(run, rounds=2, iterations=1)

    def test_bench_bcast_long_message(self, benchmark):
        def run():
            def prog(comm):
                payload = np.ones(100_000) if comm.rank == 0 else None
                return bcast_scatter_allgather(comm, payload, root=0)

            return run_spmd(prog, P_FUNCTIONAL)

        benchmark.pedantic(run, rounds=2, iterations=1)

    def test_all_variants_agree(self, benchmark):
        def run():
            def prog(comm):
                v = np.arange(64.0) + comm.rank
                a = comm.allreduce(v)
                b = allreduce_recursive_doubling(comm, v)
                g1 = comm.allgather(v[:2])
                g2 = allgather_ring(comm, v[:2])
                slots = [np.array([comm.rank + q]) for q in range(comm.size)]
                r1 = comm.reduce_scatter(slots)
                r2 = reduce_scatter_ring(comm, slots)
                return (
                    np.allclose(a, b)
                    and all(np.allclose(x, y) for x, y in zip(g1, g2))
                    and np.allclose(r1, r2)
                )

            return all(run_spmd(prog, 6).values)

        assert benchmark.pedantic(run, rounds=1, iterations=1)


class TestModeledCrossovers:
    def test_report_crossovers(self, benchmark, write_report):
        rows = benchmark.pedantic(
            allreduce_crossover_rows, rounds=1, iterations=1
        )
        write_report(
            "collectives_allreduce_crossover",
            format_table(
                ["P", "bytes", "tree [us]", "recdbl [us]", "ring [us]"],
                rows,
                title="Modeled allreduce critical paths (Andes alpha/beta)",
            ),
        )
        for p, nbytes, tree, rd, ring in rows:
            # Recursive doubling always beats tree (half the rounds).
            assert rd < tree
            if nbytes <= 512:
                # tiny payloads: latency dominates -> ring loses at scale
                if p >= 2048:
                    assert rd < ring

    def test_report_bcast_long_vs_short(self, benchmark, write_report):
        rows = benchmark.pedantic(bcast_crossover_rows, rounds=1, iterations=1)
        write_report(
            "collectives_bcast_crossover",
            format_table(
                ["bytes", "binomial [ms]", "scatter+allgather [ms]"],
                rows,
                title="Broadcast algorithms, P=256 (Andes alpha/beta)",
            ),
        )
        # Long messages prefer scatter+allgather; short prefer the tree.
        assert rows[0][1] < rows[0][2]
        assert rows[-1][2] < rows[-1][1]

    def test_dispatched_matches_or_beats_fixed_modeled(self, benchmark, write_report):
        """The engine's selection is never worse than either fixed
        algorithm in either regime (far from the crossover it equals the
        better one exactly)."""
        rows = benchmark.pedantic(dispatch_rows, rounds=1, iterations=1)
        write_report(
            "collectives_dispatch_vs_fixed",
            format_table(
                ["P", "bytes", "recdbl [us]", "ring [us]", "dispatched [us]"],
                rows,
                title="Dispatched allreduce vs fixed algorithms (Andes model)",
            ),
        )
        for p, nbytes, rd, ring, auto in rows:
            # The dispatch always selects one of the fixed algorithms,
            # and near the crossover never loses by more than 2x.
            assert auto in (rd, ring)
            assert auto <= 2.0 * min(rd, ring)
            # In the regimes (an order of magnitude away from the
            # crossover) the dispatch picks the winner outright.
            if nbytes <= 1 << 14 or nbytes >= 1 << 27:
                assert auto == pytest.approx(min(rd, ring))

    def test_redistribution_schedule_is_bandwidth_optimal(self, benchmark):
        """The paper's pairwise all-to-all moves (P-1)/P of the local
        data — no schedule can move less, so the modeled cost is within
        ~latency terms of the bandwidth lower bound."""
        comm = ANDES.comm
        p, local_bytes = 16, 8 * (250**4 // 512)

        def compute():
            actual = cost_alltoall_pairwise(p, local_bytes, comm)
            lower_bound = comm.beta * local_bytes * (p - 1) / p
            return actual, lower_bound

        actual, lb = benchmark.pedantic(compute, rounds=1, iterations=1)
        assert actual < lb * 1.01 + p * comm.alpha * 1.01
        assert actual >= lb


class TestMeasuredCrossovers:
    """Wall-clock crossovers on the threaded runtime, next to the model.

    The simulator's measured costs are message-handling overhead plus
    real reduction flops and staging copies, so the small/large regimes
    behave like the alpha/beta model predicts: recursive doubling wins
    tiny payloads on round count; the ring wins big payloads because it
    reduces block-by-block (fewer flops on the critical path) and the
    zero-copy sends remove snapshotting entirely.
    """

    def test_report_measured_allreduce_crossover(self, benchmark, write_report):
        rows = benchmark.pedantic(
            measured_allreduce_rows, rounds=1, iterations=1
        )
        write_report(
            "collectives_measured_crossover",
            format_table(
                ["bytes", "recdbl [ms]", "ring [ms]", "dispatched [ms]",
                 "model recdbl [us]", "model ring [us]"],
                rows,
                title=(
                    f"Measured allreduce wall-clock (P={P_MEASURED}, threaded "
                    "runtime, best of 5) vs Andes model"
                ),
            ),
        )
        # The dispatched engine tracks the better fixed algorithm in
        # both regimes (generous slack: thread scheduling is noisy).
        for nbytes, rd_ms, ring_ms, auto_ms, *_ in rows:
            assert auto_ms <= 2.0 * min(rd_ms, ring_ms), nbytes


# ---------------------------------------------------------------------------
# Versioned JSON snapshot (``repro bench --compare``-able)
# ---------------------------------------------------------------------------

def build_snapshot(*, repeats: int = MEASURED_REPEATS) -> dict:
    """Assemble the ``BENCH_collectives.json`` snapshot dict.

    Modeled sections are deterministic (alpha-beta formulas on the
    Andes machine model); the ``measured`` section is wall-clock on the
    threaded runtime, so comparisons should give it a generous band
    (``repro bench --compare --tolerance-for measured 1.0 ...``).
    """
    modeled_allreduce = {
        f"P{p}.b{nbytes}": {
            "tree_us": round(tree, 3),
            "recdbl_us": round(rd, 3),
            "ring_us": round(ring, 3),
        }
        for p, nbytes, tree, rd, ring in allreduce_crossover_rows()
    }
    modeled_bcast = {
        f"b{nbytes}": {
            "binomial_ms": round(binom, 4),
            "scatter_allgather_ms": round(sag, 4),
        }
        for nbytes, binom, sag in bcast_crossover_rows()
    }
    modeled_dispatch = {
        f"P{p}.b{nbytes}": {
            "recdbl_us": round(rd, 3),
            "ring_us": round(ring, 3),
            "dispatched_us": round(auto, 3),
        }
        for p, nbytes, rd, ring, auto in dispatch_rows()
    }
    measured = {
        f"b{nbytes}": {
            "recdbl_ms": round(rd_ms, 4),
            "ring_ms": round(ring_ms, 4),
            "dispatched_ms": round(auto_ms, 4),
        }
        for nbytes, rd_ms, ring_ms, auto_ms, *_ in
        measured_allreduce_rows(repeats=repeats)
    }
    return {
        "bench": "collectives",
        "version": 1,
        "commit": repo_commit(),
        "generated_unix": int(time.time()),
        "host": host_metadata(),
        "note": (
            "modeled sections are deterministic alpha-beta evaluations "
            "(Andes machine model); 'measured' is threaded-runtime "
            "wall-clock and needs a wide tolerance band when compared."
        ),
        "config": {
            "machine": "andes",
            "p_measured": P_MEASURED,
            "measured_sizes": [n * 8 for n in MEASURED_SIZES],
            "repeats": repeats,
        },
        "modeled_allreduce": modeled_allreduce,
        "modeled_bcast": modeled_bcast,
        "modeled_dispatch": modeled_dispatch,
        "measured_allreduce": measured,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=MEASURED_REPEATS,
                        help="wall-clock repetitions per point (min is kept)")
    parser.add_argument("--out", default=REPORT)
    args = parser.parse_args(argv)

    snapshot = build_snapshot(repeats=args.repeats)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=False)
        fh.write("\n")
    npoints = sum(
        len(snapshot[k]) for k in
        ("modeled_allreduce", "modeled_bcast", "modeled_dispatch",
         "measured_allreduce")
    )
    print(f"wrote {args.out} ({npoints} data points)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
