"""Ablation benches for the design choices called out in DESIGN.md.

Not a paper figure — these quantify the individual design decisions the
paper's algorithms embed:

* structured ``tpqrt`` vs dense QR of the stacked triangles (flop/time
  saving of exploiting triangularity in the TSQR reduction);
* flat-tree TensorLQ (Alg. 2) vs a monolithic LQ of an explicitly
  assembled unfolding (the memory/locality trade the paper's layout
  design avoids);
* butterfly all-reduce TSQR vs reduce-to-root-then-broadcast (the
  butterfly finishes with the factor everywhere in log P rounds);
* mode ordering policies (forward / backward / greedy) when ranks are
  known a priori (Sec. 4.2.3 mentions ordering can be optimized);
* the block-chunking knob of the sequential flat tree.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import greedy_order
from repro.data import low_rank_tensor
from repro.linalg import tensor_lq, gelq, tpqrt, tpqrt_reduce_triangles
from repro.linalg.flops import tpqrt_flops
from repro.perf import ANDES, simulate_sthosvd
from repro.tensor import DenseTensor
from repro.util import format_table


# ---------------------------------------------------------------------------
# tpqrt structured vs dense QR of the stack
# ---------------------------------------------------------------------------
class TestStructuredTpqrt:
    N = 96

    @pytest.fixture(scope="class")
    def triangles(self):
        rng = np.random.default_rng(0)
        return (
            np.triu(rng.standard_normal((self.N, self.N))),
            np.triu(rng.standard_normal((self.N, self.N))),
        )

    def test_bench_structured(self, benchmark, triangles):
        R1, R2 = triangles
        benchmark(lambda: tpqrt_reduce_triangles(R1, R2))

    def test_bench_dense_qr(self, benchmark, triangles):
        R1, R2 = triangles
        benchmark(lambda: np.linalg.qr(np.vstack([R1, R2]))[1])

    def test_flop_saving(self, benchmark, write_report):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        n = self.N
        structured = tpqrt_flops(n, n, n)
        dense = 2 * (2 * n) * n * n - (2 * n**3) // 3
        write_report(
            "ablation_tpqrt_flops",
            format_table(
                ["kernel", "flops"],
                [["tpqrt (triangular)", structured], ["dense QR of stack", dense]],
                title=f"TSQR reduction step flops, n={n}",
            ),
        )
        # Structured reduction does ~3-5x fewer flops.
        assert structured < 0.5 * dense


# ---------------------------------------------------------------------------
# Flat-tree TensorLQ vs monolithic LQ of an assembled unfolding
# ---------------------------------------------------------------------------
class TestFlatTreeVsMonolithic:
    @pytest.fixture(scope="class")
    def tensor(self):
        rng = np.random.default_rng(1)
        return DenseTensor(rng.standard_normal((40, 40, 40, 40)))

    def test_bench_flat_tree(self, benchmark, tensor):
        benchmark.pedantic(lambda: tensor_lq(tensor, 1), rounds=2, iterations=1)

    def test_bench_monolithic(self, benchmark, tensor):
        # Assemble the (non-contiguous) unfolding explicitly, then LQ.
        benchmark.pedantic(
            lambda: gelq(np.ascontiguousarray(tensor.unfold(1))),
            rounds=2, iterations=1,
        )

    def test_same_factor(self, benchmark, tensor):
        L1 = benchmark.pedantic(lambda: tensor_lq(tensor, 1), rounds=1, iterations=1)
        L2 = gelq(np.ascontiguousarray(tensor.unfold(1)))
        np.testing.assert_allclose(L1 @ L1.T, L2 @ L2.T, rtol=1e-8, atol=1e-8)


# ---------------------------------------------------------------------------
# Butterfly vs reduce+broadcast tree (modeled communication)
# ---------------------------------------------------------------------------
class TestButterflyVsReduceBcast:
    def test_report_comm_costs(self, benchmark, write_report):
        """Both trees move O(n^2 log P) words, but the butterfly needs a
        single phase of log P exchanges while reduce+bcast needs two
        sequential phases — 2x the latency on the critical path."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        n, word = 256, 8
        alpha, beta = ANDES.comm.alpha, ANDES.comm.beta
        tri_bytes = n * (n + 1) / 2 * word
        rows = []
        for P in (32, 256, 2048):
            steps = math.ceil(math.log2(P))
            butterfly = steps * (alpha + beta * tri_bytes)
            reduce_bcast = 2 * steps * (alpha + beta * tri_bytes)
            rows.append([P, butterfly * 1e3, reduce_bcast * 1e3])
        write_report(
            "ablation_butterfly_tree",
            format_table(
                ["P", "butterfly [ms]", "reduce+bcast [ms]"],
                rows,
                title=f"TSQR tree critical path, n={n} triangle",
            ),
        )
        assert all(r[1] < r[2] for r in rows)


# ---------------------------------------------------------------------------
# Mode ordering with known ranks
# ---------------------------------------------------------------------------
class TestModeOrdering:
    SHAPE = (400, 100, 300, 50)
    RANKS = (10, 40, 15, 40)

    def test_report_ordering(self, benchmark, write_report):
        def compute():
            orders = {
                "forward": "forward",
                "backward": "backward",
                "greedy": greedy_order(self.SHAPE, self.RANKS),
            }
            return {
                name: simulate_sthosvd(
                    self.SHAPE, self.RANKS, (2, 2, 2, 2), method="qr",
                    mode_order=order, machine=ANDES,
                )
                for name, order in orders.items()
            }

        runs = benchmark.pedantic(compute, rounds=1, iterations=1)
        rows = [
            [name, run.total_seconds, run.flops_total / 1e9]
            for name, run in runs.items()
        ]
        write_report(
            "ablation_mode_ordering",
            format_table(
                ["ordering", "modeled s", "GFLOP"],
                rows,
                title=f"Mode ordering, shape {self.SHAPE} -> ranks {self.RANKS}",
            ),
        )
        # Greedy is a heuristic (Sec. 4.2.3): it tracks reduction ratios
        # but ignores that early modes process the largest intermediate
        # tensor, so it is not always optimal.  It must, however, avoid
        # the worst naive ordering and stay near the best.
        t = {name: run.total_seconds for name, run in runs.items()}
        assert t["greedy"] <= max(t["forward"], t["backward"]) * 1.01
        assert t["greedy"] <= min(t["forward"], t["backward"]) * 1.3


# ---------------------------------------------------------------------------
# Flat-tree chunking knob
# ---------------------------------------------------------------------------
class TestChunking:
    def test_report_chunk_effect(self, benchmark, write_report):
        """The per-call overhead the chunked flat tree removes: one
        tpqrt per block vs one per ~512-column chunk."""
        rng = np.random.default_rng(3)
        X = DenseTensor(rng.standard_normal((30, 30, 30, 30)))
        rows_dim = 30

        def per_block():
            Rt = np.triu(gelq(np.concatenate(
                [X.column_block(1, j) for j in range(1)], axis=1)).T).copy()
            work = np.empty((30, rows_dim))
            for j in range(1, X.num_column_blocks(1)):
                np.copyto(work, X.column_block(1, j).T)
                tpqrt(np.ascontiguousarray(Rt), work)
            return Rt

        import time

        t0 = time.perf_counter()
        per_block()
        t_block = time.perf_counter() - t0
        t0 = time.perf_counter()
        L = benchmark.pedantic(lambda: tensor_lq(X, 1), rounds=1, iterations=1)
        t_chunk = time.perf_counter() - t0
        write_report(
            "ablation_chunking",
            format_table(
                ["variant", "seconds"],
                [["one tpqrt per block", t_block], ["chunked (library)", t_chunk]],
                title="Flat-tree chunking, 30^4 tensor, mode 1",
            ),
        )
        assert t_chunk < t_block


# ---------------------------------------------------------------------------
# Flat vs binary sequential TSQR tree
# ---------------------------------------------------------------------------
class TestTreeShape:
    @pytest.fixture(scope="class")
    def tensor(self):
        rng = np.random.default_rng(7)
        return DenseTensor(rng.standard_normal((36, 36, 36, 36)))

    def test_bench_flat_tree(self, benchmark, tensor):
        benchmark.pedantic(lambda: tensor_lq(tensor, 1), rounds=2, iterations=1)

    def test_bench_binary_tree(self, benchmark, tensor):
        from repro.linalg import tensor_lq_binary_tree

        benchmark.pedantic(
            lambda: tensor_lq_binary_tree(tensor, 1), rounds=2, iterations=1
        )

    def test_same_factor(self, benchmark, tensor):
        from repro.linalg import tensor_lq_binary_tree

        L1 = benchmark.pedantic(lambda: tensor_lq(tensor, 1), rounds=1, iterations=1)
        L2 = tensor_lq_binary_tree(tensor, 1)
        np.testing.assert_allclose(L1 @ L1.T, L2 @ L2.T, rtol=1e-8, atol=1e-8)


# ---------------------------------------------------------------------------
# Blocked (WY) vs unblocked Householder QR
# ---------------------------------------------------------------------------
class TestBlockedQrAblation:
    M, N = 4000, 64

    @pytest.fixture(scope="class")
    def tall(self):
        rng = np.random.default_rng(8)
        return rng.standard_normal((self.M, self.N))

    def test_bench_unblocked(self, benchmark, tall):
        from repro.linalg import qr_r

        benchmark.pedantic(lambda: qr_r(tall), rounds=2, iterations=1)

    def test_bench_blocked(self, benchmark, tall):
        from repro.linalg import qr_r_blocked

        benchmark.pedantic(lambda: qr_r_blocked(tall, block=32), rounds=2, iterations=1)

    def test_equivalent(self, benchmark, tall):
        from repro.linalg import qr_r, qr_r_blocked

        R1 = benchmark.pedantic(
            lambda: qr_r_blocked(tall, block=32), rounds=1, iterations=1
        )
        R2 = qr_r(tall)
        np.testing.assert_allclose(np.abs(R1), np.abs(R2), atol=1e-9)
