"""Future-work extensions (paper Sec. 5) — comparison benches.

The paper's conclusion names three follow-ups; all are implemented here
and compared against the paper's own methods:

1. **Randomized SVD** as the loose-tolerance competitor ("randomized and
   iterative algorithms are likely to be competitive and should be
   compared against" Gram-single).
2. **Parallel SVD of the triangular factor** (Brent-Luk one-sided
   Jacobi) replacing the redundant sequential SVD — the stated
   bottleneck for modes of dimension >= ~10,000.
3. **Mixed precision within Gram-SVD**: float32 data, float64
   accumulation — Gram's cost with (nearly) QR-single's accuracy floor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd
from repro.data import (
    geometric_spectrum,
    low_rank_tensor,
    matrix_with_spectrum,
    tensor_with_mode_spectra,
)
from repro.dist import DistributedTensor, GridComms, ProcessorGrid, par_tensor_qr_svd
from repro.linalg import gram_svd, jacobi_left_svd, left_svd_of_triangle
from repro.mpi import run_spmd
from repro.util import format_table


# ---------------------------------------------------------------------------
# 1. Randomized SVD vs Gram-single at loose tolerances
# ---------------------------------------------------------------------------
class TestRandomizedComparison:
    # Randomized pays O(mn(r+p)) against Gram's O(m^2 n): it wins when
    # the sketch width r+p is well below the mode dimension, so the
    # comparison uses a large leading mode and a thin sketch.
    SHAPE = (96, 44, 40)
    RANKS = (6, 6, 6)
    SKETCH = {"oversample": 4, "power_iters": 0}

    @pytest.fixture(scope="class")
    def tensor(self):
        spectra = [geometric_spectrum(s, 1.0, 1e-9) for s in self.SHAPE]
        return tensor_with_mode_spectra(self.SHAPE, spectra, rng=21)

    @pytest.mark.parametrize("method", ["gram", "qr", "randomized"])
    def test_bench_methods(self, benchmark, tensor, method):
        Xf = tensor.astype(np.float32)
        opts = self.SKETCH if method == "randomized" else None
        benchmark.pedantic(
            lambda: sthosvd(Xf, ranks=self.RANKS, method=method, svd_options=opts),
            rounds=2, iterations=1,
        )

    def test_report_randomized(self, benchmark, tensor, write_report):
        Xf = tensor.astype(np.float32)

        def compute():
            rows = []
            for method in ("gram", "qr", "randomized"):
                opts = self.SKETCH if method == "randomized" else None
                res = sthosvd(Xf, ranks=self.RANKS, method=method, svd_options=opts)
                rows.append(
                    [method, res.flops.total / 1e6,
                     res.tucker.rel_error(tensor)]
                )
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        write_report(
            "ext_randomized_comparison",
            format_table(
                ["method", "Mflop", "rel error vs f64 data"],
                rows,
                title=f"Loose-tolerance comparison at fixed ranks {self.RANKS} (f32)",
            ),
        )
        flops = {r[0]: r[1] for r in rows}
        errs = {r[0]: r[2] for r in rows}
        # Randomized does the least work at low target rank...
        assert flops["randomized"] < flops["gram"] < flops["qr"]
        # ...and matches the error at this (loose) accuracy regime.
        assert errs["randomized"] < 3 * errs["qr"]


# ---------------------------------------------------------------------------
# 2. Parallel Jacobi SVD of the triangular factor
# ---------------------------------------------------------------------------
class TestParallelTriangleSvd:
    N = 120

    @pytest.fixture(scope="class")
    def triangle(self):
        rng = np.random.default_rng(9)
        return np.tril(rng.standard_normal((self.N, self.N)))

    def test_bench_sequential_gesvd(self, benchmark, triangle):
        benchmark(lambda: left_svd_of_triangle(triangle))

    def test_bench_sequential_jacobi(self, benchmark, triangle):
        benchmark.pedantic(lambda: jacobi_left_svd(triangle), rounds=1, iterations=1)

    def test_report_parallel_jacobi(self, benchmark, triangle, write_report):
        from repro.dist import par_jacobi_left_svd

        def run(P):
            def prog(comm):
                return par_jacobi_left_svd(comm, triangle)

            import time

            t0 = time.perf_counter()
            res = run_spmd(prog, P)
            return time.perf_counter() - t0, res[0][1]

        def compute():
            rows = []
            sref = np.linalg.svd(triangle, compute_uv=False)
            for P in (1, 2, 4):
                secs, s = run(P)
                err = float(np.abs(np.asarray(s) - sref).max())
                rows.append([P, secs, err])
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        write_report(
            "ext_parallel_jacobi",
            format_table(
                ["ranks", "wall s", "max |sigma err|"],
                rows,
                title=f"Parallel Jacobi SVD of a {self.N}x{self.N} triangle",
            ),
        )
        # Correct at every rank count.
        for _, _, err in rows:
            assert err < 1e-10

    def test_sthosvd_quality_with_jacobi_solver(self, benchmark):
        """End-to-end: the jacobi triangle solver inside parallel QR-SVD
        gives the same singular values as the LAPACK path."""
        X = low_rank_tensor((12, 10, 8), (3, 3, 3), rng=2, noise=1e-9)

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((2, 2, 1)))
            dt = DistributedTensor.from_full(comms, X.data)
            s_lapack = par_tensor_qr_svd(dt, 0, triangle_solver="lapack")[1]
            s_jacobi = par_tensor_qr_svd(dt, 0, triangle_solver="jacobi")[1]
            return float(np.abs(s_lapack - s_jacobi).max())

        err = benchmark.pedantic(
            lambda: max(run_spmd(prog, 4).values), rounds=1, iterations=1
        )
        assert err < 1e-10


# ---------------------------------------------------------------------------
# 3. Mixed-precision Gram
# ---------------------------------------------------------------------------
class TestMixedGram:
    @pytest.fixture(scope="class")
    def decaying(self):
        shape = (40, 36, 32)
        spectra = [geometric_spectrum(s, 1.0, 1e-10) for s in shape]
        return tensor_with_mode_spectra(shape, spectra, rng=22)

    @pytest.mark.parametrize("method", ["gram", "gram-mixed", "qr"])
    def test_bench_variants(self, benchmark, decaying, method):
        Xf = decaying.astype(np.float32)
        benchmark.pedantic(
            lambda: sthosvd(Xf, tol=1e-4, method=method), rounds=2, iterations=1
        )

    def test_report_mixed_gram(self, benchmark, decaying, write_report):
        Xf = decaying.astype(np.float32)

        def compute():
            rows = []
            for method in ("gram", "gram-mixed", "qr"):
                res = sthosvd(Xf, tol=1e-4, method=method)
                rows.append(
                    [method, str(res.ranks), res.tucker.compression_ratio(),
                     res.tucker.rel_error(decaying)]
                )
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        write_report(
            "ext_mixed_gram",
            format_table(
                ["method (f32, tol 1e-4)", "ranks", "compression", "rel error"],
                rows,
                title="Mixed-precision Gram restores f32 truncation",
            ),
        )
        by = {r[0]: r for r in rows}
        # Plain Gram-single fails; mixed matches the QR-single result.
        assert by["gram"][2] < 2.0
        assert by["gram-mixed"][1] == by["qr"][1]
        assert by["gram-mixed"][3] <= 2e-4

    def test_matrix_floor_improvement(self, benchmark, write_report):
        """Fig. 1-style check: mixed Gram resolves ~eps_single, plain
        Gram only sqrt(eps_single)."""
        true = geometric_spectrum(60, 1.0, 1e-12)
        A = matrix_with_spectrum(60, 60, true, rng=13).astype(np.float32)

        from repro.linalg.gram import gram_matrix
        from repro.linalg.svd import svd_from_gram

        def compute():
            _, s_plain = gram_svd(A)
            G = gram_matrix(A, accumulate="double")
            _, s_mixed = svd_from_gram(G)
            return np.asarray(s_plain, dtype=np.float64), np.asarray(s_mixed)

        s_plain, s_mixed = benchmark.pedantic(compute, rounds=1, iterations=1)

        def floor(c):
            bad = np.nonzero(np.abs(np.log10(np.maximum(c, 1e-300)) - np.log10(true)) > 1.0)[0]
            return true[bad[0]] if bad.size else true[-1]

        f_plain, f_mixed = floor(s_plain), floor(s_mixed)
        write_report(
            "ext_mixed_gram_floor",
            f"plain Gram f32 floor: {f_plain:.2e}\nmixed Gram floor:    {f_mixed:.2e}",
        )
        assert f_mixed < f_plain / 10
