"""Figure 1 — computed singular values of Gram-SVD vs QR-SVD.

Paper setup: an 80x80 matrix with geometrically decaying singular values
from 1 to 1e-18 and random singular vectors; each algorithm runs in
single and double precision.  Expected shape: the methods lose accuracy
in the order Gram-single (~sqrt(eps_s) ~ 3e-4), QR-single (~eps_s ~
1e-7), Gram-double (~sqrt(eps_d) ~ 1e-8), QR-double (accurate to
1e-18).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import geometric_spectrum, matrix_with_spectrum
from repro.linalg import gram_svd, qr_svd
from repro.util import format_table

from conftest import VARIANTS

N = 80
TRUE = geometric_spectrum(N, 1.0, 1e-18)


@pytest.fixture(scope="module")
def matrix():
    return matrix_with_spectrum(N, N, TRUE, rng=20210809)


def _svd(method, precision, A):
    Af = A.astype(np.float32) if precision == "single" else A
    fn = qr_svd if method == "qr" else gram_svd
    return fn(Af)[1]


def _accuracy_floor(computed):
    """True singular value at which the computed ones diverge (>1 decade)."""
    c = np.maximum(np.asarray(computed, dtype=np.float64), 1e-300)
    bad = np.nonzero(np.abs(np.log10(c) - np.log10(TRUE)) > 1.0)[0]
    return TRUE[bad[0]] if bad.size else TRUE[-1]


@pytest.mark.parametrize("method,precision", VARIANTS)
def test_bench_svd(benchmark, matrix, method, precision):
    """Time each SVD variant on the Fig. 1 matrix."""
    benchmark(_svd, method, precision, matrix)


def test_report_fig1(benchmark, matrix, write_report):
    def compute():
        rows = []
        floors = {}
        for method, precision in VARIANTS:
            sigma = _svd(method, precision, matrix)
            floor = _accuracy_floor(sigma)
            floors[(method, precision)] = floor
            rows.append(
                [
                    f"{method}-{precision}",
                    float(sigma[0]),
                    float(sigma[N // 2]),
                    float(sigma[-1]),
                    float(floor),
                ]
            )
        return rows, floors

    rows, floors = benchmark.pedantic(compute, rounds=1, iterations=1)
    txt = format_table(
        ["variant", "sigma_1", "sigma_40", "sigma_80", "accuracy floor"],
        rows,
        title="Fig. 1: computed singular values, 80x80 geometric 1..1e-18",
    )
    write_report("fig1_svd_accuracy", txt)

    # Paper shape: floors ordered gram-s > qr-s, gram-s > gram-d > qr-d.
    assert floors[("gram", "single")] > floors[("qr", "single")]
    assert floors[("gram", "single")] > floors[("gram", "double")]
    assert floors[("gram", "double")] > floors[("qr", "double")]
    # Gram-single fails around sqrt(eps_s); QR-double resolves everything.
    assert 1e-7 < floors[("gram", "single")] < 1e-2
    assert floors[("qr", "double")] <= TRUE[-1] * 10
