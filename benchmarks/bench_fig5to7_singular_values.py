"""Figures 5-7 — per-mode singular values of the application datasets.

Paper setup: run ST-HOSVD *without compression* on HCCI, SP, and Video
(surrogates here; see DESIGN.md) with each algorithm x precision, and
plot the per-mode singular values normalized to sigma_1 = 1.  Expected
shapes:

* combustion (HCCI Fig. 5, SP Fig. 6): spectra span ~10 orders of
  magnitude — highly compressible;
* video (Fig. 7): ~2 orders of fast decay then a long flat tail —
  little compressibility at tight tolerances;
* every variant except QR-double shows a visible noise floor where its
  computed values flatten out: Gram-single near sqrt(eps_s), QR-single
  near eps_s, Gram-double near sqrt(eps_d).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd
from repro.data import hcci_surrogate, sp_surrogate, video_surrogate
from repro.util import format_table

from conftest import VARIANTS

DATASETS = {
    "fig5_hcci": lambda: hcci_surrogate(shape=(48, 48, 24, 48)),
    "fig6_sp": lambda: sp_surrogate(shape=(24, 24, 24, 11, 16)),
    "fig7_video": lambda: video_surrogate(shape=(36, 64, 3, 72)),
}


def _mode_sigmas(X, method, precision):
    res = sthosvd(X, method=method, precision=precision)
    return {n: s / s[0] for n, s in res.sigmas.items()}


@pytest.fixture(scope="module")
def tensors():
    return {name: make() for name, make in DATASETS.items()}


@pytest.mark.parametrize("name", list(DATASETS))
def test_bench_singular_value_study(benchmark, tensors, name):
    """Time the full (uncompressed) ST-HOSVD pass used for the study."""
    X = tensors[name]
    benchmark.pedantic(
        lambda: sthosvd(X, method="qr"), rounds=1, iterations=1, warmup_rounds=0
    )


@pytest.mark.parametrize("name", list(DATASETS))
def test_report_singular_values(benchmark, tensors, name, write_report):
    X = tensors[name]

    def compute():
        return {
            (m, p): _mode_sigmas(X, m, p) for m, p in VARIANTS
        }

    all_sigmas = benchmark.pedantic(compute, rounds=1, iterations=1)

    # Report: per mode, the normalized sigma at head/middle/tail per variant.
    sections = []
    qr_double = all_sigmas[("qr", "double")]
    for n in sorted(qr_double):
        rows = []
        for m, p in VARIANTS:
            s = all_sigmas[(m, p)][n]
            rows.append(
                [f"{m}-{p}", float(s[0]), float(s[len(s) // 2]), float(s[-1])]
            )
        sections.append(
            format_table(
                ["variant", "sigma_1", "sigma_mid", "sigma_last"],
                rows,
                title=f"{name} mode {n} (normalized)",
            )
        )
    write_report(f"{name}_singular_values", "\n\n".join(sections))

    # Shape assertions.
    is_video = "video" in name
    for n, s_ref in qr_double.items():
        if X.shape[n] < 8:
            continue  # tiny modes (video channels, SP variables) excluded
        if is_video:
            # plateau: tail well above combustion decay
            assert s_ref[-1] > 1e-7
        else:
            # combustion: many orders of decay
            assert s_ref[-1] < 1e-6
    # Noise floors: for combustion data, each variant's tail is bounded
    # below by its theoretical floor while QR-double goes deepest.
    if not is_video:
        tails = {
            (m, p): min(float(s[-1]) for n, s in all_sigmas[(m, p)].items()
                        if X.shape[n] >= 8)
            for m, p in VARIANTS
        }
        assert tails[("gram", "single")] > 1e-6
        assert tails[("qr", "double")] <= tails[("gram", "double")]
        assert tails[("qr", "double")] <= tails[("qr", "single")]
        assert tails[("qr", "single")] < tails[("gram", "single")]
