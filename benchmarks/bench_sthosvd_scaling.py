"""Strong-scaling snapshot: threaded vs process-backend ST-HOSVD.

Runs the parallel ST-HOSVD driver and the parallel-LQ (TSQR)
microbenchmark at 1, 2, and 4 ranks on both transport backends and
emits a machine-readable ``BENCH_sthosvd_scaling.json`` snapshot —
the first artifact of the ROADMAP's benchmark-gating item: versioned
JSON carrying the config, the commit, measured wall/compute times, and
the CommTrace message/byte counters, so future changes to the hot
paths can be diffed against it with tolerance bands.

Honesty notes recorded in the snapshot itself:

* ``host.cpu_count`` is embedded because the threads-vs-procs
  comparison is meaningful only on a multi-core host.  On a single
  core the process backend's fork/IPC overhead makes it *slower* —
  the expected crossover needs >= 2 cores and shows up in CI's
  multi-core runners.
* wall times include world spawn/teardown (what a user experiences);
  ``compute_s`` is the slowest rank's in-program time, excluding
  transport setup.

Usage::

    PYTHONPATH=src python benchmarks/bench_sthosvd_scaling.py [--reps N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import sthosvd_parallel  # noqa: E402
from repro.dist import (  # noqa: E402
    DistributedTensor,
    GridComms,
    ProcessorGrid,
    block_range,
    butterfly_tsqr_reduce,
)
from repro.mpi import CommTrace, run_spmd  # noqa: E402

SHAPE = (96, 64, 48)
RANKS = (12, 10, 8)
METHOD = "qr"
RANK_COUNTS = (1, 2, 4)
BACKENDS = ("threads", "procs")

LQ_ROWS = 4096
LQ_COLS = 64

REPORT = os.path.join(os.path.dirname(__file__), "reports",
                      "BENCH_sthosvd_scaling.json")


def _commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=os.path.dirname(__file__), check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _sthosvd_prog(comm, data):
    comms = GridComms(comm, ProcessorGrid((comm.size, 1, 1)))
    dt = DistributedTensor.from_full(comms, data)
    t0 = time.perf_counter()
    res = sthosvd_parallel(dt, ranks=RANKS, method=METHOD)
    elapsed = time.perf_counter() - t0
    return {"elapsed": elapsed, "ranks": res.ranks}


def _lq_prog(comm):
    start, stop = block_range(LQ_ROWS, comm.size, comm.rank)
    local = np.random.default_rng(1000 + comm.rank).standard_normal(
        (stop - start, LQ_COLS)
    )
    t0 = time.perf_counter()
    R_local = np.linalg.qr(local, mode="r")
    R = butterfly_tsqr_reduce(comm, R_local)
    elapsed = time.perf_counter() - t0
    return {"elapsed": elapsed, "check": float(np.abs(R).sum())}


def _measure(fn, nprocs, backend, reps, *args, comm_trace=None):
    walls, computes = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run_spmd(fn, nprocs, *args, backend=backend,
                       comm_trace=comm_trace)
        walls.append(time.perf_counter() - t0)
        computes.append(max(v["elapsed"] for v in res.values))
    return {
        "wall_s": [round(w, 4) for w in walls],
        "best_wall_s": round(min(walls), 4),
        "best_compute_s": round(min(computes), 4),
    }


def _trace_counters(trace: CommTrace) -> dict:
    snap = trace.to_dict()["totals"]
    return {k: snap[k] for k in (
        "sent_messages", "sent_bytes", "copied_bytes", "moved_bytes",
        "recv_messages", "recv_bytes",
    )}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per configuration (min is kept)")
    parser.add_argument("--out", default=REPORT)
    args = parser.parse_args(argv)

    data = np.asfortranarray(
        np.random.default_rng(7).standard_normal(SHAPE)
    )

    sthosvd: dict = {}
    lq: dict = {}
    traces: dict = {}
    for backend in BACKENDS:
        sthosvd[backend] = {}
        lq[backend] = {}
        for nprocs in RANK_COUNTS:
            sthosvd[backend][str(nprocs)] = _measure(
                _sthosvd_prog, nprocs, backend, args.reps, data
            )
            lq[backend][str(nprocs)] = _measure(
                _lq_prog, nprocs, backend, args.reps
            )
            print(f"sthosvd {backend:7s} P={nprocs}: "
                  f"{sthosvd[backend][str(nprocs)]['best_wall_s']:.3f}s wall, "
                  f"lq: {lq[backend][str(nprocs)]['best_wall_s']:.3f}s")
        trace = CommTrace()
        run_spmd(_sthosvd_prog, max(RANK_COUNTS), data, backend=backend,
                 comm_trace=trace)
        traces[backend] = _trace_counters(trace)

    p = str(max(RANK_COUNTS))
    speedup = (sthosvd["threads"][p]["best_wall_s"]
               / sthosvd["procs"][p]["best_wall_s"])
    snapshot = {
        "bench": "sthosvd_scaling",
        "version": 1,
        "commit": _commit(),
        "generated_unix": int(time.time()),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "procs-over-threads speedup requires a multi-core host; on "
            "cpu_count=1 the process backend pays fork/IPC overhead with "
            "no parallelism to win back (see docs/mpi-runtime.md)."
        ),
        "config": {
            "shape": list(SHAPE),
            "ranks": list(RANKS),
            "method": METHOD,
            "rank_counts": list(RANK_COUNTS),
            "reps": args.reps,
            "lq_rows": LQ_ROWS,
            "lq_cols": LQ_COLS,
        },
        "sthosvd": sthosvd,
        "lq_microbench": lq,
        "comm_trace_totals": traces,
        "speedup_procs_over_threads_at_max_ranks": round(speedup, 3),
    }
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {args.out} "
          f"(speedup procs/threads at P={p}: {speedup:.2f}x "
          f"on {os.cpu_count()} cpus)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
