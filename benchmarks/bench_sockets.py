"""Socket-transport overhead snapshot: sockets vs procs on loopback.

Measures what the framed-TCP wire costs relative to the shared-memory
rings of the procs backend, with identical worker processes and the
same master-resident world on both sides:

* **launch** — world spin-up + teardown of a trivial 4-rank program
  (fork + rendezvous handshake on sockets, fork + pipe plumbing on
  procs);
* **pingpong** — rank 0 <-> rank 1 round-trip latency at 8 B and
  64 KiB (framing + syscall cost per message);
* **allreduce** — a 1 MiB allreduce across 4 ranks (bulk-payload
  throughput through the codec paths);
* **sthosvd** — a small parallel ST-HOSVD end to end (the paper's
  workload shape: QR panels, Gram/SVD collectives, truncating TTMs).

Emits ``BENCH_sockets.json`` in the versioned snapshot schema that
``repro bench --compare`` diffs with tolerance bands; the committed
report pins the loopback overhead so a transport change that bloats
framing or serializes sends fails CI as a perf regression.  All times
are best-of-reps, lower is better; ``overhead`` holds the
sockets/procs wall ratios (also lower-is-better; a ratio near 1 means
the TCP wire is keeping up with shared memory).

Usage::

    PYTHONPATH=src python benchmarks/bench_sockets.py \
        [--reps N] [--out BENCH_sockets.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.core.sthosvd_parallel import sthosvd_parallel  # noqa: E402
from repro.data import low_rank_tensor  # noqa: E402
from repro.dist import (  # noqa: E402
    DistributedTensor,
    GridComms,
    ProcessorGrid,
)
from repro.mpi import run_spmd  # noqa: E402

REPORT = os.path.join(os.path.dirname(__file__), "reports",
                      "BENCH_sockets.json")
BACKENDS = ("procs", "sockets")
NPROCS = 4
PINGPONG_ITERS = 200
ALLREDUCE_ITERS = 20
ALLREDUCE_ELEMS = 131_072  # 1 MiB of float64
STHOSVD_SHAPE = (24, 24, 16)
STHOSVD_GRID = (2, 2, 1)

_X = low_rank_tensor(STHOSVD_SHAPE, (6, 6, 4), rng=7, noise=1e-9)


def _commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=os.path.dirname(__file__), check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _noop_program(comm):
    return comm.rank


def _pingpong_program(comm, nbytes, iters):
    """Rank 0 measures round trips to rank 1; others idle at a barrier."""
    payload = np.zeros(max(1, nbytes // 8))
    comm.barrier()
    rtt = None
    if comm.rank == 0:
        t0 = time.perf_counter()
        for i in range(iters):
            comm.send(payload, 1, tag=i)
            comm.recv(1, tag=i)
        rtt = (time.perf_counter() - t0) / iters
    elif comm.rank == 1:
        for i in range(iters):
            got = comm.recv(0, tag=i)
            # copy before echoing: on the procs backend the received
            # array can be a zero-copy view into a recyclable ring slot
            comm.send(got.copy(), 0, tag=i)
    comm.barrier()
    return rtt


def _allreduce_program(comm, elems, iters):
    x = np.full(elems, float(comm.rank + 1))
    comm.allreduce(x)  # warm the dispatch path once
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(iters):
        comm.allreduce(x)
    return (time.perf_counter() - t0) / iters


def _sthosvd_program(comm):
    comms = GridComms(comm, ProcessorGrid(STHOSVD_GRID))
    dt = DistributedTensor.from_full(comms, _X.data)
    res = sthosvd_parallel(dt, tol=1e-6, method="qr")
    return res.ranks


def _best(fn, reps):
    walls = []
    for _ in range(reps):
        t0 = time.perf_counter()
        value = fn()
        walls.append(time.perf_counter() - t0)
    return min(walls), value


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--reps", type=int, default=3,
                    help="timing repetitions (best-of)")
    ap.add_argument("--out", default=REPORT)
    args = ap.parse_args(argv)

    sections = {name: {} for name in
                ("launch", "pingpong", "allreduce", "sthosvd")}
    for backend in BACKENDS:
        wall, _ = _best(
            lambda: run_spmd(_noop_program, NPROCS, backend=backend),
            args.reps)
        sections["launch"][backend] = {"best_wall_s": round(wall, 6)}

        entry = {}
        for label, nbytes in (("rtt8_us", 8), ("rtt64k_us", 65536)):
            best = None
            for _ in range(args.reps):
                res = run_spmd(_pingpong_program, 2, nbytes, PINGPONG_ITERS,
                               backend=backend)
                rtt = res.values[0]
                best = rtt if best is None else min(best, rtt)
            entry[label] = round(best * 1e6, 3)
        sections["pingpong"][backend] = entry

        best = None
        for _ in range(args.reps):
            res = run_spmd(_allreduce_program, NPROCS, ALLREDUCE_ELEMS,
                           ALLREDUCE_ITERS, backend=backend)
            per_call = max(v for v in res.values)
            best = per_call if best is None else min(best, per_call)
        sections["allreduce"][backend] = {"best_call_s": round(best, 6)}

        wall, ranks = _best(
            lambda: run_spmd(_sthosvd_program, NPROCS, backend=backend),
            args.reps)
        sections["sthosvd"][backend] = {"best_wall_s": round(wall, 6)}
        sections["sthosvd"].setdefault("ranks", list(ranks[0]))

    overhead = {
        "launch_ratio": round(
            sections["launch"]["sockets"]["best_wall_s"]
            / sections["launch"]["procs"]["best_wall_s"], 3),
        "pingpong8_ratio": round(
            sections["pingpong"]["sockets"]["rtt8_us"]
            / sections["pingpong"]["procs"]["rtt8_us"], 3),
        "allreduce_ratio": round(
            sections["allreduce"]["sockets"]["best_call_s"]
            / sections["allreduce"]["procs"]["best_call_s"], 3),
        "sthosvd_ratio": round(
            sections["sthosvd"]["sockets"]["best_wall_s"]
            / sections["sthosvd"]["procs"]["best_wall_s"], 3),
    }

    snap = {
        "bench": "sockets",
        "version": 1,
        "commit": _commit(),
        "generated_unix": int(time.time()),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": "loopback socket transport vs shared-memory procs "
                "transport; identical forked workers and master-resident "
                "world, only the wire differs; best-of-reps walls, "
                "overhead ratios are sockets/procs (lower is better).",
        "config": {
            "nprocs": NPROCS,
            "pingpong_iters": PINGPONG_ITERS,
            "allreduce_elems": ALLREDUCE_ELEMS,
            "allreduce_iters": ALLREDUCE_ITERS,
            "sthosvd_shape": list(STHOSVD_SHAPE),
            "sthosvd_grid": list(STHOSVD_GRID),
            "reps": args.reps,
        },
        "overhead": overhead,
        **sections,
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=2)
        fh.write("\n")
    print(json.dumps(snap, indent=2))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
