"""Table 2 / Figure 8 — HCCI compression, error, and time per tolerance.

Paper setup: compress HCCI at tolerances 1e-2, 1e-4, 1e-6, 1e-8 with all
four variants (4 nodes, backward ordering, 16x8x1x1 grid).  Expected
qualitative rows (Tab. 2):

* 1e-2: all four variants reach the same compression and error;
* 1e-4: Gram-single fails (compression 1.0, error stuck near its noise
  floor); the other three agree; QR-single is the fastest accurate one;
* 1e-6: QR-single degrades (error above tolerance / worse compression);
  Gram-double and QR-double agree;
* 1e-8: only QR-double attains the tolerance.

Functional runs at surrogate scale for accuracy/compression; modeled
runs at the paper's full HCCI dimensions for the Fig. 8b breakdown.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd
from repro.data import hcci_surrogate, PAPER_SHAPES
from repro.perf import ANDES, breakdown_table, simulate_sthosvd, variant_label
from repro.util import format_table

from conftest import VARIANTS

TOLERANCES = [1e-2, 1e-4, 1e-6, 1e-8]


@pytest.fixture(scope="module")
def hcci():
    return hcci_surrogate(shape=(48, 48, 24, 48))


def _row(X, tol, method, precision):
    res = sthosvd(X, tol=tol, method=method, precision=precision,
                  mode_order="backward")
    err = res.tucker.rel_error(X)
    return res.tucker.compression_ratio(), err, res.ranks


@pytest.mark.parametrize("method,precision", VARIANTS)
def test_bench_hcci_sthosvd(benchmark, hcci, method, precision):
    benchmark.pedantic(
        lambda: sthosvd(hcci, tol=1e-4, method=method, precision=precision,
                        mode_order="backward"),
        rounds=1, iterations=1,
    )


def test_report_tab2(benchmark, hcci, write_report):
    def compute():
        table = {}
        for tol in TOLERANCES:
            for m, p in VARIANTS:
                table[(tol, m, p)] = _row(hcci, tol, m, p)
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for tol in TOLERANCES:
        row = [f"{tol:.0e}"]
        for m, p in VARIANTS:
            cr, err, _ = table[(tol, m, p)]
            row.extend([cr, err])
        rows.append(row)
    headers = ["tol"]
    for m, p in VARIANTS:
        headers.extend([f"{m}-{p} compr", f"{m}-{p} err"])
    write_report(
        "tab2_hcci_compression",
        format_table(headers, rows, title="Tab. 2 (HCCI surrogate): compression & error"),
    )

    # --- 1e-2: everyone agrees and satisfies the tolerance -------------
    crs = {v: table[(1e-2, *v)][0] for v in VARIANTS}
    errs = {v: table[(1e-2, *v)][1] for v in VARIANTS}
    base_cr = crs[("qr", "double")]
    for v in VARIANTS:
        assert crs[v] == pytest.approx(base_cr, rel=0.1)
        assert errs[v] <= 1e-2
    assert base_cr > 20  # large compression at loose tolerance

    # --- 1e-4: Gram-single fails to compress ----------------------------
    cr_gs = table[(1e-4, "gram", "single")][0]
    cr_qs = table[(1e-4, "qr", "single")][0]
    cr_gd = table[(1e-4, "gram", "double")][0]
    assert cr_gs < 2.0  # essentially no compression
    assert cr_qs == pytest.approx(cr_gd, rel=0.15)
    assert table[(1e-4, "qr", "single")][1] <= 2e-4

    # --- 1e-6: QR-single degraded, doubles fine -------------------------
    err_qs6 = table[(1e-6, "qr", "single")][1]
    err_qd6 = table[(1e-6, "qr", "double")][1]
    assert err_qd6 <= 1e-6
    assert err_qs6 > err_qd6  # single can no longer match

    # --- 1e-8: only QR-double handles the tolerance well ----------------
    # Gram-double's sub-floor singular values are noise: it either misses
    # the tolerance (paper: error 2.5e-8) or wastes rank refusing to
    # truncate.  Either way QR-double strictly dominates it here.
    err_qd8, cr_qd8 = table[(1e-8, "qr", "double")][1], table[(1e-8, "qr", "double")][0]
    err_gd8, cr_gd8 = table[(1e-8, "gram", "double")][1], table[(1e-8, "gram", "double")][0]
    assert err_qd8 <= 1e-8
    assert err_gd8 > 1e-8 or cr_qd8 > 1.5 * cr_gd8
    # QR-single's f32 floor leaves it stuck well above this tolerance.
    assert table[(1e-8, "qr", "single")][1] > 1e-8


def test_report_fig8b_time_breakdown(benchmark, write_report):
    """Fig. 8b at the real HCCI dimensions (modeled, 4 nodes, 16x8x1x1)."""
    shape = PAPER_SHAPES["hcci"]
    # Representative ranks at tol 1e-4 scaled from Tab. 2's compression.
    ranks = (120, 120, 20, 120)

    def compute():
        return {
            variant_label(m, p): simulate_sthosvd(
                shape, ranks, (16, 8, 1, 1), method=m, precision=p,
                mode_order="backward", machine=ANDES,
            )
            for m, p in VARIANTS
        }

    runs = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_report(
        "fig8b_hcci_breakdown",
        breakdown_table(runs, title="Fig. 8b: HCCI 627x627x33x627, 128 procs (modeled)"),
    )
    t = {k: r.total_seconds for k, r in runs.items()}
    # QR single is the fastest accurate method at 1e-4: ~60% faster than
    # Gram double (the paper's headline for this dataset).
    assert t["Gram double"] / t["QR single"] > 1.3
    assert t["QR single"] < t["QR double"]
