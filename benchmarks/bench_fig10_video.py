"""Figure 10 — video dataset time breakdown at fixed ranks.

Paper setup: the 1080x1920x3x2200 video tensor is compressed with fixed
ranks 200x200x3x200 (~570x compression) following prior work; all four
variants achieve the same relative error (~0.213), so the fastest —
Gram-single, 2.2x faster than TuckerMPI's Gram-double — is the method of
choice.

Functional runs on the surrogate verify the equal-error claim; modeled
runs at the real dimensions regenerate the Fig. 10 breakdown.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd
from repro.data import video_surrogate, PAPER_SHAPES
from repro.perf import ANDES, breakdown_table, simulate_sthosvd, variant_label
from repro.util import format_table

from conftest import VARIANTS

SURROGATE_SHAPE = (36, 64, 3, 72)
SURROGATE_RANKS = (7, 12, 3, 14)  # ~same reduction factor as the paper's


@pytest.fixture(scope="module")
def video():
    return video_surrogate(shape=SURROGATE_SHAPE)


@pytest.mark.parametrize("method,precision", VARIANTS)
def test_bench_video_fixed_rank(benchmark, video, method, precision):
    benchmark.pedantic(
        lambda: sthosvd(video, ranks=SURROGATE_RANKS, method=method,
                        precision=precision),
        rounds=1, iterations=1,
    )


def test_report_fig10(benchmark, video, write_report):
    def compute():
        errors = {}
        for m, p in VARIANTS:
            res = sthosvd(video, ranks=SURROGATE_RANKS, method=m, precision=p)
            errors[(m, p)] = (
                res.tucker.rel_error(video),
                res.tucker.compression_ratio(),
            )
        runs = {
            variant_label(m, p): simulate_sthosvd(
                PAPER_SHAPES["video"], (200, 200, 3, 200), (16, 8, 1, 1),
                method=m, precision=p, mode_order="forward", machine=ANDES,
            )
            for m, p in VARIANTS
        }
        return errors, runs

    errors, runs = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        [f"{m}-{p}", errors[(m, p)][0], errors[(m, p)][1]] for m, p in VARIANTS
    ]
    txt = format_table(
        ["variant", "rel error", "compression"], rows,
        title=f"Video surrogate at fixed ranks {SURROGATE_RANKS}",
    )
    txt += "\n\n" + breakdown_table(
        runs, title="Fig. 10: video 1080x1920x3x2200 -> 200x200x3x200 (modeled)"
    )
    write_report("fig10_video", txt)

    # All four variants achieve the same relative error (Sec. 4.5.3):
    # the plateau spectrum sits far above every noise floor.
    errs = [errors[v][0] for v in VARIANTS]
    assert max(errs) / min(errs) < 1.02
    assert 0.001 < errs[0] < 0.9

    # Gram-single fastest; ~2x over Gram-double (paper: 2.2x).
    t = {k: r.total_seconds for k, r in runs.items()}
    assert t["Gram single"] == min(t.values())
    assert 1.6 < t["Gram double"] / t["Gram single"] < 2.4
