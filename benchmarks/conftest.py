"""Shared infrastructure for the per-figure/table benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper:
it times the real computation with pytest-benchmark and writes a
plain-text report with the same rows/series the paper shows to
``benchmarks/reports/``.  Qualitative shape assertions (who wins, by
roughly what factor) run inside the tests, so ``pytest benchmarks/
--benchmark-only`` both measures and validates.
"""

from __future__ import annotations

import os

import pytest

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def report_dir() -> str:
    os.makedirs(REPORT_DIR, exist_ok=True)
    return REPORT_DIR


@pytest.fixture(scope="session")
def write_report(report_dir):
    """Writer that saves (and echoes) a named report."""

    def _write(name: str, text: str) -> None:
        path = os.path.join(report_dir, f"{name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _write


VARIANTS = [("gram", "single"), ("qr", "single"), ("gram", "double"), ("qr", "double")]
