"""Table 3 / Figure 9 — SP (Stats-Planar) compression, error, and time.

Paper setup: 5-mode SP tensor (500x500x500x11x100) at tolerances 1e-2 to
1e-8, 50 nodes, 40x20x2x1x1 grid, backward ordering for all variants.
Expected qualitative rows (Tab. 3) — same structure as HCCI but more
compressible:

* 1e-2: all variants compress hugely (paper: ~6e4) within tolerance;
* 1e-4: Gram-single fails (1.0); QR-single matches the doubles and beats
  TuckerMPI by ~50% in time;
* 1e-6: QR-single degraded; doubles agree;
* 1e-8: only QR-double is accurate enough.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd
from repro.data import sp_surrogate, PAPER_SHAPES
from repro.perf import ANDES, breakdown_table, simulate_sthosvd, variant_label
from repro.util import format_table

from conftest import VARIANTS

TOLERANCES = [1e-2, 1e-4, 1e-6, 1e-8]


@pytest.fixture(scope="module")
def sp():
    return sp_surrogate(shape=(26, 26, 26, 11, 18))


@pytest.mark.parametrize("method,precision", VARIANTS)
def test_bench_sp_sthosvd(benchmark, sp, method, precision):
    benchmark.pedantic(
        lambda: sthosvd(sp, tol=1e-4, method=method, precision=precision,
                        mode_order="backward"),
        rounds=1, iterations=1,
    )


def test_report_tab3(benchmark, sp, write_report):
    def compute():
        table = {}
        for tol in TOLERANCES:
            for m, p in VARIANTS:
                res = sthosvd(sp, tol=tol, method=m, precision=p,
                              mode_order="backward")
                table[(tol, m, p)] = (
                    res.tucker.compression_ratio(),
                    res.tucker.rel_error(sp),
                )
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for tol in TOLERANCES:
        row = [f"{tol:.0e}"]
        for m, p in VARIANTS:
            cr, err = table[(tol, m, p)]
            row.extend([cr, err])
        rows.append(row)
    headers = ["tol"]
    for m, p in VARIANTS:
        headers.extend([f"{m}-{p} compr", f"{m}-{p} err"])
    write_report(
        "tab3_sp_compression",
        format_table(headers, rows, title="Tab. 3 (SP surrogate): compression & error"),
    )

    # 1e-2: everything compresses a lot and satisfies the tolerance.
    for m, p in VARIANTS:
        cr, err = table[(1e-2, m, p)]
        assert err <= 1e-2
        assert cr > 50  # SP is the most compressible dataset

    # 1e-4: Gram-single collapses (orders of magnitude below the rest);
    # QR-single matches the doubles.
    cr_qs = table[(1e-4, "qr", "single")][0]
    assert table[(1e-4, "gram", "single")][0] < 0.01 * cr_qs
    cr_qd = table[(1e-4, "qr", "double")][0]
    assert cr_qs == pytest.approx(cr_qd, rel=0.15)
    assert table[(1e-4, "qr", "single")][1] <= 2e-4

    # 1e-6: sits near QR-single's noise floor — it is at best no better
    # than QR-double here and clearly fails one decade tighter.
    assert table[(1e-6, "qr", "single")][1] >= 0.9 * table[(1e-6, "qr", "double")][1]
    assert table[(1e-6, "gram", "double")][1] <= 2e-6
    assert table[(1e-8, "qr", "single")][1] > 1e-7

    # 1e-8: QR-double dominates Gram-double (error or compression).
    err_qd, cr_qd8 = table[(1e-8, "qr", "double")][1], table[(1e-8, "qr", "double")][0]
    err_gd, cr_gd8 = table[(1e-8, "gram", "double")][1], table[(1e-8, "gram", "double")][0]
    assert err_qd <= 1e-8
    assert err_gd > 1e-8 or cr_qd8 >= cr_gd8


def test_report_fig9b_time_breakdown(benchmark, write_report):
    """Fig. 9b at the real SP dimensions (modeled, 50 nodes, 40x20x2x1x1)."""
    shape = PAPER_SHAPES["sp"]
    ranks = (60, 60, 60, 9, 25)  # representative of tol 1e-4

    def compute():
        return {
            variant_label(m, p): simulate_sthosvd(
                shape, ranks, (40, 20, 2, 1, 1), method=m, precision=p,
                mode_order="backward", machine=ANDES,
            )
            for m, p in VARIANTS
        }

    runs = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_report(
        "fig9b_sp_breakdown",
        breakdown_table(runs, title="Fig. 9b: SP 500^3x11x100, 1600 procs (modeled)"),
    )
    t = {k: r.total_seconds for k, r in runs.items()}
    # QR-single outperforms TuckerMPI (Gram double) by ~50% (Sec. 4.5.3).
    assert t["Gram double"] / t["QR single"] > 1.25
    assert t["Gram single"] < t["QR single"]
