"""Static-analysis throughput snapshot: lint + whole-program verify.

Times the two static tiers over the repository's own source trees —
the per-function AST lint and the interprocedural verifier (project
load, call-graph + taint fixpoint, per-rank symbolic execution, trace
matching) — and emits a machine-readable ``BENCH_verify.json`` in the
versioned snapshot schema that ``repro bench --compare`` diffs with
tolerance bands.  The committed report pins the analysis cost so a
verifier change that blows up interpretation time (a runaway unroll, a
fixpoint that stops converging) fails CI as a perf regression, not as
a mystery timeout.

Counters (files/functions/entries analyzed, findings) are exact and
compare at zero tolerance by default bands; wall times are lower-is-
better ``*_s`` metrics.

Usage::

    PYTHONPATH=src python benchmarks/bench_verify.py \
        [--reps N] [--out BENCH_verify.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sanitize import lint_paths  # noqa: E402
from repro.sanitize.callgraph import load_project  # noqa: E402
from repro.sanitize.verify import verify_project  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ROOTS = (os.path.join(REPO, "src", "repro"), os.path.join(REPO, "examples"))
WORLD_SIZE = 2

REPORT = os.path.join(os.path.dirname(__file__), "reports",
                      "BENCH_verify.json")


def _commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=os.path.dirname(__file__), check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _count_files(roots) -> int:
    n = 0
    for root in roots:
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames
                           if d not in ("__pycache__", ".git")]
            n += sum(1 for f in filenames if f.endswith(".py"))
    return n


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--reps", type=int, default=3,
                    help="timing repetitions (best-of)")
    ap.add_argument("--out", default=REPORT)
    args = ap.parse_args(argv)

    lint_times = []
    lint_findings = 0
    for _ in range(args.reps):
        t0 = time.perf_counter()
        lint_findings = len(lint_paths(ROOTS))
        lint_times.append(time.perf_counter() - t0)

    load_times, verify_times = [], []
    result = None
    for _ in range(args.reps):
        t0 = time.perf_counter()
        project = load_project(ROOTS)
        t1 = time.perf_counter()
        result = verify_project(project, world_size=WORLD_SIZE)
        t2 = time.perf_counter()
        load_times.append(t1 - t0)
        verify_times.append(t2 - t1)

    incomplete = sum(1 for r in result.reports if not r.complete)
    snapshot = {
        "bench": "verify",
        "version": 1,
        "commit": _commit(),
        "generated_unix": int(time.time()),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "static-analysis throughput over the repository's own "
            "sources; counter metrics are exact, wall times are "
            "best-of-reps on one core."
        ),
        "config": {
            "roots": ["src/repro", "examples"],
            "world_size": WORLD_SIZE,
            "reps": args.reps,
        },
        "corpus": {
            "files": _count_files(ROOTS),
            "functions_parsed": len(result.project.functions),
            "call_edges": len(result.project.edges),
            "entries_analyzed": result.functions_analyzed,
            "entries_incomplete": incomplete,
        },
        "lint": {
            "best_wall_s": round(min(lint_times), 4),
            "findings": lint_findings,
        },
        "verify": {
            "load_best_wall_s": round(min(load_times), 4),
            "exec_best_wall_s": round(min(verify_times), 4),
            "best_wall_s": round(min(load_times) + min(verify_times), 4),
            "findings": len(result.findings),
        },
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {args.out} "
          f"(lint {snapshot['lint']['best_wall_s']:.3f}s, "
          f"verify {snapshot['verify']['best_wall_s']:.3f}s over "
          f"{snapshot['corpus']['files']} files / "
          f"{snapshot['corpus']['entries_analyzed']} drivers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
