"""Figure 2 — time breakdown across mode orderings and processor grids.

Paper setup: (a) Cascade Lake, 16 processes, 300^4 tensor -> 30^4 core;
(b) Andes, 512 processes, 500^4 -> 50^4.  For each platform, forward and
backward orderings are paired with back-loaded through front-loaded
grids.  Expected shapes: more than half of the time in the first LQ; the
fastest grid per ordering sets the first-processed mode's grid dimension
to 1; on Cascade Lake backward+back-loaded beats forward+front-loaded
(geqr > gelq), while Andes is ordering-indifferent.

Modeled-mode experiment (the full-scale runs need 512 cores); a small
functional cross-check with real wall-clock timing accompanies it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd
from repro.data import low_rank_tensor
from repro.perf import ANDES, CASCADE_LAKE, breakdown_table, simulate_sthosvd

# (label, grid, ordering) — back-loaded to front-loaded, as in Fig. 2a.
CL_CONFIGS = [
    ("fwd 1x1x2x8", (1, 1, 2, 8), "forward"),
    ("fwd 1x2x2x4", (1, 2, 2, 4), "forward"),
    ("fwd 8x2x1x1", (8, 2, 1, 1), "forward"),
    ("bwd 8x2x1x1", (8, 2, 1, 1), "backward"),
    ("bwd 4x2x2x1", (4, 2, 2, 1), "backward"),
    ("bwd 1x1x2x8", (1, 1, 2, 8), "backward"),
]

ANDES_CONFIGS = [
    ("fwd 1x4x8x16", (1, 4, 8, 16), "forward"),
    ("fwd 16x8x4x1", (16, 8, 4, 1), "forward"),
    ("bwd 16x8x4x1", (16, 8, 4, 1), "backward"),
    ("bwd 1x4x8x16", (1, 4, 8, 16), "backward"),
]


def _runs(machine, shape, ranks, configs):
    out = {}
    for label, grid, order in configs:
        out[label] = simulate_sthosvd(
            shape, ranks, grid, method="qr", precision="double",
            mode_order=order, machine=machine,
        )
    return out


def test_report_fig2a_cascade_lake(benchmark, write_report):
    runs = benchmark.pedantic(
        lambda: _runs(CASCADE_LAKE, (300,) * 4, (30,) * 4, CL_CONFIGS),
        rounds=1, iterations=1,
    )
    write_report(
        "fig2a_cascade_lake_breakdown",
        breakdown_table(runs, title="Fig. 2a: QR double, 16 procs, 300^4 -> 30^4"),
    )
    totals = {k: r.total_seconds for k, r in runs.items()}
    # Within each ordering the P=1-on-first-processed-mode grid wins.
    assert totals["fwd 1x1x2x8"] < totals["fwd 8x2x1x1"]
    assert totals["bwd 8x2x1x1"] < totals["bwd 1x1x2x8"]
    # Backward + geqr beats forward + gelq on Cascade Lake (Sec. 4.2.4).
    assert totals["bwd 8x2x1x1"] < totals["fwd 1x1x2x8"]
    # First LQ dominates: more than half the time in every config.
    for label, run in runs.items():
        first = run.mode_order[0]
        assert run.seconds_by_phase_mode[("lq", first)] > 0.4 * run.total_seconds


def test_report_fig2b_andes(benchmark, write_report):
    runs = benchmark.pedantic(
        lambda: _runs(ANDES, (500,) * 4, (50,) * 4, ANDES_CONFIGS),
        rounds=1, iterations=1,
    )
    write_report(
        "fig2b_andes_breakdown",
        breakdown_table(runs, title="Fig. 2b: QR double, 512 procs, 500^4 -> 50^4"),
    )
    totals = {k: r.total_seconds for k, r in runs.items()}
    # Andes: geqr == gelq, so the symmetric configs are nearly equal.
    a, b = totals["bwd 16x8x4x1"], totals["fwd 1x4x8x16"]
    assert abs(a - b) / max(a, b) < 0.25
    # Good configs beat bad ones on both orderings.
    assert totals["fwd 1x4x8x16"] < totals["fwd 16x8x4x1"]
    assert totals["bwd 16x8x4x1"] < totals["bwd 1x4x8x16"]


@pytest.mark.parametrize("order", ["forward", "backward"])
def test_bench_functional_ordering(benchmark, order):
    """Functional cross-check: real sequential ST-HOSVD wall time for the
    two orderings on a cubical tensor (ordering-indifferent workload)."""
    X = low_rank_tensor((40,) * 4, (6,) * 4, rng=1, noise=1e-9)
    benchmark(lambda: sthosvd(X, ranks=(6,) * 4, method="qr", mode_order=order))


def test_functional_breakdown_first_mode_dominates(benchmark):
    """The wall-clock breakdown of a real run shows the first reduction
    dominating, matching the modeled shape."""
    X = low_rank_tensor((36, 36, 36, 36), (5, 5, 5, 5), rng=2, noise=1e-9)

    res = benchmark.pedantic(
        lambda: sthosvd(X, ranks=(5,) * 4, method="qr"), rounds=1, iterations=1
    )
    t = res.timer
    first_lq = t.by_phase_mode[("lq", 0)]
    assert first_lq > 0.3 * t.total
