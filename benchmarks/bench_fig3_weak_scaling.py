"""Figure 3 — weak scaling across algorithms and precisions.

Paper setup: random (250k)^4 tensor on k^4 Andes nodes (32k^4 cores) for
k in {1,2,3}, compressed to (25k)^4; local data fixed at ~1 GB.  QR uses
backward ordering on a 4k^2 x 4k x 2k x 1 grid, Gram forward on
1 x 2k x 4k x 4k^2.  Expected shapes (Fig. 3a/b):

* GFLOPS/core: QR ~6.4 double / ~13 single on one node, moderately lower
  at 81 nodes; all variants scale similarly.
* Total time: Gram-single < QR-single < Gram-double < QR-double, with
  runtime growing with k (column counts grow even though local data is
  fixed).
* More than half the time in the first LQ/Gram operation.

Modeled-mode at full scale, plus a functional weak-scaling run at small
scale on the threaded runtime with the logical-clock cost model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd_parallel
from repro.data import low_rank_tensor
from repro.dist import DistributedTensor, GridComms, ProcessorGrid
from repro.mpi import run_spmd, CostModel
from repro.perf import (
    ANDES,
    breakdown_table,
    scaling_table,
    simulate_sthosvd,
    variant_label,
    weak_scaling_config,
)

from conftest import VARIANTS


def _weak_runs():
    runs = {}
    for k in (1, 2, 3):
        cfg = weak_scaling_config(k)
        for method, prec in VARIANTS:
            run = simulate_sthosvd(
                cfg["shape"], cfg["ranks"], cfg[f"{method}_grid"],
                method=method, precision=prec,
                mode_order=cfg[f"{method}_order"], machine=ANDES,
            )
            runs[(k, method, prec)] = run
    return runs


def test_report_fig3(benchmark, write_report):
    runs = benchmark.pedantic(_weak_runs, rounds=1, iterations=1)

    gflops_series = {}
    time_series = {}
    for method, prec in VARIANTS:
        label = variant_label(method, prec)
        gflops_series[label] = [
            (weak_scaling_config(k)["cores"], runs[(k, method, prec)].gflops_per_core())
            for k in (1, 2, 3)
        ]
        time_series[label] = [
            (weak_scaling_config(k)["cores"], runs[(k, method, prec)].total_seconds)
            for k in (1, 2, 3)
        ]
    txt = scaling_table(
        gflops_series, ylabel="GFLOPS/core",
        title="Fig. 3a: weak scaling performance (modeled, Andes)",
    )
    txt += "\n\n" + scaling_table(
        time_series, ylabel="s",
        title="Fig. 3b totals: weak scaling time (modeled, Andes)",
    )
    txt += "\n\n" + breakdown_table(
        {variant_label(m, p): runs[(2, m, p)] for m, p in VARIANTS},
        title="Fig. 3b breakdown at k=2 (512 cores)",
    )
    write_report("fig3_weak_scaling", txt)

    # Fig. 3a anchors: QR single-node GFLOPS/core.
    assert runs[(1, "qr", "double")].gflops_per_core() == pytest.approx(6.4, rel=0.2)
    assert runs[(1, "qr", "single")].gflops_per_core() == pytest.approx(13.0, rel=0.2)
    for k in (1, 2, 3):
        t = {(m, p): runs[(k, m, p)].total_seconds for m, p in VARIANTS}
        # Fig. 3b ordering.
        assert t[("gram", "single")] < t[("qr", "single")] < t[("gram", "double")] < t[("qr", "double")]
        # First reduction dominates.
        rq = runs[(k, "qr", "double")]
        first = rq.mode_order[0]
        assert rq.seconds_by_phase_mode[("lq", first)] > 0.5 * rq.total_seconds
    # Time grows with k (more columns per unfolding).
    for m, p in VARIANTS:
        assert runs[(1, m, p)].total_seconds < runs[(2, m, p)].total_seconds
        assert runs[(2, m, p)].total_seconds < runs[(3, m, p)].total_seconds


FUNCTIONAL_SCALES = [1, 2]


@pytest.mark.parametrize("k", FUNCTIONAL_SCALES)
def test_bench_functional_weak_scaling(benchmark, k):
    """Functional weak scaling on the threaded runtime: 12k^3 tensor on
    k^3 ranks, fixed local volume, with logical clocks attached."""
    shape = (12 * k,) * 3
    ranks = (3 * k,) * 3
    grid = (k, k, k)
    X = low_rank_tensor(shape, ranks, rng=k, noise=1e-10)

    def run():
        def prog(comm):
            comms = GridComms(comm, ProcessorGrid(grid))
            dt = DistributedTensor.from_full(comms, X.data)
            res = sthosvd_parallel(dt, ranks=ranks, method="qr")
            return comm.clock.now

        return run_spmd(prog, k**3, cost_model=CostModel()).slowest_time

    modeled = benchmark.pedantic(run, rounds=1, iterations=1)
    assert modeled > 0
