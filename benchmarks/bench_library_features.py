"""Benches for the library-completeness features beyond the paper's figures.

* HOOI refinement quality vs ST-HOSVD at equal ranks (quantifies the
  sqrt(N)-quasi-optimality gap the paper cites from [28]);
* classic HOSVD cost vs ST-HOSVD (the value of sequential truncation);
* out-of-core streaming ST-HOSVD throughput vs the in-memory driver
  (identical ranks/errors required — only wall time may differ);
* the memory model across the strong-scaling grids (how many nodes the
  paper's datasets *require* before speed matters).
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest

from repro.core import hooi, hosvd, sthosvd, sthosvd_out_of_core
from repro.data import geometric_spectrum, save_raw, tensor_with_mode_spectra
from repro.perf import simulate_memory, strong_scaling_grid, STRONG_SCALING_GRIDS
from repro.util import format_table


@pytest.fixture(scope="module")
def coupled_tensor():
    shape = (26, 24, 22)
    spectra = [geometric_spectrum(s, 1.0, 1e-3) for s in shape]
    return tensor_with_mode_spectra(shape, spectra, rng=31)


class TestHooiQuality:
    RANKS = (6, 6, 6)

    def test_bench_sthosvd(self, benchmark, coupled_tensor):
        benchmark.pedantic(
            lambda: sthosvd(coupled_tensor, ranks=self.RANKS), rounds=2, iterations=1
        )

    def test_bench_hooi(self, benchmark, coupled_tensor):
        benchmark.pedantic(
            lambda: hooi(coupled_tensor, ranks=self.RANKS, max_iters=10),
            rounds=2, iterations=1,
        )

    def test_report_quality(self, benchmark, coupled_tensor, write_report):
        def compute():
            st = sthosvd(coupled_tensor, ranks=self.RANKS)
            cl = hosvd(coupled_tensor, ranks=self.RANKS)
            ho = hooi(coupled_tensor, ranks=self.RANKS, max_iters=15)
            return {
                "ST-HOSVD": (st.tucker.rel_error(coupled_tensor), st.flops.total),
                "HOSVD": (cl.tucker.rel_error(coupled_tensor), cl.flops.total),
                "HOOI": (ho.tucker.rel_error(coupled_tensor), ho.flops.total),
            }

        res = benchmark.pedantic(compute, rounds=1, iterations=1)
        rows = [[k, err, fl / 1e6] for k, (err, fl) in res.items()]
        write_report(
            "feature_hooi_quality",
            format_table(
                ["algorithm", "rel error", "Mflop"],
                rows,
                title=f"Fixed ranks {self.RANKS}: refinement quality vs cost",
            ),
        )
        # HOOI never loses to its ST-HOSVD initialization; ST-HOSVD is
        # cheaper than classic HOSVD.
        assert res["HOOI"][0] <= res["ST-HOSVD"][0] * (1 + 1e-9)
        assert res["ST-HOSVD"][1] < res["HOSVD"][1]
        # All errors within the sqrt(N) quasi-optimality factor of HOOI's.
        n_modes = 3
        assert res["ST-HOSVD"][0] <= np.sqrt(n_modes) * res["HOOI"][0] * 1.05


class TestOutOfCore:
    SHAPE = (36, 32, 28, 24)

    @pytest.fixture(scope="class")
    def spilled(self, tmp_path_factory):
        spectra = [geometric_spectrum(s, 1.0, 1e-8) for s in self.SHAPE]
        X = tensor_with_mode_spectra(self.SHAPE, spectra, rng=32)
        path = str(tmp_path_factory.mktemp("oocbench") / "x.bin")
        save_raw(X, path)
        return X, path

    def test_bench_in_memory(self, benchmark, spilled):
        X, _ = spilled
        benchmark.pedantic(lambda: sthosvd(X, tol=1e-4), rounds=2, iterations=1)

    def test_bench_out_of_core(self, benchmark, spilled):
        X, path = spilled
        benchmark.pedantic(
            lambda: sthosvd_out_of_core(path, self.SHAPE, tol=1e-4,
                                        max_elements=1 << 15),
            rounds=2, iterations=1,
        )

    def test_report_equivalence(self, benchmark, spilled, write_report):
        X, path = spilled

        def compute():
            mem = sthosvd(X, tol=1e-4)
            ooc = sthosvd_out_of_core(path, self.SHAPE, tol=1e-4,
                                      max_elements=1 << 15)
            return mem, ooc

        mem, ooc = benchmark.pedantic(compute, rounds=1, iterations=1)
        write_report(
            "feature_out_of_core",
            format_table(
                ["driver", "ranks", "rel error"],
                [
                    ["in-memory", str(mem.ranks), mem.tucker.rel_error(X)],
                    ["out-of-core", str(ooc.ranks), ooc.tucker.rel_error(X)],
                ],
                title=f"Streaming vs in-memory ST-HOSVD, {self.SHAPE} @ tol 1e-4",
            ),
        )
        assert ooc.ranks == mem.ranks
        assert ooc.tucker.rel_error(X) <= 1.5e-4


class TestMemoryModel:
    def test_report_dataset_memory(self, benchmark, write_report):
        """How many Andes nodes each paper dataset needs just to fit
        (256 GB/node), cf. 'we need 50 nodes on Andes' for SP."""
        from repro.data import PAPER_SHAPES

        cases = {
            "hcci": (PAPER_SHAPES["hcci"], (120, 120, 20, 120), (16, 8, 1, 1)),
            "sp": (PAPER_SHAPES["sp"], (60, 60, 60, 9, 25), (40, 20, 2, 1, 1)),
            "video": (PAPER_SHAPES["video"], (200, 200, 3, 200), (16, 8, 1, 1)),
        }

        def compute():
            rows = []
            for name, (shape, ranks, grid) in cases.items():
                m = simulate_memory(shape, ranks, grid, mode_order="backward")
                nprocs = int(np.prod(grid))
                total_gib = m.peak_gib * nprocs
                nodes_needed = total_gib / 256.0
                rows.append([name, nprocs, m.peak_gib, total_gib, nodes_needed])
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        write_report(
            "feature_memory_model",
            format_table(
                ["dataset", "procs", "GiB/rank", "total GiB", "min 256GB nodes"],
                rows,
                title="Modeled memory high-water marks (paper datasets)",
            ),
        )
        by = {r[0]: r for r in rows}
        # SP is the memory monster of the three (the paper needs 50 nodes).
        assert by["sp"][3] > by["hcci"][3]
        assert by["sp"][3] > 1000  # > 1 TiB total

    def test_report_strong_scaling_memory(self, benchmark, write_report):
        def compute():
            rows = []
            for cores in sorted(STRONG_SCALING_GRIDS):
                m = simulate_memory(
                    (256,) * 4, (32,) * 4, strong_scaling_grid(cores, "qr"),
                    mode_order="backward",
                )
                rows.append([cores, m.peak_gib])
            return rows

        rows = benchmark.pedantic(compute, rounds=1, iterations=1)
        write_report(
            "feature_strong_scaling_memory",
            format_table(
                ["cores", "GiB/rank"], rows,
                title="Strong scaling: per-rank memory, 256^4 double",
            ),
        )
        # Memory per rank must shrink as cores grow (that is the point
        # of distributing a fixed tensor).
        peaks = [r[1] for r in rows]
        assert all(a > b for a, b in zip(peaks, peaks[1:]))
