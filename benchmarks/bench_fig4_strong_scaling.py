"""Figure 4 + Table 1 — strong scaling across algorithms and precisions.

Paper setup: fixed 256^4 synthetic tensor compressed to a 32^4 core on
1 to 64 Andes nodes (32 to 2048 cores) with the Table 1 processor grids;
backward ordering for QR, forward for Gram.  Expected shapes:

* times decrease in the order QR-double > Gram-double > QR-single >
  Gram-single at every core count;
* all variants scale to 32+ nodes (monotone decreasing times);
* QR-single is consistently ~30% faster than Gram-double (TuckerMPI),
  growing with scale;
* the two achieve nearly the same accuracy.

Modeled-mode at paper scale; functional strong scaling on the threaded
runtime cross-checks the algorithm schedule at small P, and a functional
accuracy check confirms the "nearly the same accuracy" claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd, sthosvd_parallel
from repro.data import tensor_with_mode_spectra, geometric_spectrum
from repro.dist import DistributedTensor, GridComms, ProcessorGrid
from repro.mpi import run_spmd
from repro.perf import (
    ANDES,
    STRONG_SCALING_GRIDS,
    scaling_table,
    simulate_sthosvd,
    strong_scaling_grid,
    variant_label,
)

from conftest import VARIANTS

SHAPE = (256,) * 4
RANKS = (32,) * 4
CORES = sorted(STRONG_SCALING_GRIDS)


def _strong_runs():
    runs = {}
    for method, prec in VARIANTS:
        for cores in CORES:
            runs[(cores, method, prec)] = simulate_sthosvd(
                SHAPE, RANKS, strong_scaling_grid(cores, method),
                method=method, precision=prec,
                mode_order="backward" if method == "qr" else "forward",
                machine=ANDES,
            )
    return runs


def test_report_fig4(benchmark, write_report):
    runs = benchmark.pedantic(_strong_runs, rounds=1, iterations=1)
    series = {
        variant_label(m, p): [(c, runs[(c, m, p)].total_seconds) for c in CORES]
        for m, p in VARIANTS
    }
    txt = scaling_table(
        series, ylabel="s",
        title="Fig. 4: strong scaling 256^4 -> 32^4 (modeled, Andes, Table-1 grids)",
    )
    write_report("fig4_strong_scaling", txt)

    for c in CORES:
        t = {(m, p): runs[(c, m, p)].total_seconds for m, p in VARIANTS}
        assert t[("gram", "single")] < t[("qr", "single")] < t[("gram", "double")] < t[("qr", "double")]
        # QR-single vs TuckerMPI: consistently faster.
        assert t[("gram", "double")] / t[("qr", "single")] > 1.15
    # Scaling: monotone decreasing through 2048 cores for every variant.
    for m, p in VARIANTS:
        times = [runs[(c, m, p)].total_seconds for c in CORES]
        assert all(a > b for a, b in zip(times, times[1:]))
    # Speedup from 32 to 2048 cores is substantial (scales to 32+ nodes).
    for m, p in VARIANTS:
        assert runs[(32, m, p)].total_seconds / runs[(2048, m, p)].total_seconds > 8


GRIDS_FUNCTIONAL = [(1, 1, 1, 1), (2, 1, 1, 1), (2, 2, 1, 1), (2, 2, 2, 1)]


@pytest.fixture(scope="module")
def smallX():
    shape = (20, 20, 20, 20)
    spectra = [geometric_spectrum(s, 1.0, 1e-10) for s in shape]
    return tensor_with_mode_spectra(shape, spectra, rng=4)


@pytest.mark.parametrize("grid", GRIDS_FUNCTIONAL)
def test_bench_functional_strong_scaling(benchmark, smallX, grid):
    """Wall-clock strong scaling of the threaded runtime on a fixed tensor."""

    def run():
        def prog(comm):
            comms = GridComms(comm, ProcessorGrid(grid))
            dt = DistributedTensor.from_full(comms, smallX.data)
            return sthosvd_parallel(dt, ranks=(4, 4, 4, 4), method="qr").ranks

        return run_spmd(prog, int(np.prod(grid)))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res[0] == (4, 4, 4, 4)


def test_qr_single_accuracy_matches_gram_double(benchmark, smallX, write_report):
    """Sec. 4.4: 'the two algorithms achieve nearly the same accuracy'."""

    def compute():
        out = {}
        for method, prec in (("qr", "single"), ("gram", "double")):
            res = sthosvd(smallX, ranks=(4, 4, 4, 4), method=method, precision=prec)
            out[variant_label(method, prec)] = res.tucker.rel_error(smallX)
        return out

    errs = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_report(
        "fig4_accuracy_check",
        "\n".join(f"{k}: rel error {v:.3e}" for k, v in errs.items()),
    )
    a, b = errs["QR single"], errs["Gram double"]
    assert abs(np.log10(a) - np.log10(b)) < 1.0  # same order of magnitude
