"""Sanitizer building blocks and the runtime satellites: argument
validation on alltoall/sendrecv, fail-fast barriers, clean-run checks,
and the shared diagnostic vocabulary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError, RankFailedError
from repro.mpi import run_spmd
from repro.sanitize import CallSite, Diagnostic, Sanitizer, format_diagnostics


class TestDiagnostics:
    def test_rendering(self):
        d = Diagnostic(
            kind="deadlock", message="rank 1 awaits rank 0",
            file="prog.py", line=12, rank=1,
        )
        assert d.location == "prog.py:12"
        assert str(d) == "prog.py:12: error[deadlock] rank 1: rank 1 awaits rank 0"

    def test_rendering_without_location_or_rank(self):
        d = Diagnostic(kind="message-leak", message="m")
        assert "error[message-leak]" in str(d)
        assert "None" not in str(d)

    def test_call_site_str(self):
        s = CallSite(file="a.py", line=3, function="f")
        assert str(s) == "a.py:3"

    def test_format_diagnostics(self):
        ds = [Diagnostic(kind="k", message="one"),
              Diagnostic(kind="k", message="two")]
        text = format_diagnostics(ds, header="2 finding(s):")
        assert text.splitlines()[0] == "2 finding(s):"
        assert len(text.splitlines()) == 3


class TestCleanRuns:
    """A correct program produces zero findings under full sanitizing."""

    def test_collective_battery_is_clean(self):
        def prog(comm):
            x = np.full(4, float(comm.rank))
            comm.barrier()
            b = comm.bcast(np.arange(3) if comm.rank == 0 else None, root=0)
            s = comm.allreduce(x)
            g = comm.allgather(comm.rank)
            sc = comm.scatter(
                [np.full(2, i) for i in range(comm.size)]
                if comm.rank == 1 else None,
                root=1,
            )
            at = comm.alltoall([np.full(1, comm.rank)] * comm.size)
            rs = comm.reduce_scatter([np.ones(2)] * comm.size)
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            sub.barrier()
            return (b.sum(), s.sum(), len(g), len(at), rs.sum())

        res = run_spmd(prog, 4, sanitize=True)
        assert len(res.sanitizer.findings) == 0
        # Symmetric results (bcast/allreduce/allgather/reduce_scatter
        # slot sums) agree across ranks; scatter/alltoall payloads don't.
        assert all(v == res[0] for v in res)

    def test_p2p_and_moves_are_clean(self):
        def prog(comm):
            peer = 1 - comm.rank
            if comm.rank == 0:
                comm.send(np.arange(8), dest=peer, tag=4, copy=False)
                return comm.recv(source=peer, tag=4).sum()
            got = comm.recv(source=peer, tag=4)
            comm.send(got.copy() * 2, dest=peer, tag=4, copy=False)
            return got.sum()

        res = run_spmd(prog, 2, sanitize=True)
        assert res.sanitizer.findings == []

    def test_disabled_sanitizer_costs_nothing_extra(self):
        def prog(comm):
            return comm.allreduce(np.ones(2)).sum()

        res = run_spmd(prog, 2)
        assert res.sanitizer is None


class TestArgumentValidation:
    """Satellite: malformed collective arguments fail with descriptive
    errors before any communication happens (sanitizer not required)."""

    def test_alltoall_wrong_length(self):
        def prog(comm):
            return comm.alltoall([np.ones(1)] * (comm.size + 1))

        with pytest.raises(CommunicatorError, match=r"alltoall on a size-2.*got 3"):
            run_spmd(prog, 2)

    def test_alltoall_not_a_sequence(self):
        def prog(comm):
            return comm.alltoall(x for x in range(comm.size))

        with pytest.raises(
            CommunicatorError, match="alltoall needs a sequence.*got generator"
        ):
            run_spmd(prog, 2)

    def test_reduce_scatter_wrong_length(self):
        def prog(comm):
            return comm.reduce_scatter([np.ones(1)])

        with pytest.raises(
            CommunicatorError, match=r"reduce_scatter on a size-2.*got 1"
        ):
            run_spmd(prog, 2)

    def test_sendrecv_partner_out_of_range(self):
        def prog(comm):
            return comm.sendrecv(np.ones(1), partner=comm.size, tag=0)

        with pytest.raises(CommunicatorError, match="sendrecv partner"):
            run_spmd(prog, 2)

    def test_sendrecv_negative_tag(self):
        def prog(comm):
            return comm.sendrecv(np.ones(1), partner=1 - comm.rank, tag=-3)

        with pytest.raises(
            CommunicatorError, match=r"non-negative, got tag=-3 in sendrecv"
        ):
            run_spmd(prog, 2)

    def test_scatter_wrong_payload_count(self):
        def prog(comm):
            payload = [np.ones(1)] * 3 if comm.rank == 0 else None
            return comm.scatter(payload, root=0)

        with pytest.raises(CommunicatorError, match=r"exactly 2 payloads, got 3"):
            run_spmd(prog, 2)


class TestFailFastBarrier:
    """Satellite: a rank blocked on a finalized/failed partner raises
    RankFailedError instead of deadlocking — with or without sanitizing."""

    def test_barrier_after_partner_finalized_without_sanitizer(self):
        def prog(comm):
            if comm.rank == 0:
                return None  # finalizes immediately, skipping the barrier
            comm.barrier()  # repro-lint: skip — the bug under test

        with pytest.raises(RankFailedError, match="already finalized"):
            run_spmd(prog, 2, recv_timeout=10.0)

    def test_recv_from_failed_rank(self):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            return comm.recv(source=0, tag=0)  # repro-lint: skip

        # Rank 0's original error wins over rank 1's secondary failure.
        with pytest.raises(RuntimeError, match="boom"):
            run_spmd(prog, 2, recv_timeout=10.0)

    def test_sanitized_barrier_diagnostic_names_partner(self):
        def prog(comm):
            if comm.rank == 0:
                return None
            comm.barrier()  # repro-lint: skip

        with pytest.raises(RankFailedError) as ei:
            run_spmd(prog, 2, sanitize=True, recv_timeout=10.0)
        diag = ei.value.diagnostic
        assert diag.kind == "rank-failed"
        assert diag.rank == 1
        assert diag.extra["partner"] == 0


class TestSanitizerReport:
    def test_report_lists_findings(self):
        san = Sanitizer(strict=False)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(2), dest=1, tag=11)  # repro-lint: skip

        run_spmd(prog, 2, sanitize=san)
        text = san.report()
        assert "message-leak" in text
        assert "tag 11" in text

    def test_clean_report_is_empty(self):
        san = Sanitizer()

        def prog(comm):
            comm.barrier()

        run_spmd(prog, 2, sanitize=san)
        assert san.report() == ""


class TestInFlightAccounting:
    """CommTrace.in_flight_* pairs with the finalize leak report."""

    def test_undelivered_message_counts_as_in_flight(self):
        from repro.mpi import CommTrace
        from repro.sanitize import Sanitizer

        trace = CommTrace()

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(32), dest=1, tag=2)  # repro-lint: skip

        run_spmd(prog, 2, comm_trace=trace, sanitize=Sanitizer(strict=False))
        assert trace.in_flight_messages() == 1
        assert trace.in_flight_bytes() == 32 * 8

    def test_clean_run_has_nothing_in_flight(self):
        from repro.mpi import CommTrace

        trace = CommTrace()

        def prog(comm):
            return comm.allreduce(np.ones(4)).sum()

        run_spmd(prog, 4, comm_trace=trace)
        assert trace.in_flight_messages() == 0
        assert trace.in_flight_bytes() == 0
