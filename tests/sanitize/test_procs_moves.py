"""Move-origin enforcement across the process transport boundary.

PR 5 shipped ``backend="procs"`` with an honest gap: the worker-side
move ledger degraded to no-ops, so a use-after-move died as a bare
NumPy ``ValueError`` with no originating send site.  These tests pin
the closed gap: each worker keeps a rank-local ledger and the move
origin travels in the envelope wire metadata, so both the sender-side
and the receiver-side violations raise
:class:`~repro.errors.UseAfterMoveError` naming the real
``send(..., copy=False)`` call site — identical to the threads backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UseAfterMoveError
from repro.mpi import run_spmd

pytestmark = pytest.mark.parametrize("backend", ["threads", "procs"])

RECV_TIMEOUT = 30.0


def _sender_side_violation(comm):
    buf = np.ones(8)
    if comm.rank == 0:
        comm.send(buf, dest=1, tag=3, copy=False)
        buf[0] = 2.0  # the receiver owns this buffer now
    else:
        comm.recv(source=0, tag=3)
    return comm.rank


def _receiver_side_violation(comm):
    if comm.rank == 0:
        buf = np.ones(8)
        comm.send(buf, dest=1, tag=3, copy=False)
    else:
        got = comm.recv(source=0, tag=3)
        got[0] = 5.0  # zero-copy payloads arrive read-only
    return comm.rank


def test_sender_side_use_after_move_names_the_send_site(backend):
    with pytest.raises(UseAfterMoveError) as exc_info:
        run_spmd(_sender_side_violation, 2, backend=backend,
                 sanitize=True, recv_timeout=RECV_TIMEOUT)
    msg = str(exc_info.value)
    assert "relinquishing it via send(copy=False)" in msg
    assert "test_procs_moves.py" in msg  # the real move site, not a no-op


def test_receiver_side_write_names_the_origin_site(backend):
    with pytest.raises(UseAfterMoveError) as exc_info:
        run_spmd(_receiver_side_violation, 2, backend=backend,
                 sanitize=True, recv_timeout=RECV_TIMEOUT)
    msg = str(exc_info.value)
    assert "received from rank 0" in msg
    assert "moved by send(copy=False)" in msg
    assert "test_procs_moves.py" in msg


def test_clean_moves_stay_clean_and_frozen(backend):
    """A well-behaved move: no findings, payload arrives read-only."""

    def prog(comm):
        if comm.rank == 0:
            comm.send(np.arange(6.0), dest=1, tag=1, copy=False)
            return None
        got = comm.recv(source=0, tag=1)
        return bool(got.flags.writeable)

    res = run_spmd(prog, 2, backend=backend, sanitize=True,
                   recv_timeout=RECV_TIMEOUT)
    assert res.values[1] is False
    assert res.sanitizer.findings == []
