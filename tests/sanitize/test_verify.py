"""Whole-program verifier tests: the adversarial fixture corpus, the
lint-blindness contrast, repo self-verification, and the comm-graph
artifact.

Each fixture under ``tests/sanitize/programs/`` seeds exactly one
interprocedural bug that PR 3's per-function lint demonstrably cannot
see; the verifier must report exactly that diagnostic and nothing else.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.sanitize import lint_paths
from repro.sanitize.callgraph import load_project
from repro.sanitize.verify import (
    comm_graph_dot,
    comm_graph_json,
    verify_paths,
    write_comm_graph,
)

REPO = Path(__file__).resolve().parents[2]
PROGRAMS = REPO / "tests" / "sanitize" / "programs"


def fixture(name: str) -> str:
    return str(PROGRAMS / f"{name}.py")


def verify_fixture(name: str):
    return verify_paths([fixture(name)])


class TestFixtureCorpus:
    """Each seeded bug is found, precisely, and the lint misses it."""

    def test_cross_rank_bcast(self):
        res = verify_fixture("cross_rank_bcast")
        assert [d.kind for d in res.findings] == ["collective-mismatch"]
        d = res.findings[0]
        assert d.line == 10  # the bcast inside the helper
        assert "bcast()" in d.message
        assert "rank 1 never reaches" in d.message

    def test_moved_return(self):
        res = verify_fixture("moved_return")
        assert [d.kind for d in res.findings] == ["use-after-move"]
        d = res.findings[0]
        assert d.line == 21  # out.sum() in the caller
        assert "copy=False" in d.message
        assert "moved_return.py:13" in d.message  # the send in ship()

    def test_tag_through_helper(self):
        res = verify_fixture("tag_through_helper")
        assert [d.kind for d in res.findings] == ["tag-mismatch"]
        d = res.findings[0]
        assert d.line == 15  # the recv with the off-by-one tag
        assert "tag=8" in d.message
        assert "sent tag 7" in d.message

    def test_recv_cycle(self):
        res = verify_fixture("recv_cycle")
        assert [d.kind for d in res.findings] == ["deadlock"]
        d = res.findings[0]
        assert d.line == 12  # the first recv of the cycle
        assert "receive cycle" in d.message
        assert "rank 0" in d.message and "rank 1" in d.message

    @pytest.mark.parametrize("name", [
        "cross_rank_bcast", "moved_return", "tag_through_helper",
        "recv_cycle",
    ])
    def test_per_function_lint_is_blind_to_the_seeded_bug(self, name):
        """The corpus exists to pin interprocedural-only bugs."""
        assert lint_paths([fixture(name)]) == []

    def test_helpers_are_not_analyzed_standalone(self):
        # ship() alone would look like a message leak; through the
        # driver its send meets the real recv.
        res = verify_fixture("moved_return")
        assert [r.entry.name for r in res.reports] == ["driver"]


class TestSelfVerification:
    """The verifier runs clean over the repository's own SPMD code."""

    def test_src_and_examples_are_clean(self):
        res = verify_paths([str(REPO / "src" / "repro"),
                            str(REPO / "examples")])
        assert res.findings == [], "\n".join(map(str, res.findings))
        assert res.functions_analyzed > 0

    def test_incomplete_traces_stay_silent(self):
        # Drivers whose communication the interpreter cannot fully
        # decide must not produce cross-rank guesses.
        res = verify_paths([str(REPO / "src" / "repro"),
                            str(REPO / "examples")])
        for report in res.reports:
            if not report.complete:
                cross = [d for d in report.findings
                         if d.kind != "use-after-move"]
                assert cross == []


class TestCommGraphArtifact:
    def test_sthosvd_parallel_graph(self, tmp_path):
        res = verify_paths(
            [str(REPO / "src" / "repro")], entries=["sthosvd_parallel"])
        assert [r.entry.name for r in res.reports] == ["sthosvd_parallel"]
        report = res.reports[0]
        dot_path, json_path = write_comm_graph(
            res.project, report.entry, str(tmp_path), report=report)
        assert os.path.exists(dot_path) and os.path.exists(json_path)

        with open(json_path, encoding="utf-8") as f:
            data = json.load(f)
        assert data["entry"].endswith("sthosvd_parallel")
        names = {n["qualname"] for n in data["nodes"]}
        assert any(q.endswith("par_ttm_truncate") for q in names)
        comm_nodes = [n for n in data["nodes"] if n["comm_ops"]]
        assert comm_nodes, "expected comm-op-annotated nodes"
        assert data["edges"], "expected call edges"
        assert "traces" in data and set(data["traces"]) == {"0", "1"}

        dot = Path(dot_path).read_text(encoding="utf-8")
        assert dot.startswith("digraph")
        assert "sthosvd_parallel" in dot
        assert "->" in dot

    def test_dot_marks_rank_sensitive_nodes(self):
        res = verify_paths(
            [str(REPO / "src" / "repro")], entries=["sthosvd_parallel"])
        dot = comm_graph_dot(res.project, res.reports[0].entry)
        assert "firebrick" in dot  # rank-tainted functions highlighted


class TestPragmas:
    def test_allow_pragma_suppresses_verify_finding(self, tmp_path):
        src = PROGRAMS / "recv_cycle.py"
        patched = src.read_text(encoding="utf-8").replace(
            "got = comm.recv(source=left, tag=9)",
            "got = comm.recv(source=left, tag=9)  "
            "# repro-lint: allow(deadlock)")
        target = tmp_path / "recv_cycle.py"
        target.write_text(patched, encoding="utf-8")
        res = verify_paths([str(target)])
        assert res.findings == []


class TestCallGraph:
    def test_taint_flows_through_assignment_and_return(self, tmp_path):
        code = (
            "def my_rank_of(comm):\n"
            "    r = comm.rank\n"
            "    return r\n"
            "\n"
            "def driver(comm):\n"
            "    who = my_rank_of(comm)\n"
            "    return who\n"
        )
        path = tmp_path / "taint.py"
        path.write_text(code, encoding="utf-8")
        project = load_project([str(path)])
        by_name = {f.name: f for f in project.functions.values()}
        assert by_name["my_rank_of"].returns_tainted
        assert by_name["driver"].rank_sensitive

    def test_call_edges_resolve_helpers(self):
        project = load_project([fixture("cross_rank_bcast")])
        callees = {e.callee.split(".")[-1] for e in project.edges}
        assert "broadcast_params" in callees

    def test_comm_carrier_params_detected(self):
        project = load_project(
            [str(REPO / "src" / "repro" / "core" / "sthosvd_parallel.py")])
        info = next(f for f in project.functions.values()
                    if f.name == "sthosvd_parallel")
        assert "dt" in info.comm_carriers

    def test_json_artifact_for_fixture_driver(self):
        res = verify_fixture("cross_rank_bcast")
        report = res.reports[0]
        data = comm_graph_json(res.project, report.entry, report=report)
        ops = [o for n in data["nodes"] for o in n["comm_ops"]]
        assert {"op": "bcast", "kind": "collective", "line": 10} in ops
        # Rank 0's trace carries the divergent bcast; rank 1's is empty.
        assert data["traces"]["0"]["events"][0]["op"] == "bcast"
        assert data["traces"]["1"]["events"] == []


class TestBenchSnapshot:
    """The committed BENCH_verify.json stays benchdiff-comparable."""

    def test_committed_snapshot_loads_and_self_compares(self):
        from repro.perf.benchdiff import compare_snapshots, load_snapshot

        path = REPO / "benchmarks" / "reports" / "BENCH_verify.json"
        snap = load_snapshot(str(path))
        assert snap["bench"] == "verify"
        assert snap["verify"]["findings"] == 0
        assert snap["corpus"]["entries_analyzed"] > 0
        report = compare_snapshots(snap, snap)
        assert report["comparable"] and not report["regressions"]

    def test_cli_verify_strict_is_the_ci_gate(self, capsys):
        from repro.cli import main

        rc = main(["verify", "--strict",
                   str(REPO / "src" / "repro"), str(REPO / "examples")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out
