"""Unit tests for the SPMD AST lint: every rule's positive and negative
cases, the suppression pragmas, and scope handling."""

from __future__ import annotations

import textwrap

from repro.sanitize import lint_source


def lint(src: str, **kw):
    return lint_source(textwrap.dedent(src), filename="snippet.py", **kw)


def kinds(src: str, **kw):
    return [d.kind for d in lint(src, **kw)]


class TestRankDivergentCollective:
    def test_collective_in_rank_branch(self):
        ds = lint("""
            def prog(comm):
                if comm.rank == 0:
                    comm.bcast(1, root=0)
        """)
        assert [d.kind for d in ds] == ["rank-divergent-collective"]
        assert ds[0].line == 4
        assert "bcast()" in ds[0].message
        assert "condition at line 3" in ds[0].message

    def test_collective_in_else_branch(self):
        assert kinds("""
            def prog(comm, rank):
                if rank > 0:
                    pass
                else:
                    comm.barrier()
        """) == ["rank-divergent-collective"]

    def test_collective_in_rank_while(self):
        assert kinds("""
            def prog(comm):
                while comm.rank < pending():
                    comm.allreduce(1)
        """) == ["rank-divergent-collective"]

    def test_rank_attribute_condition(self):
        assert kinds("""
            def prog(state):
                if state.world_rank == 0:
                    state.comm.reduce(1, root=0)
        """) == ["rank-divergent-collective"]

    def test_non_rank_branch_is_fine(self):
        assert kinds("""
            def prog(comm, n):
                if n > 3:
                    comm.bcast(1, root=0)
        """) == []

    def test_non_collective_call_in_rank_branch_is_fine(self):
        assert kinds("""
            def prog(comm):
                if comm.rank == 0:
                    print("root only")
        """) == []

    def test_str_split_not_flagged(self):
        assert kinds("""
            def prog(rank, line):
                if rank == 0:
                    return line.split(",")
        """) == []

    def test_comm_split_flagged(self):
        assert kinds("""
            def prog(comm):
                if comm.rank % 2:
                    sub = comm.split(color=1, key=comm.rank)
        """) == ["rank-divergent-collective"]

    def test_numpy_reduce_not_flagged(self):
        assert kinds("""
            import numpy as np
            def prog(rank, x):
                if rank == 0:
                    return np.add.reduce(x)
        """) == []


class TestUseAfterMove:
    def test_load_after_move(self):
        ds = lint("""
            def prog(comm, buf):
                comm.send(buf, 1, 0, copy=False)
                return buf.sum()
        """)
        assert [d.kind for d in ds] == ["use-after-move"]
        assert ds[0].line == 4
        assert "'buf'" in ds[0].message

    def test_augassign_after_move(self):
        assert kinds("""
            def prog(comm, buf):
                comm.send(buf, 1, 0, copy=False)
                buf += 1
        """) == ["use-after-move"]

    def test_rebind_clears_the_move(self):
        assert kinds("""
            import numpy as np
            def prog(comm, buf):
                comm.send(buf, 1, 0, copy=False)
                buf = np.zeros(3)
                return buf.sum()
        """) == []

    def test_copying_send_is_fine(self):
        assert kinds("""
            def prog(comm, buf):
                comm.send(buf, 1, 0)
                return buf.sum()
        """) == []

    def test_move_in_loop_without_rebind(self):
        ds = lint("""
            def prog(comm, buf):
                for _ in range(3):
                    comm.send(buf, 1, 0, copy=False)
        """)
        assert [d.kind for d in ds] == ["use-after-move"]

    def test_move_in_loop_with_rebind_is_fine(self):
        assert kinds("""
            def prog(comm, make):
                for i in range(3):
                    buf = make(i)
                    comm.send(buf, 1, 0, copy=False)
        """) == []

    def test_use_before_move_is_fine(self):
        assert kinds("""
            def prog(comm, buf):
                total = buf.sum()
                comm.send(buf, 1, 0, copy=False)
                return total
        """) == []


class TestTagMismatch:
    def test_disjoint_tags(self):
        ds = lint("""
            def prog(comm, peer):
                comm.send(1, peer, tag=7)
                return comm.recv(peer, tag=9)
        """)
        assert [d.kind for d in ds] == ["tag-mismatch", "tag-mismatch"]
        assert {d.line for d in ds} == {3, 4}

    def test_matching_tags_are_fine(self):
        assert kinds("""
            def prog(comm, peer):
                comm.send(1, peer, tag=7)
                return comm.recv(peer, tag=7)
        """) == []

    def test_send_only_scope_not_flagged(self):
        # Without any recv in the scope there is nothing to match against.
        assert kinds("""
            def push(comm, peer):
                comm.send(1, peer, tag=7)
        """) == []

    def test_variable_tags_ignored(self):
        assert kinds("""
            def prog(comm, peer, t):
                comm.send(1, peer, tag=t)
                return comm.recv(peer, tag=t + 1)
        """) == []

    def test_scopes_are_independent(self):
        # Matching happens per function: helper pairs in different
        # functions with different tags are not cross-checked, and
        # findings are not duplicated across nested scopes.
        assert kinds("""
            def ping(comm):
                comm.send(1, 1, tag=3)
                return comm.recv(1, tag=3)

            def pong(comm):
                comm.send(1, 0, tag=4)
                return comm.recv(0, tag=4)
        """) == []


class TestRawLapack:
    def test_np_linalg_svd(self):
        ds = lint("""
            import numpy as np
            U, s, Vt = np.linalg.svd(A)
        """)
        assert [d.kind for d in ds] == ["raw-lapack"]
        assert "np.linalg.svd" in ds[0].message

    def test_scipy_linalg_eigh(self):
        assert kinds("""
            import scipy.linalg
            w, V = scipy.linalg.eigh(S)
        """) == ["raw-lapack"]

    def test_repro_linalg_wrappers_are_fine(self):
        assert kinds("""
            from repro import linalg
            U, s = linalg.svd_gram(A)
        """) == []

    def test_linalg_module_itself_is_exempt(self):
        src = "import numpy as np\nw = np.linalg.eigh(S)\n"
        from repro.sanitize import lint_source as ls

        assert ls(src, filename="src/repro/linalg/evd.py") == []
        assert [d.kind for d in ls(src, filename="src/repro/core/x.py")] \
            == ["raw-lapack"]


class TestSuppressionsAndDriver:
    def test_skip_pragma(self):
        assert kinds("""
            import numpy as np
            u = np.linalg.svd(A)  # repro-lint: skip
        """) == []

    def test_allow_pragma_is_kind_specific(self):
        assert kinds("""
            import numpy as np
            u = np.linalg.svd(A)  # repro-lint: allow(raw-lapack)
            v = np.linalg.eigh(B)  # repro-lint: allow(tag-mismatch)
        """) == ["raw-lapack"]

    def test_rule_subset(self):
        src = """
            import numpy as np
            def prog(comm, buf):
                u = np.linalg.svd(buf)
                comm.send(buf, 1, 0, copy=False)
                return buf
        """
        assert kinds(src, rules=("raw-lapack",)) == ["raw-lapack"]
        assert kinds(src, rules=("use-after-move",)) == ["use-after-move"]

    def test_syntax_error_becomes_diagnostic(self):
        ds = lint("def broken(:\n")
        assert [d.kind for d in ds] == ["syntax-error"]

    def test_findings_sorted_by_line(self):
        ds = lint("""
            import numpy as np

            def prog(comm, buf):
                if comm.rank == 0:
                    comm.bcast(1, root=0)
                comm.send(buf, 1, 0, copy=False)
                return np.linalg.svd(buf)
        """)
        # Sorted by (line, kind): the two line-8 findings tie-break
        # alphabetically.
        assert [d.kind for d in ds] == [
            "rank-divergent-collective", "raw-lapack", "use-after-move",
        ]
        assert [d.line for d in ds] == sorted(d.line for d in ds)

    def test_lint_paths_walks_directories(self, tmp_path):
        from repro.sanitize import lint_paths

        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "import numpy as np\nu = np.linalg.svd(A)\n"
        )
        (pkg / "good.py").write_text("x = 1\n")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "junk.py").write_text("np.linalg.svd(A)\n")
        ds = lint_paths([str(tmp_path)])
        assert [d.kind for d in ds] == ["raw-lapack"]
        assert ds[0].file.endswith("bad.py")


class TestLintRegressions:
    """Gaps closed after PR 5: attribute-chain buffers and collectives,
    async functions, short-circuit guards, and multi-line pragmas."""

    def test_collective_through_attribute_chain(self):
        ds = lint("""
            class Solver:
                def run(self):
                    if self.comm.rank == 0:
                        self.comm.bcast(1, root=0)
        """)
        assert [d.kind for d in ds] == ["rank-divergent-collective"]

    def test_collective_in_async_function(self):
        ds = lint("""
            async def prog(comm):
                if comm.rank == 0:
                    await comm.bcast(1, root=0)
        """)
        assert [d.kind for d in ds] == ["rank-divergent-collective"]

    def test_boolop_guarded_collective(self):
        # ``rank == 0 and barrier()`` short-circuits exactly like an
        # if-branch: only rank 0 enters the collective.
        ds = lint("""
            def prog(comm):
                ok = comm.rank == 0 and comm.barrier()
        """)
        assert [d.kind for d in ds] == ["rank-divergent-collective"]

    def test_boolop_first_operand_not_guarded(self):
        # The first operand of a BoolOp is evaluated unconditionally.
        assert kinds("""
            def prog(comm):
                ok = comm.barrier() and comm.rank == 0
        """) == []

    def test_use_after_move_attribute_buffer(self):
        ds = lint("""
            def prog(comm, state):
                comm.send(state.buf, 1, 0, copy=False)
                return state.buf.sum()
        """)
        assert [d.kind for d in ds] == ["use-after-move"]
        assert "'state.buf'" in ds[0].message

    def test_attribute_buffer_rebind_clears_move(self):
        assert kinds("""
            import numpy as np
            def prog(comm, state):
                comm.send(state.buf, 1, 0, copy=False)
                state.buf = np.zeros(4)
                return state.buf.sum()
        """) == []

    def test_move_in_async_for_loop_without_rebind(self):
        ds = lint("""
            async def prog(comm, buf, chunks):
                async for _ in chunks:
                    comm.send(buf, 1, 0, copy=False)
        """)
        assert [d.kind for d in ds] == ["use-after-move"]

    def test_pragma_on_multiline_statement_first_line(self):
        assert kinds("""
            import numpy as np
            u = np.linalg.svd(  # repro-lint: allow(raw-lapack)
                A,
            )
        """) == []

    def test_pragma_on_multiline_statement_last_line(self):
        assert kinds("""
            import numpy as np
            u = np.linalg.svd(
                A,
            )  # repro-lint: skip
        """) == []
