"""The repository must pass its own lint: ``repro lint`` over the
package sources and examples reports zero findings.

This is the CI gate (`.github/workflows/ci.yml` runs
``python tools/lint_repo.py``); keeping it green means every
intentional exception carries an explicit ``# repro-lint:`` pragma.
"""

from __future__ import annotations

import os

from repro.sanitize import format_diagnostics, lint_paths

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)
)))


def _lint_root(rel: str):
    root = os.path.join(REPO, rel)
    assert os.path.isdir(root), root
    return lint_paths([root])


def test_package_sources_are_clean():
    findings = _lint_root(os.path.join("src", "repro"))
    assert findings == [], "\n" + format_diagnostics(findings)


def test_examples_are_clean():
    findings = _lint_root("examples")
    assert findings == [], "\n" + format_diagnostics(findings)


def test_cli_strict_mode_passes_on_repo(capsys):
    from repro.cli import main

    rc = main([
        "lint", "--strict",
        os.path.join(REPO, "src", "repro"),
        os.path.join(REPO, "examples"),
    ])
    assert rc == 0
    assert "clean" in capsys.readouterr().out
