"""Seeded bug: a buffer moved in a helper, reused by the caller.

``ship`` moves the payload through a local alias and hands the original
reference back; the caller's ``.sum()`` reads a relinquished buffer.
The per-function lint tracks neither the alias nor the call boundary.
"""

import numpy as np


def ship(comm, payload):
    view = payload
    comm.send(view, dest=1, tag=4, copy=False)
    return payload


def driver(comm):
    block = np.ones(8)
    if comm.rank == 0:
        out = ship(comm, block)
        return float(out.sum())
    got = comm.recv(source=0, tag=4)
    return got
