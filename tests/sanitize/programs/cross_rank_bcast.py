"""Seeded bug: rank-divergent collective hidden behind a helper call.

The per-function lint sees no collective inside the rank branch (only
an innocent-looking function call) and no rank condition inside the
helper — only whole-program analysis connects the two.
"""


def broadcast_params(comm, params):
    comm.bcast(params, root=0)
    return params


def driver(comm):
    params = {"tol": 1e-8, "sweeps": 4}
    if comm.rank == 0:
        broadcast_params(comm, params)
    return params
