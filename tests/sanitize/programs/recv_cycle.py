"""Seeded bug: a two-rank receive/receive cycle.

Every rank posts its receive before its send, so nobody ever sends and
both ranks block forever.  No single-function syntactic rule catches
this — it takes executing both ranks and matching their traces.
"""


def swap(comm, payload):
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    got = comm.recv(source=left, tag=9)
    comm.send(payload, dest=right, tag=9)
    return got


def driver(comm, payload):
    return swap(comm, payload)
