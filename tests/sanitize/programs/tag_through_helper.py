"""Seeded bug: a literal tag threaded through a helper, off by one.

The sender's tag arrives as a constant-propagated module literal; the
receiver computes ``tag + 1``.  Within any single function the tags
are opaque parameters, so the per-function lint stays silent.
"""

PING = 7


def exchange(comm, tag):
    if comm.rank == 0:
        comm.send(1.0, dest=1, tag=tag)
    else:
        comm.recv(source=0, tag=tag + 1)


def driver(comm):
    exchange(comm, PING)
