"""Adversarial SPMD programs: every classic silent-hang bug must be
detected deterministically, attributed to a rank and a ``file:line`` in
*this* file, and must never actually hang the test run.

The short ``recv_timeout`` on every run is a backstop only — the
sanitizer is required to fire long before it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CollectiveMismatchError,
    DeadlockError,
    MessageLeakError,
    RankFailedError,
    UseAfterMoveError,
)
from repro.mpi import run_spmd

TIMEOUT = 10.0  # backstop; detection must beat it by an order of magnitude


def _run(prog, p, **kw):
    return run_spmd(prog, p, sanitize=True, recv_timeout=TIMEOUT, **kw)


class TestCollectiveMismatch:
    def test_mismatched_collective_order(self):
        def prog(comm):
            if comm.rank == 0:  # repro-lint: skip
                comm.bcast(np.arange(3), root=0)  # repro-lint: skip
            else:
                comm.allreduce(np.ones(3))  # repro-lint: skip

        with pytest.raises(CollectiveMismatchError) as ei:
            _run(prog, 2)
        msg = str(ei.value)
        assert "collective order mismatch" in msg
        assert "bcast()" in msg and "allreduce()" in msg
        diags = ei.value.diagnostics
        assert len(diags) == 2
        assert {d.rank for d in diags} == {0, 1}
        for d in diags:
            assert d.kind == "collective-mismatch"
            assert d.file and d.file.endswith("test_adversarial.py")
            assert d.line and d.line > 0

    def test_divergent_bcast_root(self):
        def prog(comm):
            payload = np.arange(4) if comm.rank == 0 else None
            # Rank 1 believes the root is itself: signature mismatch.
            comm.bcast(payload, root=comm.rank % 2)

        with pytest.raises(CollectiveMismatchError) as ei:
            _run(prog, 2)
        msg = str(ei.value)
        assert "signature mismatch in bcast()" in msg
        assert "root=0" in msg and "root=1" in msg
        assert all(d.kind == "collective-mismatch"
                   for d in ei.value.diagnostics)

    def test_divergent_reduce_shape(self):
        def prog(comm):
            n = 3 if comm.rank == 0 else 4
            comm.allreduce(np.ones(n))

        with pytest.raises(CollectiveMismatchError) as ei:
            _run(prog, 2)
        assert "signature mismatch in allreduce()" in str(ei.value)


class TestDeadlock:
    def test_p2p_cycle_detected(self):
        def prog(comm):
            # Both ranks receive before either sends: textbook deadlock.
            peer = 1 - comm.rank
            val = comm.recv(source=peer, tag=0)
            comm.send(val, dest=peer, tag=0)

        with pytest.raises(DeadlockError) as ei:
            _run(prog, 2)
        msg = str(ei.value)
        assert "deadlock detected" in msg
        diags = ei.value.diagnostics
        assert {d.rank for d in diags} == {0, 1}
        for d in diags:
            assert d.kind == "deadlock"
            assert d.file and d.file.endswith("test_adversarial.py")

    def test_three_rank_cycle(self):
        def prog(comm):
            left = (comm.rank - 1) % comm.size
            right = (comm.rank + 1) % comm.size
            got = comm.recv(source=left, tag=1)
            comm.send(got, dest=right, tag=1)

        with pytest.raises(DeadlockError) as ei:
            _run(prog, 3)
        assert {d.rank for d in ei.value.diagnostics} == {0, 1, 2}


class TestUseAfterMove:
    def test_sender_mutation_after_zero_copy_send(self):
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(8)
                comm.send(buf, dest=1, tag=0, copy=False)
                buf[0] = 2.0  # repro-lint: skip — the bug under test
            else:
                comm.recv(source=0, tag=0)

        with pytest.raises(UseAfterMoveError) as ei:
            _run(prog, 2)
        msg = str(ei.value)
        assert "relinquishing it via send(copy=False)" in msg
        assert "test_adversarial.py" in msg  # the move site
        (diag,) = ei.value.diagnostics
        assert diag.kind == "use-after-move"
        assert diag.rank == 0
        assert diag.file.endswith("test_adversarial.py")

    def test_receiver_write_into_elided_copy(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(4), dest=1, tag=0, copy=False)
            else:
                got = comm.recv(source=0, tag=0)
                got += 1  # writes into the sender's moved buffer

        with pytest.raises(UseAfterMoveError) as ei:
            _run(prog, 2)
        msg = str(ei.value)
        assert "read-only zero-copy payload received from rank 0" in msg
        (diag,) = ei.value.diagnostics
        assert diag.rank == 1
        assert diag.file.endswith("test_adversarial.py")


class TestTagMismatch:
    def test_mismatched_tags_raise_not_hang(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(2), dest=1, tag=7)  # repro-lint: skip
            else:
                comm.recv(source=0, tag=9)  # repro-lint: skip

        with pytest.raises(RankFailedError) as ei:
            _run(prog, 2)
        diag = ei.value.diagnostic
        assert diag is not None
        assert diag.kind == "tag-mismatch"
        assert diag.rank == 1
        assert diag.extra["pending_tags"] == [7]
        assert "mismatched send/recv tags" in diag.message
        assert diag.file.endswith("test_adversarial.py")


class TestMessageLeak:
    def test_orphaned_message_reported_at_finalize(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(16), dest=1, tag=3)  # repro-lint: skip
            # rank 1 returns without receiving: the message leaks.

        with pytest.raises(MessageLeakError) as ei:
            _run(prog, 2)
        (diag,) = ei.value.diagnostics
        assert diag.kind == "message-leak"
        assert diag.rank == 0  # attributed to the sender
        assert diag.extra["dest"] == 1 and diag.extra["tag"] == 3
        assert diag.extra["count"] == 1
        assert diag.file.endswith("test_adversarial.py")
        assert "undelivered message" in diag.message

    def test_non_strict_records_without_raising(self):
        from repro.sanitize import Sanitizer

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(4), dest=1, tag=5)  # repro-lint: skip

        san = Sanitizer(strict=False)
        res = run_spmd(prog, 2, sanitize=san, recv_timeout=TIMEOUT)
        assert res.sanitizer is san
        assert [d.kind for d in san.findings] == ["message-leak"]
