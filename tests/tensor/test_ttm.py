"""Tests for the TTM kernels against the defining identity Y_(n) = U X_(n)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.tensor import DenseTensor, multi_ttm, ttm, ttm_flops


class TestTtm:
    def test_definition_all_modes(self, tensor4, rng):
        for n in range(4):
            U = rng.standard_normal((3, tensor4.shape[n]))
            Y = ttm(tensor4, U, n)
            np.testing.assert_allclose(Y.unfold(n), U @ tensor4.unfold(n), rtol=1e-12)
            assert Y.shape[n] == 3

    def test_transpose_flag(self, tensor4, rng):
        U = rng.standard_normal((tensor4.shape[2], 4))
        Y = ttm(tensor4, U, 2, transpose=True)
        np.testing.assert_allclose(Y.unfold(2), U.T @ tensor4.unfold(2), rtol=1e-12)

    def test_identity_is_noop(self, tensor4):
        U = np.eye(tensor4.shape[1])
        Y = ttm(tensor4, U, 1)
        assert Y.allclose(tensor4, rtol=1e-14, atol=0)

    def test_dtype_follows_tensor(self, tensor4_f32, rng):
        U = rng.standard_normal((2, tensor4_f32.shape[0]))  # float64 factor
        Y = ttm(tensor4_f32, U, 0)
        assert Y.dtype == np.float32

    def test_dimension_mismatch(self, tensor4, rng):
        with pytest.raises(ShapeError):
            ttm(tensor4, rng.standard_normal((3, 99)), 0)

    def test_vector_factor_rejected(self, tensor4):
        with pytest.raises(ShapeError):
            ttm(tensor4, np.ones(tensor4.shape[0]), 0)

    def test_two_successive_ttms_compose(self, tensor3, rng):
        A = rng.standard_normal((2, tensor3.shape[0]))
        B = rng.standard_normal((3, tensor3.shape[2]))
        Y1 = ttm(ttm(tensor3, A, 0), B, 2)
        Y2 = ttm(ttm(tensor3, B, 2), A, 0)
        assert Y1.allclose(Y2, rtol=1e-12, atol=1e-12)


class TestMultiTtm:
    def test_skips_none(self, tensor3, rng):
        A = rng.standard_normal((2, tensor3.shape[1]))
        Y = multi_ttm(tensor3, [None, A, None])
        assert Y.shape == (tensor3.shape[0], 2, tensor3.shape[2])

    def test_wrong_count(self, tensor3):
        with pytest.raises(ShapeError):
            multi_ttm(tensor3, [None, None])

    def test_orthogonal_projection_norm(self, tensor3, rng):
        # Projecting onto orthonormal bases in every mode cannot grow norm.
        mats = []
        for n, dim in enumerate(tensor3.shape):
            k = max(dim - 1, 1)
            Q = np.linalg.qr(rng.standard_normal((dim, k)))[0]
            mats.append(Q)
        core = multi_ttm(tensor3, mats, transpose=True)
        assert core.norm() <= tensor3.norm() * (1 + 1e-12)


class TestTtmFlops:
    def test_formula(self):
        # (5 x I_1) times unfolding of (3, 4, 6): 2*5*4*(3*6)
        assert ttm_flops((3, 4, 6), 1, 5) == 2 * 5 * 4 * 18


@given(
    shape=st.lists(st.integers(2, 5), min_size=2, max_size=4).map(tuple),
    out_dim=st.integers(1, 4),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_ttm_matches_tensordot_property(shape, out_dim, seed):
    rng = np.random.default_rng(seed)
    X = DenseTensor(rng.standard_normal(shape))
    for n in range(len(shape)):
        U = rng.standard_normal((out_dim, shape[n]))
        Y = ttm(X, U, n)
        ref = np.moveaxis(np.tensordot(U, X.data, axes=(1, n)), 0, n)
        np.testing.assert_allclose(Y.data, ref, rtol=1e-10, atol=1e-12)
