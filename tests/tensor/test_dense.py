"""Unit tests for the DenseTensor container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.precision import Precision
from repro.tensor import DenseTensor


class TestConstruction:
    def test_stores_fortran_order(self, rng):
        X = DenseTensor(rng.standard_normal((3, 4, 5)))
        assert X.data.flags.f_contiguous

    def test_c_order_input_converted(self, rng):
        arr = np.ascontiguousarray(rng.standard_normal((3, 4)))
        X = DenseTensor(arr)
        assert X.data.flags.f_contiguous
        np.testing.assert_array_equal(X.data, arr)

    def test_integer_input_promoted_to_double(self):
        X = DenseTensor(np.arange(6).reshape(2, 3))
        assert X.dtype == np.float64

    def test_float32_preserved(self, rng):
        X = DenseTensor(rng.standard_normal((3, 4)).astype(np.float32))
        assert X.dtype == np.float32
        assert X.precision is Precision.SINGLE

    def test_scalar_rejected(self):
        with pytest.raises(ShapeError):
            DenseTensor(np.float64(3.0))

    def test_zeros(self):
        X = DenseTensor.zeros((2, 3, 4), dtype="single")
        assert X.shape == (2, 3, 4)
        assert X.dtype == np.float32
        assert X.norm() == 0.0

    def test_from_flat_roundtrip(self, tensor4):
        flat = tensor4.flat_view().copy()
        Y = DenseTensor.from_flat(flat, tensor4.shape)
        assert Y == tensor4

    def test_from_flat_size_mismatch(self):
        with pytest.raises(ShapeError):
            DenseTensor.from_flat(np.zeros(5), (2, 3))

    def test_from_flat_rejects_matrix(self):
        with pytest.raises(ShapeError):
            DenseTensor.from_flat(np.zeros((2, 3)), (2, 3))


class TestViews:
    def test_flat_view_is_view(self, tensor4):
        fv = tensor4.flat_view()
        assert fv.base is not None
        fv[0] = 42.0
        assert tensor4.data.reshape(-1, order="F")[0] == 42.0

    def test_column_block_is_view(self, tensor4):
        blk = tensor4.column_block(1, 0)
        blk[0, 0] = 99.0
        assert tensor4.data[0, 0, 0, 0] == 99.0

    def test_column_block_out_of_range(self, tensor4):
        with pytest.raises(ShapeError):
            tensor4.column_block(1, tensor4.num_column_blocks(1))

    def test_column_block_range_3d_view(self, tensor4):
        run = tensor4.column_block_range(1, 1, 3)
        assert run.shape[0] == 2
        np.testing.assert_array_equal(run[0], tensor4.column_block(1, 1))
        np.testing.assert_array_equal(run[1], tensor4.column_block(1, 2))

    def test_column_block_range_invalid(self, tensor4):
        with pytest.raises(ShapeError):
            tensor4.column_block_range(1, 3, 1)

    def test_unfold_matches_moveaxis_reference(self, tensor4):
        X = tensor4.data
        for n in range(4):
            ref = np.reshape(np.moveaxis(X, n, 0), (X.shape[n], -1), order="F")
            np.testing.assert_array_equal(tensor4.unfold(n), ref)

    def test_unfold_fibers_are_columns(self, tensor3):
        # Column j of the mode-1 unfolding is a mode-1 fiber.
        Y = tensor3.unfold(1)
        np.testing.assert_array_equal(Y[:, 0], tensor3.data[0, :, 0])
        np.testing.assert_array_equal(Y[:, 1], tensor3.data[1, :, 0])


class TestNumerics:
    def test_norm_matches_numpy(self, tensor4):
        assert tensor4.norm() == pytest.approx(np.linalg.norm(tensor4.data))

    def test_norm_float32_accumulates_in_double(self):
        # 1e8 entries of 1e-4: naive float32 accumulation of squares loses
        # badly; our float64 path must not.
        X = DenseTensor(np.full((100, 100, 100), 1e-4, dtype=np.float32))
        expected = np.sqrt(1e6 * (np.float32(1e-4) ** 2))
        assert X.norm() == pytest.approx(float(expected), rel=1e-6)

    def test_astype_roundtrip(self, tensor4):
        Y = tensor4.astype("single").astype("double")
        assert Y.dtype == np.float64
        assert Y.allclose(tensor4, rtol=1e-6, atol=1e-6)

    def test_equality(self, tensor4):
        assert tensor4 == tensor4.copy()
        other = tensor4.copy()
        other.data[0, 0, 0, 0] += 1.0
        assert tensor4 != other

    def test_copy_is_deep(self, tensor4):
        Y = tensor4.copy()
        Y.data[0, 0, 0, 0] = 123.0
        assert tensor4.data[0, 0, 0, 0] != 123.0
