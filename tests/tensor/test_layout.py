"""Unit tests for unfolding layout arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import layout


class TestProducts:
    def test_prod_all(self):
        assert layout.prod_all((3, 4, 5)) == 60
        assert layout.prod_all((7,)) == 7

    def test_prod_before_after(self):
        shape = (2, 3, 5, 7)
        assert layout.prod_before(shape, 0) == 1
        assert layout.prod_before(shape, 2) == 6
        assert layout.prod_before(shape, 3) == 30
        assert layout.prod_after(shape, 0) == 105
        assert layout.prod_after(shape, 2) == 7
        assert layout.prod_after(shape, 3) == 1

    def test_before_times_after_times_dim_is_total(self):
        shape = (4, 6, 3, 5, 2)
        for n in range(len(shape)):
            assert (
                layout.prod_before(shape, n) * shape[n] * layout.prod_after(shape, n)
                == layout.prod_all(shape)
            )

    def test_negative_mode_wraps(self):
        shape = (2, 3, 5)
        assert layout.prod_before(shape, -1) == layout.prod_before(shape, 2)

    def test_out_of_range_mode_raises(self):
        with pytest.raises(ShapeError):
            layout.prod_before((2, 3), 2)


class TestUnfoldingShape:
    def test_matches_definition(self):
        shape = (4, 5, 6)
        assert layout.unfolding_shape(shape, 0) == (4, 30)
        assert layout.unfolding_shape(shape, 1) == (5, 24)
        assert layout.unfolding_shape(shape, 2) == (6, 20)

    def test_block_structure(self):
        shape = (4, 5, 6)
        # mode 1: blocks of (5 x 4), 6 of them
        assert layout.block_shape(shape, 1) == (5, 4)
        assert layout.num_column_blocks(shape, 1) == 6
        # mode 0: one column per block
        assert layout.block_shape(shape, 0) == (4, 1)
        # mode N-1: a single block
        assert layout.num_column_blocks(shape, 2) == 1


class TestColumnIndexing:
    def test_roundtrip(self):
        shape = (3, 4, 2, 5)
        for n in range(4):
            rows, cols = layout.unfolding_shape(shape, n)
            for col in range(cols):
                idx = layout.multi_index_of_column(shape, n, col)
                assert idx[n] == 0
                assert layout.column_of_multi_index(shape, n, idx) == col

    def test_mode0_fastest_ordering(self):
        shape = (3, 4, 5)
        # column of (i0, -, i2) for mode 1 is i0 + 3*i2
        assert layout.column_of_multi_index(shape, 1, (2, 0, 1)) == 2 + 3 * 1

    def test_bad_column_raises(self):
        with pytest.raises(ValueError):
            layout.multi_index_of_column((3, 4), 0, 4)

    def test_bad_index_raises(self):
        with pytest.raises(ValueError):
            layout.column_of_multi_index((3, 4), 0, (0, 7))
        with pytest.raises(ValueError):
            layout.column_of_multi_index((3, 4), 0, (0,))


class TestAgainstNumpy:
    """The layout formulas must agree with actual ndarray memory order."""

    def test_column_block_matches_unfold(self):
        rng = np.random.default_rng(0)
        shape = (3, 4, 2, 5)
        from repro.tensor import DenseTensor

        X = DenseTensor(rng.standard_normal(shape))
        for n in range(4):
            Y = X.unfold(n)
            bcols = layout.block_shape(shape, n)[1]
            for j in range(layout.num_column_blocks(shape, n)):
                blk = X.column_block(n, j)
                np.testing.assert_array_equal(blk, Y[:, j * bcols : (j + 1) * bcols])
