"""Mode permutation / concatenation / subtensor tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import sthosvd
from repro.errors import ShapeError
from repro.tensor import DenseTensor, concatenate_mode, permute_modes, subtensor


class TestPermuteModes:
    def test_matches_numpy_transpose(self, tensor4):
        P = permute_modes(tensor4, (2, 0, 3, 1))
        np.testing.assert_array_equal(P.data, np.transpose(tensor4.data, (2, 0, 3, 1)))
        assert P.data.flags.f_contiguous

    def test_identity(self, tensor4):
        assert permute_modes(tensor4, (0, 1, 2, 3)) == tensor4

    def test_involution(self, tensor4):
        perm = (3, 1, 0, 2)
        inverse = tuple(np.argsort(perm))
        assert permute_modes(permute_modes(tensor4, perm), inverse) == tensor4

    def test_singular_values_travel_with_modes(self, tensor3):
        """Unfolding spectra are permutation-covariant."""
        P = permute_modes(tensor3, (2, 0, 1))
        s_orig = np.linalg.svd(tensor3.unfold(2), compute_uv=False)
        s_perm = np.linalg.svd(P.unfold(0), compute_uv=False)
        np.testing.assert_allclose(s_orig, s_perm, atol=1e-10)

    def test_sthosvd_invariant_up_to_permutation(self, tensor3):
        perm = (1, 2, 0)
        a = sthosvd(tensor3, tol=0.3)
        b = sthosvd(permute_modes(tensor3, perm), tol=0.3)
        assert tuple(b.ranks[i] for i in np.argsort(perm)) == a.ranks

    def test_bad_perm(self, tensor4):
        with pytest.raises(ShapeError):
            permute_modes(tensor4, (0, 0, 1, 2))


class TestConcatenateMode:
    def test_roundtrip_with_subtensor(self, tensor4):
        parts = [
            subtensor(tensor4, (slice(None), slice(0, 3)) + (slice(None),) * 2),
            subtensor(tensor4, (slice(None), slice(3, 7)) + (slice(None),) * 2),
        ]
        assert concatenate_mode(parts, 1) == tensor4

    def test_grows_only_target_mode(self, tensor3):
        C = concatenate_mode([tensor3, tensor3], 2)
        assert C.shape == (9, 4, 22)

    def test_shape_mismatch(self, tensor3, rng):
        other = DenseTensor(rng.standard_normal((9, 5, 11)))
        with pytest.raises(ShapeError):
            concatenate_mode([tensor3, other], 2)

    def test_dtype_mismatch(self, tensor3):
        with pytest.raises(ShapeError):
            concatenate_mode([tensor3, tensor3.astype("single")], 0)

    def test_empty_list(self):
        with pytest.raises(ShapeError):
            concatenate_mode([], 0)


class TestSubtensor:
    def test_values(self, tensor4):
        region = (slice(1, 4), slice(0, 2), slice(2, 5), slice(None))
        S = subtensor(tensor4, region)
        np.testing.assert_array_equal(S.data, tensor4.data[region])

    def test_wrong_count(self, tensor4):
        with pytest.raises(ShapeError):
            subtensor(tensor4, (slice(None),))


@given(
    shape=st.lists(st.integers(1, 5), min_size=2, max_size=4).map(tuple),
    seed=st.integers(0, 10**5),
)
@settings(max_examples=30, deadline=None)
def test_permute_preserves_norm_property(shape, seed):
    rng = np.random.default_rng(seed)
    X = DenseTensor(rng.standard_normal(shape))
    perm = tuple(rng.permutation(len(shape)))
    assert permute_modes(X, perm).norm() == pytest.approx(X.norm(), rel=1e-12)
