"""Tests for standalone unfold/fold, including hypothesis roundtrips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.tensor import DenseTensor, fold, unfold


shapes = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4).map(
    tuple
)


class TestFold:
    def test_roundtrip_all_modes(self, tensor4):
        for n in range(4):
            Y = unfold(tensor4, n)
            back = fold(Y, n, tensor4.shape)
            assert back == tensor4

    def test_fold_shape_check(self):
        with pytest.raises(ShapeError):
            fold(np.zeros((3, 5)), 0, (3, 4))

    def test_accepts_arraylike(self, rng):
        arr = rng.standard_normal((3, 4, 5))
        Y = unfold(arr, 2)
        assert Y.shape == (5, 12)


@given(shape=shapes, n_seed=st.integers(0, 10**6))
@settings(max_examples=60, deadline=None)
def test_unfold_fold_roundtrip_property(shape, n_seed):
    rng = np.random.default_rng(n_seed)
    X = DenseTensor(rng.standard_normal(shape))
    for n in range(len(shape)):
        assert fold(unfold(X, n), n, shape) == X


@given(shape=shapes, n_seed=st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_unfold_preserves_norm(shape, n_seed):
    rng = np.random.default_rng(n_seed)
    X = DenseTensor(rng.standard_normal(shape))
    for n in range(len(shape)):
        assert np.linalg.norm(unfold(X, n)) == pytest.approx(X.norm(), rel=1e-12)
