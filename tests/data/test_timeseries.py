"""Time-series (per-step file) dataset tests."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import sthosvd, sthosvd_out_of_core
from repro.data import assemble_timesteps, list_timesteps, low_rank_tensor, save_timesteps
from repro.errors import ShapeError
from repro.tensor import subtensor


@pytest.fixture(scope="module")
def steps_dir(tmp_path_factory):
    X = low_rank_tensor((10, 8, 6, 12), (3, 2, 2, 4), rng=3, noise=1e-9)
    d = str(tmp_path_factory.mktemp("ts") / "steps")
    save_timesteps(X, d)
    return X, d


class TestSaveList:
    def test_one_file_per_step(self, steps_dir):
        X, d = steps_dir
        paths, step_shape, dtype = list_timesteps(d)
        assert len(paths) == 12
        assert step_shape == (10, 8, 6)
        assert dtype == np.float64
        per_step_bytes = 10 * 8 * 6 * 8
        assert all(os.path.getsize(p) == per_step_bytes for p in paths)

    def test_step_contents_are_slabs(self, steps_dir):
        X, d = steps_dir
        paths, step_shape, dtype = list_timesteps(d)
        step3 = np.fromfile(paths[3], dtype=dtype).reshape(step_shape, order="F")
        np.testing.assert_array_equal(step3, X.data[:, :, :, 3])

    def test_non_last_mode_rejected(self, steps_dir, tmp_path):
        X, _ = steps_dir
        with pytest.raises(ShapeError):
            save_timesteps(X, str(tmp_path / "bad"), time_mode=0)

    def test_missing_step_detected(self, steps_dir, tmp_path):
        import shutil

        X, d = steps_dir
        broken = str(tmp_path / "broken")
        shutil.copytree(d, broken)
        os.unlink(os.path.join(broken, "step000005.bin"))
        with pytest.raises(ShapeError):
            list_timesteps(broken)


class TestAssemble:
    def test_full_assembly_roundtrip(self, steps_dir, tmp_path):
        X, d = steps_dir
        ooc = assemble_timesteps(d, str(tmp_path / "full.bin"))
        assert ooc.shape == X.shape
        assert ooc.to_dense() == X

    def test_subset_selection(self, steps_dir, tmp_path):
        """The paper uses the first 100 of SP's 400 steps — same idiom."""
        X, d = steps_dir
        ooc = assemble_timesteps(d, str(tmp_path / "sub.bin"), steps=range(5))
        expected = subtensor(X, (slice(None),) * 3 + (slice(0, 5),))
        assert ooc.to_dense() == expected

    def test_reordered_selection(self, steps_dir, tmp_path):
        X, d = steps_dir
        ooc = assemble_timesteps(d, str(tmp_path / "r.bin"), steps=[4, 1])
        got = ooc.to_dense()
        np.testing.assert_array_equal(got.data[:, :, :, 0], X.data[:, :, :, 4])
        np.testing.assert_array_equal(got.data[:, :, :, 1], X.data[:, :, :, 1])

    def test_empty_selection(self, steps_dir, tmp_path):
        _, d = steps_dir
        with pytest.raises(ShapeError):
            assemble_timesteps(d, str(tmp_path / "e.bin"), steps=[])

    def test_end_to_end_compression(self, steps_dir, tmp_path):
        """Assemble then compress out of core == in-memory result."""
        X, d = steps_dir
        ooc = assemble_timesteps(d, str(tmp_path / "cmp.bin"))
        res = sthosvd_out_of_core(ooc.path, ooc.shape, tol=1e-6,
                                  max_elements=500)
        mem = sthosvd(X, tol=1e-6)
        assert res.ranks == mem.ranks
        assert res.tucker.rel_error(X) <= 1.2e-6
