"""Spectrum-shape generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import geometric_spectrum, plateau_spectrum, step_spectrum
from repro.errors import ConfigurationError


class TestGeometric:
    def test_endpoints(self):
        s = geometric_spectrum(80, 1.0, 1e-18)
        assert s[0] == pytest.approx(1.0)
        assert s[-1] == pytest.approx(1e-18)
        assert len(s) == 80

    def test_constant_ratio(self):
        s = geometric_spectrum(10, 1.0, 1e-9)
        ratios = s[1:] / s[:-1]
        np.testing.assert_allclose(ratios, ratios[0])

    def test_single_value(self):
        np.testing.assert_allclose(geometric_spectrum(1, 3.0), [3.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_spectrum(0)
        with pytest.raises(ConfigurationError):
            geometric_spectrum(5, -1.0, 1e-3)


class TestPlateau:
    def test_shape(self):
        s = plateau_spectrum(100, 1.0, knee_value=1e-2, knee_index=10)
        assert s[0] == pytest.approx(1.0)
        assert s[10] == pytest.approx(1e-2)
        # tail decays much slower than head
        head_drop = s[0] / s[10]
        tail_drop = s[10] / s[-1]
        assert head_drop > tail_drop

    def test_monotone_decreasing(self):
        s = plateau_spectrum(50)
        assert np.all(np.diff(s) <= 0)

    def test_tiny_lengths(self):
        assert len(plateau_spectrum(1)) == 1
        assert len(plateau_spectrum(2)) == 2


class TestStep:
    def test_exact_rank(self):
        s = step_spectrum(6, 2, big=3.0)
        np.testing.assert_array_equal(s, [3, 3, 0, 0, 0, 0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            step_spectrum(4, 0)
        with pytest.raises(ConfigurationError):
            step_spectrum(4, 5)
