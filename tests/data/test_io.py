"""Raw binary tensor I/O tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_raw, save_raw
from repro.errors import ShapeError
from repro.tensor import DenseTensor


class TestRoundtrip:
    def test_with_sidecar(self, tmp_path, tensor4):
        path = str(tmp_path / "t.bin")
        save_raw(tensor4, path)
        back = load_raw(path)
        assert back == tensor4

    def test_float32(self, tmp_path, tensor4_f32):
        path = str(tmp_path / "t32.bin")
        save_raw(tensor4_f32, path)
        back = load_raw(path)
        assert back.dtype == np.float32
        assert back == tensor4_f32

    def test_explicit_shape_dtype(self, tmp_path, rng):
        """Reading a TuckerMPI-style file with no sidecar."""
        X = DenseTensor(rng.standard_normal((3, 4, 5)))
        path = str(tmp_path / "raw.bin")
        with open(path, "wb") as f:
            X.flat_view().tofile(f)
        back = load_raw(path, shape=(3, 4, 5), dtype="double")
        assert back == X

    def test_missing_sidecar_raises(self, tmp_path):
        path = str(tmp_path / "nometa.bin")
        np.zeros(6).tofile(path)
        with pytest.raises(ShapeError):
            load_raw(path)

    def test_natural_order_on_disk(self, tmp_path):
        """Mode 0 must vary fastest in the file (TuckerMPI convention)."""
        X = DenseTensor(np.arange(6, dtype=np.float64).reshape(2, 3, order="F"))
        path = str(tmp_path / "order.bin")
        save_raw(X, path)
        raw = np.fromfile(path)
        np.testing.assert_array_equal(raw, np.arange(6))
