"""Application surrogate tests: the Fig. 5-7 spectral signatures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd
from repro.data import hcci_surrogate, sp_surrogate, video_surrogate, PAPER_SHAPES


@pytest.fixture(scope="module")
def hcci():
    return hcci_surrogate(shape=(32, 32, 16, 32))


@pytest.fixture(scope="module")
def video():
    return video_surrogate(shape=(28, 48, 3, 56))


class TestShapes:
    def test_paper_shapes_recorded(self):
        assert PAPER_SHAPES["hcci"] == (627, 627, 33, 627)
        assert PAPER_SHAPES["sp"] == (500, 500, 500, 11, 100)
        assert PAPER_SHAPES["video"] == (1080, 1920, 3, 2200)

    def test_default_shapes(self):
        assert hcci_surrogate(shape=(8, 8, 6, 8)).shape == (8, 8, 6, 8)
        assert sp_surrogate(shape=(8, 8, 8, 5, 6)).ndim == 5
        assert video_surrogate(shape=(8, 12, 3, 10)).shape[2] == 3


class TestCombustionSignature:
    def test_wide_spectral_range(self, hcci):
        """Fig. 5: singular values span many orders of magnitude."""
        res = sthosvd(hcci, method="qr")
        for n, s in res.sigmas.items():
            s = s / s[0]
            assert s[-1] < 1e-7, f"mode {n} tail too flat"

    def test_compressible_at_loose_tolerance(self, hcci):
        res = sthosvd(hcci, tol=1e-2, method="qr")
        assert res.tucker.compression_ratio() > 20

    def test_barely_compressible_at_tight_tolerance(self, hcci):
        res = sthosvd(hcci, tol=1e-8, method="qr")
        assert res.tucker.compression_ratio() < 10


class TestVideoSignature:
    def test_plateau_spectrum(self, video):
        """Fig. 7: ~2 orders of fast decay then a slow tail."""
        res = sthosvd(video, method="qr")
        for n in (0, 1, 3):
            s = res.sigmas[n] / res.sigmas[n][0]
            # fast initial drop
            knee = max(len(s) // 6, 2)
            assert s[knee] < 0.15
            # then slow: the tail is far above combustion-style decay
            assert s[-1] > 1e-6

    def test_channel_mode_full_rank(self, video):
        res = sthosvd(video, tol=1e-3, method="qr")
        assert res.ranks[2] == 3

    def test_fixed_rank_compression(self, video):
        """The paper's video experiment fixes ranks instead of tolerance."""
        ranks = (10, 10, 3, 10)
        res = sthosvd(video, ranks=ranks, method="gram", precision="single")
        err32 = res.tucker.rel_error(video)
        res64 = sthosvd(video, ranks=ranks, method="qr", precision="double")
        err64 = res64.tucker.rel_error(video)
        # All variants achieve essentially the same error (Sec. 4.5.3).
        assert err32 == pytest.approx(err64, rel=0.05)
        assert 0.001 < err64 < 0.9


class TestScaleParameter:
    def test_hcci_scale(self):
        X = hcci_surrogate(scale=0.05)
        assert X.shape == (31, 31, 3, 31)

    def test_sp_scale(self):
        X = sp_surrogate(scale=0.04)
        assert X.shape == (20, 20, 20, 3, 4)

    def test_video_scale_pins_channels(self):
        X = video_surrogate(scale=0.02)
        assert X.shape[2] == 3
        # aspect ratio of the paper's 1080x1920 preserved
        assert abs(X.shape[1] / X.shape[0] - 1920 / 1080) < 0.2

    def test_floor_prevents_degenerate_modes(self):
        X = hcci_surrogate(scale=0.001)
        assert min(X.shape) >= 3
