"""Synthetic generator tests: prescribed spectra must actually materialize."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    geometric_spectrum,
    low_rank_tensor,
    matrix_with_spectrum,
    random_orthonormal,
    tensor_with_mode_spectra,
)
from repro.errors import ConfigurationError, ShapeError


class TestRandomOrthonormal:
    def test_orthonormal_columns(self, rng):
        Q = random_orthonormal(8, 3, rng)
        np.testing.assert_allclose(Q.T @ Q, np.eye(3), atol=1e-12)

    def test_reproducible_from_seed(self):
        a = random_orthonormal(5, 2, 42)
        b = random_orthonormal(5, 2, 42)
        np.testing.assert_array_equal(a, b)

    def test_too_many_columns(self):
        with pytest.raises(ShapeError):
            random_orthonormal(3, 4)


class TestMatrixWithSpectrum:
    def test_exact_singular_values(self, rng):
        s = np.array([5.0, 2.0, 0.5, 0.01])
        A = matrix_with_spectrum(10, 8, s, rng)
        np.testing.assert_allclose(
            np.linalg.svd(A, compute_uv=False)[:4], s, rtol=1e-12
        )

    def test_dtype(self, rng):
        A = matrix_with_spectrum(5, 5, [1.0, 0.1], rng, dtype="single")
        assert A.dtype == np.float32

    def test_too_many_values(self, rng):
        with pytest.raises(ShapeError):
            matrix_with_spectrum(3, 3, [1, 1, 1, 1], rng)

    def test_negative_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            matrix_with_spectrum(3, 3, [1.0, -1.0], rng)


class TestTensorWithModeSpectra:
    def test_spectra_shapes_realized(self):
        shape = (20, 16, 18)
        spectra = [geometric_spectrum(s, 1.0, 1e-8) for s in shape]
        X = tensor_with_mode_spectra(shape, spectra, rng=0)
        for n in range(3):
            sv = np.linalg.svd(X.unfold(n), compute_uv=False)
            sv = sv / sv[0]
            target = spectra[n] / spectra[n][0]
            # log-space correlation: shape tracks the prescription
            corr = np.corrcoef(np.log10(sv), np.log10(target))[0, 1]
            assert corr > 0.98

    def test_entries_not_graded(self):
        """The orthogonal mixing must spread scales across all entries
        (otherwise the Gram noise-floor experiments are invalid)."""
        shape = (16, 14, 12)
        spectra = [geometric_spectrum(s, 1.0, 1e-10) for s in shape]
        X = tensor_with_mode_spectra(shape, spectra, rng=1)
        row_norms = np.linalg.norm(X.unfold(0), axis=1)
        # After mixing, every slice's norm is within a few orders of the
        # largest (pre-mixing they span 10 orders of magnitude).
        assert row_norms.max() / row_norms.min() < 1e3

    def test_wrong_spectrum_count(self):
        with pytest.raises(ConfigurationError):
            tensor_with_mode_spectra((4, 4), [np.ones(4)], rng=0)

    def test_wrong_spectrum_length(self):
        with pytest.raises(ShapeError):
            tensor_with_mode_spectra((4, 4), [np.ones(4), np.ones(3)], rng=0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            tensor_with_mode_spectra((2, 2), [np.ones(2), np.zeros(2)], rng=0)

    def test_float32_output(self):
        X = tensor_with_mode_spectra(
            (5, 5), [np.ones(5), np.ones(5)], rng=0, dtype="single"
        )
        assert X.dtype == np.float32

    def test_leading_values_order_one(self):
        shape = (12, 10, 14)
        spectra = [geometric_spectrum(s, 1.0, 1e-12) for s in shape]
        X = tensor_with_mode_spectra(shape, spectra, rng=2)
        sv0 = np.linalg.svd(X.unfold(0), compute_uv=False)[0]
        assert 0.05 < sv0 < 50


class TestLowRankTensor:
    def test_exact_rank(self):
        X = low_rank_tensor((8, 9, 7), (2, 3, 2), rng=0)
        for n, r in enumerate((2, 3, 2)):
            sv = np.linalg.svd(X.unfold(n), compute_uv=False)
            assert sv[r - 1] > 1e-8
            np.testing.assert_allclose(sv[r:], 0, atol=1e-10)

    def test_noise_floor(self):
        X = low_rank_tensor((8, 9, 7), (2, 3, 2), rng=0, noise=1e-3)
        sv = np.linalg.svd(X.unfold(0), compute_uv=False)
        assert sv[-1] > 1e-5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            low_rank_tensor((4, 4), (5, 1), rng=0)
        with pytest.raises(ConfigurationError):
            low_rank_tensor((4, 4), (1,), rng=0)
