"""Tucker diagnostics, core statistics, and partial reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import core_statistics, sthosvd, validate_tucker, TuckerTensor
from repro.data import low_rank_tensor
from repro.errors import ShapeError
from repro.tensor import DenseTensor


@pytest.fixture(scope="module")
def result():
    X = low_rank_tensor((10, 12, 8, 6), (3, 4, 2, 2), rng=4, noise=1e-9)
    return X, sthosvd(X, tol=1e-6)


class TestDiagnostics:
    def test_clean_decomposition_passes(self, result):
        _, res = result
        diag = validate_tucker(res.tucker)
        assert diag.factors_orthonormal()
        assert diag.core_all_orthogonal(rtol=1e-8)
        assert diag.core_norm == pytest.approx(res.tucker.core.norm())
        assert diag.compression_ratio > 1

    def test_detects_broken_factor(self, result):
        _, res = result
        bad_factors = list(res.tucker.factors)
        bad_factors[0] = bad_factors[0] * 2.0  # no longer orthonormal
        bad = TuckerTensor(core=res.tucker.core, factors=tuple(bad_factors))
        diag = validate_tucker(bad)
        assert not diag.factors_orthonormal()

    def test_detects_non_hosvd_core(self, rng):
        """A random core is not all-orthogonal."""
        core = DenseTensor(rng.standard_normal((4, 4, 4)))
        factors = tuple(np.linalg.qr(rng.standard_normal((8, 4)))[0] for _ in range(3))
        diag = validate_tucker(TuckerTensor(core=core, factors=factors))
        assert not diag.core_all_orthogonal(rtol=1e-6)


class TestCoreStatistics:
    def test_fields(self, result):
        _, res = result
        stats = core_statistics(res.tucker)
        assert stats["n_entries"] == res.tucker.core.size
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["norm"] == pytest.approx(res.tucker.core.norm())
        assert 0 < stats["energy_top1pct"] <= 1

    def test_compressed_core_concentrates_energy(self, result):
        """ST-HOSVD cores front-load energy into few entries."""
        _, res = result
        stats = core_statistics(res.tucker)
        uniform_share = max(0.01, 1 / stats["n_entries"])
        assert stats["energy_top1pct"] > uniform_share


class TestPartialReconstruction:
    def test_matches_full_reconstruction(self, result):
        _, res = result
        full = res.tucker.reconstruct()
        region = (slice(2, 5), slice(None), slice(1, 3), slice(0, 4))
        part = res.tucker.reconstruct_slice(region)
        np.testing.assert_allclose(part.data, full.data[region], atol=1e-12)

    def test_integer_index_keeps_mode(self, result):
        _, res = result
        part = res.tucker.reconstruct_slice((slice(None), 3, slice(None), 0))
        assert part.shape == (10, 1, 8, 1)
        full = res.tucker.reconstruct()
        np.testing.assert_allclose(
            part.data[:, 0, :, 0], full.data[:, 3, :, 0], atol=1e-12
        )

    def test_work_scales_with_region(self, result):
        """A single-fiber request touches only sliced factors."""
        _, res = result
        part = res.tucker.reconstruct_slice((0, 0, 0, slice(None)))
        assert part.size == 6

    def test_wrong_slice_count(self, result):
        _, res = result
        with pytest.raises(ShapeError):
            res.tucker.reconstruct_slice((slice(None),))
