"""Automatic variant selection tests (the Sec. 5 decision table)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import choose_variant, compress
from repro.data import geometric_spectrum, tensor_with_mode_spectra
from repro.errors import ConfigurationError
from repro.precision import SINGLE, DOUBLE


class TestChooseVariant:
    def test_paper_decision_table(self):
        """Sec. 5: loose -> Gram-single, mid -> QR-single, tight -> QR-double."""
        assert choose_variant(1e-2).label == "gram-single"
        assert choose_variant(1e-4).label == "qr-single"
        assert choose_variant(1e-9).label == "qr-double"

    def test_paper_boundaries_at_relaxed_safety(self):
        """The paper's exact regime boundaries ('1e-3 or larger' for
        Gram-single, 'between 1e-3 and 1e-7' for QR-single) sit within
        ~3x of the floors, so they appear at safety ~ 2.9."""
        assert choose_variant(1e-3, safety=2.8).label == "gram-single"
        assert choose_variant(1e-6, safety=2.9).label == "qr-single"
        # The stricter default margin shifts borderline tolerances to
        # the next-safer variant — the conservative reading of Tab. 2,
        # where QR-single already degrades at exactly 1e-6.
        assert choose_variant(1e-3).label == "qr-single"
        assert choose_variant(1e-6).label == "gram-double"

    def test_gram_double_window_with_small_safety(self):
        """The paper's narrow ~1e-7 Gram-double window appears when the
        safety margin is relaxed."""
        c = choose_variant(1e-7, safety=3.0)
        assert c.label == "gram-double"
        # With the default decade of headroom, the window closes.
        assert choose_variant(1e-7).label == "qr-double"

    def test_floors_are_derived_not_hardcoded(self):
        c = choose_variant(1e-4)
        assert c.floor == pytest.approx(SINGLE.eps)
        assert c.margin == pytest.approx(1e-4 / SINGLE.eps)

    def test_impossible_tolerance(self):
        with pytest.raises(ConfigurationError, match="no variant"):
            choose_variant(1e-16)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            choose_variant(-1e-3)
        with pytest.raises(ConfigurationError):
            choose_variant(1e-3, safety=0.5)


class TestCompress:
    @pytest.fixture(scope="class")
    def decaying(self):
        shape = (20, 18, 16)
        spectra = [geometric_spectrum(s, 1.0, 1e-10) for s in shape]
        return tensor_with_mode_spectra(shape, spectra, rng=41)

    def test_selects_and_honours_tolerance(self, decaying):
        for tol in (1e-2, 1e-4, 1e-9):
            res = compress(decaying, tol)
            expected = choose_variant(tol)
            assert res.method == expected.method
            assert res.precision is expected.precision
            assert res.tucker.rel_error(decaying) <= tol * 1.01

    def test_cheaper_variant_for_looser_tolerance(self, decaying):
        loose = compress(decaying, 1e-2)
        tight = compress(decaying, 1e-9)
        assert loose.precision is SINGLE and tight.precision is DOUBLE
        # loose run computes in half-precision Gram: fewer bytes, fewer flops
        assert loose.tucker.core.dtype == np.float32
        assert tight.tucker.core.dtype == np.float64

    def test_beats_naive_double_gram_at_1em4(self, decaying):
        """The selected QR-single matches accuracy while the naive
        TuckerMPI default (Gram-double) does the same job in double."""
        auto = compress(decaying, 1e-4)
        from repro.core import sthosvd

        naive = sthosvd(decaying, tol=1e-4, method="gram", precision="double")
        assert auto.ranks == naive.ranks
        assert auto.tucker.rel_error(decaying) <= 1.01e-4


class TestTensorArithmetic:
    def test_add_sub_roundtrip(self, tensor3):
        Z = tensor3 + tensor3 - tensor3
        assert Z.allclose(tensor3, rtol=1e-14, atol=0)

    def test_scalar_multiply(self, tensor3):
        Y = 2.0 * tensor3
        assert Y.norm() == pytest.approx(2 * tensor3.norm())
        assert (-tensor3).norm() == pytest.approx(tensor3.norm())

    def test_dtype_preserved(self, tensor4_f32):
        Y = tensor4_f32 * 3 + tensor4_f32
        assert Y.dtype == np.float32

    def test_shape_mismatch(self, tensor3, tensor4):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            tensor3 + tensor4

    def test_error_tensor_workflow(self, tensor3):
        """The idiom arithmetic enables: explicit error tensors."""
        from repro.core import sthosvd

        res = sthosvd(tensor3, tol=0.3)
        err_tensor = tensor3 - res.tucker.reconstruct()
        assert err_tensor.norm() / tensor3.norm() == pytest.approx(
            res.tucker.rel_error(tensor3), rel=1e-10
        )
