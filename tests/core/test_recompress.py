"""Tucker recompression (rounding) tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import recompress, sthosvd, validate_tucker
from repro.data import geometric_spectrum, tensor_with_mode_spectra
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def master():
    """A tight-tolerance 'master archive' of a compressible tensor."""
    shape = (24, 22, 20)
    spectra = [geometric_spectrum(s, 1.0, 1e-9) for s in shape]
    X = tensor_with_mode_spectra(shape, spectra, rng=61)
    res = sthosvd(X, tol=1e-7)
    return X, res


class TestRecompress:
    def test_loosened_tolerance_matches_direct(self, master):
        """Recompressing the 1e-7 master to 1e-3 gives the same ranks
        and comparable error as compressing the original at 1e-3."""
        X, res = master
        rt, bound = recompress(res.tucker, tol=1e-3,
                               prior_rel_error=res.estimated_rel_error())
        direct = sthosvd(X, tol=1e-3)
        assert rt.ranks == direct.ranks
        actual = rt.rel_error(X)
        assert actual <= bound * 1.1
        assert actual <= 1.2e-3

    def test_fixed_ranks(self, master):
        X, res = master
        target = tuple(max(r - 2, 1) for r in res.tucker.ranks)
        rt, _ = recompress(res.tucker, ranks=target)
        assert rt.ranks == target
        assert rt.shape == X.shape

    def test_factors_stay_orthonormal(self, master):
        """Merged factors U @ V inherit orthonormal columns."""
        X, res = master
        rt, _ = recompress(res.tucker, tol=1e-4)
        assert validate_tucker(rt).factors_orthonormal()

    def test_error_bound_is_sound(self, master):
        X, res = master
        prior = res.tucker.rel_error(X)
        for tol in (1e-2, 1e-4):
            rt, bound = recompress(res.tucker, tol=tol, prior_rel_error=prior)
            assert rt.rel_error(X) <= bound * 1.05

    def test_noop_recompression(self, master):
        """Recompressing at the current ranks changes nothing material."""
        X, res = master
        rt, _ = recompress(res.tucker, ranks=res.tucker.ranks)
        assert rt.ranks == res.tucker.ranks
        assert rt.rel_error(X) == pytest.approx(res.tucker.rel_error(X), rel=1e-6)

    def test_growth_rejected(self, master):
        _, res = master
        bigger = tuple(r + 1 for r in res.tucker.ranks)
        with pytest.raises(ConfigurationError):
            recompress(res.tucker, ranks=bigger)

    def test_rank_count_validated(self, master):
        _, res = master
        with pytest.raises(ConfigurationError):
            recompress(res.tucker, ranks=(1, 1))

    def test_chained_recompression(self, master):
        """master -> 1e-4 -> 1e-2 accumulates errors orthogonally."""
        X, res = master
        mid, b1 = recompress(res.tucker, tol=1e-4,
                             prior_rel_error=res.tucker.rel_error(X))
        final, b2 = recompress(mid, tol=1e-2, prior_rel_error=b1)
        assert final.rel_error(X) <= b2 * 1.05
        assert final.compression_ratio() > mid.compression_ratio()
