"""Checkpoint/restart tests for the out-of-core driver."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.core.outofcore as oocmod
from repro.core import sthosvd, sthosvd_out_of_core
from repro.core.checkpoint import (
    _fingerprint,
    clear_checkpoint,
    load_checkpoint,
)
from repro.data import low_rank_tensor, save_raw
from repro.errors import ConfigurationError


@pytest.fixture()
def raw(tmp_path):
    X = low_rank_tensor((12, 10, 8, 9), (3, 2, 2, 3), rng=11, noise=1e-9)
    path = str(tmp_path / "x.bin")
    save_raw(X, path)
    return X, path


def _crash_after(monkeypatch, n_calls):
    """Patch the LQ kernel to fail after n successful calls."""
    orig = oocmod.ooc_tensor_lq
    state = {"n": 0}

    def failing(*a, **k):
        state["n"] += 1
        if state["n"] > n_calls:
            raise RuntimeError("simulated crash")
        return orig(*a, **k)

    monkeypatch.setattr(oocmod, "ooc_tensor_lq", failing)


class TestResume:
    def test_resume_after_crash_matches_clean_run(self, raw, tmp_path, monkeypatch):
        X, path = raw
        ck = str(tmp_path / "ckpt")
        _crash_after(monkeypatch, 2)
        with pytest.raises(RuntimeError, match="simulated crash"):
            sthosvd_out_of_core(path, X.shape, tol=1e-6, checkpoint_dir=ck)
        monkeypatch.undo()

        fp = _fingerprint(X.shape, np.float64, 1e-6, None, "qr", (0, 1, 2, 3))
        state = load_checkpoint(ck, fp)
        assert state is not None
        assert state.completed_steps == 2
        assert sorted(state.factors) == [0, 1]

        res = sthosvd_out_of_core(path, X.shape, tol=1e-6, checkpoint_dir=ck)
        mem = sthosvd(X, tol=1e-6)
        assert res.ranks == mem.ranks
        assert res.tucker.rel_error(X) <= 1.2e-6

    def test_checkpoint_cleared_on_success(self, raw, tmp_path):
        X, path = raw
        ck = str(tmp_path / "ck2")
        sthosvd_out_of_core(path, X.shape, tol=1e-4, checkpoint_dir=ck)
        fp = _fingerprint(X.shape, np.float64, 1e-4, None, "qr", (0, 1, 2, 3))
        assert load_checkpoint(ck, fp) is None

    def test_mismatched_config_refused(self, raw, tmp_path, monkeypatch):
        X, path = raw
        ck = str(tmp_path / "ck3")
        _crash_after(monkeypatch, 1)
        with pytest.raises(RuntimeError):
            sthosvd_out_of_core(path, X.shape, tol=1e-6, checkpoint_dir=ck)
        monkeypatch.undo()
        with pytest.raises(ConfigurationError):
            sthosvd_out_of_core(path, X.shape, tol=1e-4, checkpoint_dir=ck)

    def test_clear_checkpoint_allows_new_config(self, raw, tmp_path, monkeypatch):
        X, path = raw
        ck = str(tmp_path / "ck4")
        _crash_after(monkeypatch, 1)
        with pytest.raises(RuntimeError):
            sthosvd_out_of_core(path, X.shape, tol=1e-6, checkpoint_dir=ck)
        monkeypatch.undo()
        clear_checkpoint(ck)
        res = sthosvd_out_of_core(path, X.shape, tol=1e-4, checkpoint_dir=ck)
        assert res.tucker.rel_error(X) <= 2e-4

    def test_resume_preserves_backward_order(self, raw, tmp_path, monkeypatch):
        X, path = raw
        ck = str(tmp_path / "ck5")
        _crash_after(monkeypatch, 2)
        with pytest.raises(RuntimeError):
            sthosvd_out_of_core(path, X.shape, tol=1e-6, mode_order="backward",
                                checkpoint_dir=ck)
        monkeypatch.undo()
        res = sthosvd_out_of_core(path, X.shape, tol=1e-6, mode_order="backward",
                                  checkpoint_dir=ck)
        mem = sthosvd(X, tol=1e-6, mode_order="backward")
        assert res.ranks == mem.ranks
        assert res.mode_order == (3, 2, 1, 0)

    def test_no_checkpoint_dir_is_unchanged_behaviour(self, raw):
        X, path = raw
        res = sthosvd_out_of_core(path, X.shape, tol=1e-6)
        assert res.tucker.rel_error(X) <= 1.2e-6

    def test_load_missing_returns_none(self, tmp_path):
        fp = _fingerprint((2, 2), np.float64, 0.1, None, "qr", (0, 1))
        assert load_checkpoint(str(tmp_path / "nope"), fp) is None

    def test_clear_missing_is_noop(self, tmp_path):
        clear_checkpoint(str(tmp_path / "absent"))


class TestManifestHardening:
    def _interrupted(self, raw, tmp_path, monkeypatch, name):
        X, path = raw
        ck = str(tmp_path / name)
        _crash_after(monkeypatch, 1)
        with pytest.raises(RuntimeError):
            sthosvd_out_of_core(path, X.shape, tol=1e-6, checkpoint_dir=ck)
        monkeypatch.undo()
        return X, path, ck

    def test_manifest_records_version_and_dtype(self, raw, tmp_path, monkeypatch):
        import json

        import repro

        _, _, ck = self._interrupted(raw, tmp_path, monkeypatch, "ckv")
        with open(os.path.join(ck, "checkpoint.json")) as f:
            manifest = json.load(f)
        assert manifest["library_version"] == repro.__version__
        assert manifest["tensor_dtype"] == "float64"
        assert manifest["fingerprint"]["dtype"] == "float64"

    def test_dtype_mismatch_gets_dedicated_message(self, raw, tmp_path, monkeypatch):
        X, _, ck = self._interrupted(raw, tmp_path, monkeypatch, "ckd")
        fp = _fingerprint(X.shape, np.float32, 1e-6, None, "qr", (0, 1, 2, 3))
        with pytest.raises(ConfigurationError, match="float64.*float32"):
            load_checkpoint(ck, fp)

    def test_inconsistent_tensor_dtype_refused(self, raw, tmp_path, monkeypatch):
        import json

        X, _, ck = self._interrupted(raw, tmp_path, monkeypatch, "cki")
        mpath = os.path.join(ck, "checkpoint.json")
        with open(mpath) as f:
            manifest = json.load(f)
        manifest["tensor_dtype"] = "float32"
        with open(mpath, "w") as f:
            json.dump(manifest, f)
        fp = _fingerprint(X.shape, np.float64, 1e-6, None, "qr", (0, 1, 2, 3))
        with pytest.raises(ConfigurationError, match="inconsistent"):
            load_checkpoint(ck, fp)

    def test_no_torn_tmp_files_after_save(self, raw, tmp_path, monkeypatch):
        _, _, ck = self._interrupted(raw, tmp_path, monkeypatch, "ckt")
        assert not [n for n in os.listdir(ck) if n.endswith(".tmp")]

    def test_clear_removes_torn_tmp_files(self, raw, tmp_path, monkeypatch):
        _, _, ck = self._interrupted(raw, tmp_path, monkeypatch, "ckc")
        torn = os.path.join(ck, "checkpoint.json.tmp")
        with open(torn, "wb") as f:
            f.write(b"{half a mani")
        clear_checkpoint(ck)
        assert not os.path.exists(torn)
        assert not [n for n in os.listdir(ck)
                    if n.endswith((".npy", ".bin", ".tmp"))]
