"""Classic HOSVD and HOOI tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import hooi, hosvd, sthosvd
from repro.data import low_rank_tensor, geometric_spectrum, tensor_with_mode_spectra
from repro.errors import ConfigurationError
from repro.tensor import DenseTensor


@pytest.fixture(scope="module")
def lowrank():
    return low_rank_tensor((12, 14, 10), (3, 4, 2), rng=3, noise=1e-10)


class TestHosvd:
    def test_recovers_ranks(self, lowrank):
        res = hosvd(lowrank, tol=1e-6)
        assert res.ranks == (3, 4, 2)
        assert res.tucker.rel_error(lowrank) <= 1e-6

    def test_tolerance_honoured_random_data(self, rng):
        X = DenseTensor(rng.standard_normal((8, 9, 7)))
        res = hosvd(X, tol=0.3)
        assert res.tucker.rel_error(X) <= 0.3

    def test_factors_from_original_tensor(self, lowrank):
        """HOSVD sigmas are the original unfolding's singular values for
        every mode (ST-HOSVD's later modes see the truncated tensor)."""
        res = hosvd(lowrank)
        for n in range(3):
            sref = np.linalg.svd(lowrank.unfold(n), compute_uv=False)
            np.testing.assert_allclose(res.sigmas[n], sref, atol=1e-9)

    def test_more_flops_than_sthosvd(self, lowrank):
        h = hosvd(lowrank, ranks=(3, 4, 2))
        s = sthosvd(lowrank, ranks=(3, 4, 2))
        assert h.flops.total > s.flops.total

    def test_gram_variant(self, lowrank):
        res = hosvd(lowrank, tol=1e-6, method="gram")
        assert res.ranks == (3, 4, 2)

    def test_validation(self, lowrank):
        with pytest.raises(ConfigurationError):
            hosvd(lowrank, tol=0.1, ranks=(1, 1, 1))
        with pytest.raises(ConfigurationError):
            hosvd(lowrank, method="nope")
        with pytest.raises(ConfigurationError):
            hosvd(lowrank, ranks=(99, 1, 1))


class TestHooi:
    def test_exact_on_lowrank(self, lowrank):
        res = hooi(lowrank, ranks=(3, 4, 2))
        assert res.tucker.rel_error(lowrank) < 1e-8
        assert res.converged

    def test_fit_monotone(self, rng):
        X = DenseTensor(rng.standard_normal((10, 12, 8)))
        res = hooi(X, ranks=(3, 3, 3), max_iters=8, fit_tol=0.0)
        fits = np.array(res.fits)
        assert np.all(np.diff(fits) >= -1e-12)

    def test_never_worse_than_sthosvd(self, rng):
        """HOOI refines the ST-HOSVD initialization: its error estimate
        cannot exceed the quasi-optimal starting point's."""
        X = DenseTensor(rng.standard_normal((12, 10, 14)))
        ranks = (4, 3, 5)
        st = sthosvd(X, ranks=ranks)
        ho = hooi(X, ranks=ranks, max_iters=10)
        assert ho.tucker.rel_error(X) <= st.tucker.rel_error(X) * (1 + 1e-10)

    def test_improves_on_hard_data(self):
        """On data with coupled modes HOOI strictly improves the fit."""
        shape = (14, 14, 14)
        spectra = [geometric_spectrum(s, 1.0, 1e-2) for s in shape]
        X = tensor_with_mode_spectra(shape, spectra, rng=6)
        ranks = (4, 4, 4)
        st_err = sthosvd(X, ranks=ranks).tucker.rel_error(X)
        ho = hooi(X, ranks=ranks, max_iters=15)
        assert ho.tucker.rel_error(X) <= st_err

    def test_random_init_converges(self, lowrank):
        res = hooi(lowrank, ranks=(3, 4, 2), init="random", max_iters=25)
        assert res.tucker.rel_error(lowrank) < 1e-6

    def test_rel_error_estimate_matches(self, rng):
        X = DenseTensor(rng.standard_normal((9, 9, 9)))
        res = hooi(X, ranks=(3, 3, 3))
        actual = res.tucker.rel_error(X)
        assert res.rel_error_estimate() == pytest.approx(actual, rel=1e-5)

    def test_gram_method(self, lowrank):
        res = hooi(lowrank, ranks=(3, 4, 2), method="gram")
        assert res.tucker.rel_error(lowrank) < 1e-8

    def test_single_precision(self, lowrank):
        res = hooi(lowrank, ranks=(3, 4, 2), precision="single")
        assert res.tucker.core.dtype == np.float32
        assert res.tucker.rel_error(lowrank) < 1e-4

    def test_validation(self, lowrank):
        with pytest.raises(ConfigurationError):
            hooi(lowrank, ranks=(1, 1))
        with pytest.raises(ConfigurationError):
            hooi(lowrank, ranks=(99, 1, 1))
        with pytest.raises(ConfigurationError):
            hooi(lowrank, ranks=(2, 2, 2), init="magic")
        with pytest.raises(ConfigurationError):
            hooi(lowrank, ranks=(2, 2, 2), max_iters=0)
