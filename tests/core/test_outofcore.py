"""Out-of-core tensor access and streaming ST-HOSVD tests."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import sthosvd, sthosvd_out_of_core, ooc_tensor_gram, ooc_tensor_lq
from repro.data import low_rank_tensor, save_raw
from repro.data.outofcore import OutOfCoreTensor
from repro.errors import ConfigurationError, ShapeError
from repro.tensor import DenseTensor


@pytest.fixture(scope="module")
def spilled(tmp_path_factory):
    X = low_rank_tensor((14, 12, 10, 8), (3, 4, 2, 3), rng=7, noise=1e-9)
    path = str(tmp_path_factory.mktemp("ooc") / "x.bin")
    save_raw(X, path)
    return X, OutOfCoreTensor(path, X.shape)


class TestOutOfCoreTensor:
    def test_roundtrip(self, spilled):
        X, ooc = spilled
        assert ooc.to_dense() == X

    def test_from_dense(self, tmp_path, rng):
        X = DenseTensor(rng.standard_normal((5, 6, 4)))
        ooc = OutOfCoreTensor.from_dense(X, str(tmp_path / "t.bin"))
        assert ooc.to_dense() == X

    def test_size_mismatch_detected(self, tmp_path):
        p = str(tmp_path / "bad.bin")
        np.zeros(10).tofile(p)
        with pytest.raises(ShapeError):
            OutOfCoreTensor(p, (3, 3))

    def test_norm_matches(self, spilled):
        X, ooc = spilled
        assert ooc.norm() == pytest.approx(X.norm(), rel=1e-12)

    @pytest.mark.parametrize("max_elements", [50, 333, 10**6])
    def test_chunks_reassemble_unfolding(self, spilled, max_elements):
        X, ooc = spilled
        for n in range(X.ndim):
            chunks = list(ooc.iter_unfolding_chunks(n, max_elements))
            assembled = np.concatenate(chunks, axis=1)
            np.testing.assert_array_equal(assembled, X.unfold(n))

    def test_last_mode_partial_block_chunks(self, spilled):
        """Mode N-1 is one huge block: chunking must slice within it."""
        X, ooc = spilled
        n = X.ndim - 1
        rows = X.shape[n]
        chunks = list(ooc.iter_unfolding_chunks(n, max_elements=rows * 7))
        assert len(chunks) > 1
        np.testing.assert_array_equal(np.concatenate(chunks, axis=1), X.unfold(n))

    @pytest.mark.parametrize("n", [0, 1, 3])
    def test_ttm_truncate_to_file(self, spilled, tmp_path, n):
        X, ooc = spilled
        U = np.random.default_rng(n).standard_normal((X.shape[n], 3))
        out = ooc.ttm_truncate_to_file(U, n, str(tmp_path / f"y{n}.bin"),
                                       max_elements=200)
        from repro.tensor import ttm

        ref = ttm(X, U, n, transpose=True)
        assert out.to_dense().allclose(ref, rtol=1e-12, atol=1e-12)


class TestStreamedKernels:
    @pytest.mark.parametrize("max_elements", [64, 500, 10**6])
    def test_gram_matches_memory(self, spilled, max_elements):
        X, ooc = spilled
        from repro.linalg import tensor_gram

        for n in range(X.ndim):
            G = ooc_tensor_gram(ooc, n, max_elements=max_elements)
            np.testing.assert_allclose(G, tensor_gram(X, n), atol=1e-10)

    @pytest.mark.parametrize("max_elements", [64, 500, 10**6])
    def test_lq_matches_memory(self, spilled, max_elements):
        X, ooc = spilled
        for n in range(X.ndim):
            L = ooc_tensor_lq(ooc, n, max_elements=max_elements)
            Y = X.unfold(n)
            np.testing.assert_allclose(L @ L.T, Y @ Y.T, atol=1e-9)


class TestStreamedSthosvd:
    @pytest.mark.parametrize("method", ["qr", "gram"])
    def test_matches_in_memory(self, spilled, method):
        X, ooc = spilled
        mem = sthosvd(X, tol=1e-6, method=method)
        res = sthosvd_out_of_core(
            ooc.path, X.shape, tol=1e-6, method=method, max_elements=300
        )
        assert res.ranks == mem.ranks
        assert res.tucker.rel_error(X) <= 1.2e-6

    def test_fixed_ranks_and_order(self, spilled):
        X, ooc = spilled
        res = sthosvd_out_of_core(
            ooc.path, X.shape, ranks=(2, 3, 2, 2), mode_order="backward",
            max_elements=128,
        )
        assert res.ranks == (2, 3, 2, 2)
        assert res.mode_order == (3, 2, 1, 0)

    def test_scratch_files_cleaned(self, spilled, tmp_path):
        X, ooc = spilled
        work = str(tmp_path / "work")
        os.makedirs(work)
        sthosvd_out_of_core(
            ooc.path, X.shape, tol=1e-4, workdir=work, max_elements=256
        )
        # only the final step's scratch remains when workdir is caller-owned
        leftover = os.listdir(work)
        assert len(leftover) <= 1

    def test_validation(self, spilled):
        X, ooc = spilled
        with pytest.raises(ConfigurationError):
            sthosvd_out_of_core(ooc.path, X.shape, tol=0.1, ranks=(1, 1, 1, 1))
        with pytest.raises(ConfigurationError):
            sthosvd_out_of_core(ooc.path, X.shape, tol=0.1, method="randomized")
        with pytest.raises(ConfigurationError):
            sthosvd_out_of_core(ooc.path, X.shape, ranks=(99, 1, 1, 1))


class TestProgressCallback:
    def test_called_once_per_mode(self, spilled):
        X, ooc = spilled
        events = []
        sthosvd_out_of_core(
            ooc.path, X.shape, tol=1e-4, progress=events.append
        )
        assert len(events) == X.ndim
        assert [e["step"] for e in events] == list(range(1, X.ndim + 1))
        assert all(e["total_steps"] == X.ndim for e in events)
        assert [e["mode"] for e in events] == list(range(X.ndim))
        assert all(e["rank"] >= 1 for e in events)
        assert events[-1]["seconds"] >= events[0]["seconds"]
