"""Rank-selection rule tests (Alg. 1, line 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import choose_rank, error_budget_per_mode, tail_energy
from repro.errors import ConfigurationError


class TestBudget:
    def test_formula(self):
        assert error_budget_per_mode(100.0, 0.1, 4) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            error_budget_per_mode(1.0, -0.1, 3)
        with pytest.raises(ConfigurationError):
            error_budget_per_mode(1.0, 0.1, 0)
        with pytest.raises(ConfigurationError):
            error_budget_per_mode(-1.0, 0.1, 3)


class TestTailEnergy:
    def test_values(self):
        t = tail_energy(np.array([2.0, 1.0]))
        np.testing.assert_allclose(t, [5.0, 1.0, 0.0])

    def test_float64_accumulation(self):
        s = np.full(1000, 1e-3, dtype=np.float32)
        t = tail_energy(s)
        assert t[0] == pytest.approx(1000 * 1e-6, rel=1e-6)
        assert t.dtype == np.float64


class TestChooseRank:
    def test_exact_cutoff(self):
        sigma = np.array([2.0, 1.0, 0.5, 0.1])
        # tails: r=0:5.26, r=1:1.26, r=2:0.26, r=3:0.01, r=4:0
        assert choose_rank(sigma, 0.26) == 2
        assert choose_rank(sigma, 0.25) == 3
        assert choose_rank(sigma, 10.0) == 1  # never below rank 1
        assert choose_rank(sigma, 0.0) == 4

    def test_zero_tail_allows_truncation_at_zero_budget(self):
        sigma = np.array([1.0, 0.0, 0.0])
        assert choose_rank(sigma, 0.0) == 1

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_rank(np.array([1.0, 2.0]), 0.1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_rank(np.array([]), 0.1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_rank(np.array([1.0]), -1.0)


@given(
    seed=st.integers(0, 10**6),
    n=st.integers(1, 40),
    budget=st.floats(0, 100, allow_nan=False),
)
@settings(max_examples=150, deadline=None)
def test_choose_rank_is_minimal_property(seed, n, budget):
    """The chosen rank satisfies the budget and rank-1 fewer would not."""
    rng = np.random.default_rng(seed)
    sigma = np.sort(np.abs(rng.standard_normal(n)))[::-1]
    r = choose_rank(sigma, budget)
    tails = tail_energy(sigma)
    assert 1 <= r <= n
    assert tails[r] <= budget or r == n
    if r > 1:
        assert tails[r - 1] > budget
