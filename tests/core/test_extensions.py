"""Tests for the future-work method extensions in sthosvd."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd
from repro.data import geometric_spectrum, low_rank_tensor, tensor_with_mode_spectra
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def decaying():
    shape = (22, 18, 20)
    spectra = [geometric_spectrum(s, 1.0, 1e-10) for s in shape]
    return tensor_with_mode_spectra(shape, spectra, rng=8)


class TestGramMixed:
    def test_recovers_single_precision_failure(self, decaying):
        """The paper's future-work hypothesis: float64 accumulation inside
        Gram restores truncation ability at tolerances where plain
        float32 Gram fails."""
        Xf = decaying.astype(np.float32)
        plain = sthosvd(Xf, tol=1e-4, method="gram")
        mixed = sthosvd(Xf, tol=1e-4, method="gram-mixed")
        qr = sthosvd(Xf, tol=1e-4, method="qr")
        # plain gram-single cannot truncate; mixed matches QR-single.
        assert plain.tucker.compression_ratio() < 2.0
        assert mixed.ranks == qr.ranks
        assert mixed.tucker.rel_error(decaying) <= 2e-4

    def test_noop_for_double_input(self, decaying):
        a = sthosvd(decaying, tol=1e-4, method="gram")
        b = sthosvd(decaying, tol=1e-4, method="gram-mixed")
        assert a.ranks == b.ranks

    def test_output_precision_is_single(self, decaying):
        Xf = decaying.astype(np.float32)
        res = sthosvd(Xf, tol=1e-3, method="gram-mixed")
        assert res.tucker.core.dtype == np.float32

    def test_gram_flops_not_qr_flops(self, decaying):
        """Mixed Gram keeps the Gram flop count (half of QR's)."""
        Xf = decaying.astype(np.float32)
        mixed = sthosvd(Xf, ranks=(4, 4, 4), method="gram-mixed")
        qr = sthosvd(Xf, ranks=(4, 4, 4), method="qr")
        assert mixed.flops.phase_total("gram") < 0.7 * qr.flops.phase_total("lq")


class TestRandomizedMethod:
    def test_matches_qr_on_low_rank(self):
        X = low_rank_tensor((18, 16, 14), (3, 4, 2), rng=5, noise=1e-11)
        rand = sthosvd(X, ranks=(3, 4, 2), method="randomized")
        qr = sthosvd(X, ranks=(3, 4, 2), method="qr")
        assert rand.tucker.rel_error(X) < 1e-8
        assert qr.tucker.rel_error(X) < 1e-8

    def test_cheaper_than_both_at_low_rank(self):
        X = low_rank_tensor((60, 50, 40), (3, 3, 3), rng=6, noise=1e-10)
        opts = {"oversample": 5, "power_iters": 0}
        rand = sthosvd(X, ranks=(3, 3, 3), method="randomized", svd_options=opts)
        gram = sthosvd(X, ranks=(3, 3, 3), method="gram")
        qr = sthosvd(X, ranks=(3, 3, 3), method="qr")
        # Sketch cost O(mn(r+p)) vs Gram's O(m^2 n): fewer flops when
        # r + oversample << m.
        assert rand.flops.total < gram.flops.total
        assert rand.flops.total < qr.flops.total
        assert rand.tucker.rel_error(X) < 1e-6

    def test_requires_ranks(self, decaying):
        with pytest.raises(ConfigurationError):
            sthosvd(decaying, tol=1e-3, method="randomized")

    def test_sigma_recorded(self):
        X = low_rank_tensor((10, 10, 10), (2, 2, 2), rng=7)
        res = sthosvd(X, ranks=(2, 2, 2), method="randomized")
        assert all(len(s) >= 2 for s in res.sigmas.values())


class TestJacobiTriangleSolverSequential:
    def test_matches_lapack_path(self):
        X = low_rank_tensor((14, 12, 10), (3, 4, 2), rng=9, noise=1e-10)
        lap = sthosvd(X, tol=1e-6, method="qr")
        jac = sthosvd(X, tol=1e-6, method="qr",
                      svd_options={"triangle_solver": "jacobi"})
        assert jac.ranks == lap.ranks
        assert jac.tucker.rel_error(X) <= 1.1e-6
        for n, s in lap.sigmas.items():
            np.testing.assert_allclose(jac.sigmas[n], s, atol=1e-9)

    def test_bad_solver_name(self):
        X = low_rank_tensor((8, 8, 8), (2, 2, 2), rng=1)
        with pytest.raises(ConfigurationError):
            sthosvd(X, tol=0.1, method="qr",
                    svd_options={"triangle_solver": "cholesky"})
