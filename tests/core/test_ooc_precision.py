"""Working-precision handling of the out-of-core path (double file,
single pipeline — the paper's production configuration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd, sthosvd_out_of_core
from repro.data import geometric_spectrum, save_raw, tensor_with_mode_spectra
from repro.data.outofcore import OutOfCoreTensor


@pytest.fixture(scope="module")
def double_file(tmp_path_factory):
    shape = (18, 16, 14)
    spectra = [geometric_spectrum(s, 1.0, 1e-9) for s in shape]
    X = tensor_with_mode_spectra(shape, spectra, rng=51)  # float64
    path = str(tmp_path_factory.mktemp("prec") / "x64.bin")
    save_raw(X, path)
    return X, path


class TestWorkDtype:
    def test_chunks_cast_to_single(self, double_file):
        X, path = double_file
        ooc = OutOfCoreTensor(path, X.shape, work_dtype="single")
        assert ooc.file_dtype == np.float64
        assert ooc.dtype == np.float32
        chunk = next(ooc.iter_unfolding_chunks(0))
        assert chunk.dtype == np.float32
        np.testing.assert_allclose(
            chunk, X.unfold(0)[:, : chunk.shape[1]], rtol=1e-6
        )

    def test_to_dense_casts(self, double_file):
        X, path = double_file
        ooc = OutOfCoreTensor(path, X.shape, work_dtype="single")
        dense = ooc.to_dense()
        assert dense.dtype == np.float32
        assert dense.allclose(X.astype(np.float32), rtol=0, atol=0)

    def test_ttm_output_in_work_precision(self, double_file, tmp_path):
        X, path = double_file
        ooc = OutOfCoreTensor(path, X.shape, work_dtype="single")
        U = np.random.default_rng(0).standard_normal((X.shape[0], 3))
        out = ooc.ttm_truncate_to_file(U, 0, str(tmp_path / "y.bin"))
        assert out.dtype == np.float32
        assert out.file_dtype == np.float32


class TestSinglePrecisionPipeline:
    @pytest.mark.parametrize("method", ["qr", "gram"])
    def test_matches_in_memory_single(self, double_file, method):
        """OOC with precision='single' == in-memory on the cast tensor."""
        X, path = double_file
        tol = 1e-3
        ooc_res = sthosvd_out_of_core(
            path, X.shape, precision="single", tol=tol, method=method,
            max_elements=400,
        )
        mem_res = sthosvd(X.astype(np.float32), tol=tol, method=method)
        # Chunked float32 accumulation rounds differently from the
        # block-wise in-memory order, so a rank at the exact budget
        # boundary may flip by one (a Gram-in-single artifact).
        for a, b in zip(ooc_res.ranks, mem_res.ranks):
            assert abs(a - b) <= 1
        assert ooc_res.tucker.core.dtype == np.float32
        assert ooc_res.tucker.rel_error(X) <= tol * 1.05

    def test_gram_single_noise_floor_persists_out_of_core(self, double_file):
        """The sqrt(eps_s) failure mode is a property of the arithmetic,
        not the driver: it appears identically when streaming."""
        X, path = double_file
        res = sthosvd_out_of_core(
            path, X.shape, precision="single", tol=1e-4, method="gram",
        )
        qr = sthosvd_out_of_core(
            path, X.shape, precision="single", tol=1e-4, method="qr",
        )
        assert res.tucker.compression_ratio() < 0.5 * qr.tucker.compression_ratio()
