"""Parallel ST-HOSVD: equivalence with the sequential driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sthosvd, sthosvd_parallel
from repro.data import low_rank_tensor
from repro.dist import DistributedTensor, GridComms, ProcessorGrid
from repro.errors import ConfigurationError
from repro.mpi import run_spmd, CostModel


@pytest.fixture(scope="module")
def X():
    return low_rank_tensor((8, 12, 6, 9), (2, 4, 3, 2), rng=9, noise=1e-9)


def _run(X, grid_dims, **kwargs):
    single = kwargs.pop("_single", False)

    def prog(comm):
        comms = GridComms(comm, ProcessorGrid(grid_dims))
        dt = DistributedTensor.from_full(comms, X.data)
        if single:
            dt = dt.astype("single")
        res = sthosvd_parallel(dt, **kwargs)
        return {
            "ranks": res.ranks,
            "err": res.to_tucker().rel_error(X),
            "est": res.estimated_rel_error(),
            "cr": res.compression_ratio(),
            "factors": res.factors,
            "order": res.mode_order,
        }

    return run_spmd(prog, int(np.prod(grid_dims)))


GRIDS = [(1, 1, 1, 1), (2, 2, 1, 1), (1, 3, 2, 1), (2, 2, 1, 2)]


class TestEquivalence:
    @pytest.mark.parametrize("grid", GRIDS)
    @pytest.mark.parametrize("method", ["qr", "gram"])
    def test_matches_sequential(self, X, grid, method):
        seq = sthosvd(X, tol=1e-6, method=method)
        res = _run(X, grid, tol=1e-6, method=method)
        out = res[0]
        assert out["ranks"] == seq.ranks
        assert out["err"] <= 1.1e-6
        # estimates agree up to roundoff-level differences in the tails
        # (parallel and sequential reductions round differently)
        assert out["est"] <= 1e-6
        assert abs(out["est"] - seq.estimated_rel_error()) < 1e-7

    @pytest.mark.parametrize("grid", GRIDS[:2])
    def test_backward_ordering(self, X, grid):
        seq = sthosvd(X, tol=1e-6, mode_order="backward")
        out = _run(X, grid, tol=1e-6, mode_order="backward")[0]
        assert out["order"] == (3, 2, 1, 0)
        assert out["ranks"] == seq.ranks

    def test_fixed_ranks(self, X):
        out = _run(X, (2, 1, 2, 1), ranks=(2, 3, 2, 2))[0]
        assert out["ranks"] == (2, 3, 2, 2)

    def test_results_replicated(self, X):
        res = _run(X, (2, 2, 1, 1), tol=1e-6)
        U0 = res[0]["factors"]
        for out in res.values[1:]:
            for a, b in zip(U0, out["factors"]):
                np.testing.assert_array_equal(a, b)

    def test_single_precision(self, X):
        res = _run(X, (2, 2, 1, 1), tol=1e-3, _single=True)
        out = res[0]
        assert out["ranks"] == (2, 4, 3, 2)
        assert out["err"] < 1e-3


class TestSvdStrategy:
    @pytest.mark.parametrize("grid", [(2, 2, 1, 1), (1, 3, 2, 1)])
    @pytest.mark.parametrize("method", ["qr", "gram"])
    def test_root_bcast_bitwise_matches_replicated(self, X, grid, method):
        """Decompose-once-and-broadcast yields the exact same factors as
        the paper's redundant decomposition (same LAPACK on the same
        replicated input), on every rank."""
        rep = _run(X, grid, tol=1e-6, method=method)
        bc = _run(X, grid, tol=1e-6, method=method, svd_strategy="root_bcast")
        for r in range(len(rep.values)):
            assert bc[r]["ranks"] == rep[r]["ranks"]
            for U_b, U_r in zip(bc[r]["factors"], rep[r]["factors"]):
                np.testing.assert_array_equal(U_b, U_r)

    def test_bad_strategy(self, X):
        with pytest.raises(ValueError):
            _run(X, (1, 1, 1, 1), tol=0.1, svd_strategy="telepathy")


class TestValidation:
    def test_bad_method(self, X):
        with pytest.raises(ConfigurationError):
            _run(X, (1, 1, 1, 1), tol=0.1, method="magic")

    def test_tol_xor_ranks(self, X):
        with pytest.raises(ConfigurationError):
            _run(X, (1, 1, 1, 1), tol=0.1, ranks=(1, 1, 1, 1))


class TestCostModelIntegration:
    def test_modeled_run_produces_breakdown(self, X):
        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((2, 2, 1, 1)))
            dt = DistributedTensor.from_full(comms, X.data)
            sthosvd_parallel(dt, tol=1e-6, method="qr")
            return comm.clock.breakdown()

        res = run_spmd(prog, 4, cost_model=CostModel())
        bd = res.slowest_rank_breakdown()
        assert bd.get("lq", 0) > 0
        assert bd.get("ttm", 0) > 0
        assert bd.get("svd", 0) > 0

    def test_single_precision_modeled_faster(self, X):
        def prog(comm, single):
            comms = GridComms(comm, ProcessorGrid((2, 2, 1, 1)))
            dt = DistributedTensor.from_full(comms, X.data)
            if single:
                dt = dt.astype("single")
            sthosvd_parallel(dt, ranks=(2, 4, 3, 2), method="qr")
            return comm.clock.now

        t64 = run_spmd(prog, 4, False, cost_model=CostModel()).slowest_time
        t32 = run_spmd(prog, 4, True, cost_model=CostModel()).slowest_time
        assert t32 < t64
