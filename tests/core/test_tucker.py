"""TuckerTensor container tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TuckerTensor
from repro.data import low_rank_tensor, random_orthonormal
from repro.errors import ShapeError
from repro.tensor import DenseTensor, multi_ttm


@pytest.fixture
def tk(rng):
    core = DenseTensor(rng.standard_normal((2, 3, 2)))
    factors = tuple(
        random_orthonormal(d, r, rng) for d, r in zip((5, 7, 4), (2, 3, 2))
    )
    return TuckerTensor(core=core, factors=factors)


class TestBasics:
    def test_shapes(self, tk):
        assert tk.shape == (5, 7, 4)
        assert tk.ranks == (2, 3, 2)
        assert tk.ndim == 3

    def test_parameters_and_compression(self, tk):
        n_params = 2 * 3 * 2 + 5 * 2 + 7 * 3 + 4 * 2
        assert tk.n_parameters() == n_params
        assert tk.compression_ratio() == pytest.approx(5 * 7 * 4 / n_params)

    def test_factor_count_validation(self, rng):
        core = DenseTensor(rng.standard_normal((2, 2)))
        with pytest.raises(ShapeError):
            TuckerTensor(core=core, factors=(np.eye(2),))

    def test_factor_shape_validation(self, rng):
        core = DenseTensor(rng.standard_normal((2, 2)))
        with pytest.raises(ShapeError):
            TuckerTensor(core=core, factors=(np.eye(2), np.ones((4, 3))))


class TestReconstruction:
    def test_matches_multi_ttm(self, tk):
        ref = multi_ttm(tk.core, list(tk.factors))
        assert tk.reconstruct() == ref

    def test_exact_for_exactly_lowrank(self, rng):
        X = low_rank_tensor((6, 5, 7), (2, 2, 3), rng)
        from repro.core import sthosvd

        res = sthosvd(X, ranks=(2, 2, 3))
        assert res.tucker.rel_error(X) < 1e-12

    def test_rel_error_zero_reference(self):
        core = DenseTensor(np.zeros((1, 1)))
        tkz = TuckerTensor(core=core, factors=(np.zeros((3, 1)), np.zeros((2, 1))))
        assert tkz.rel_error(np.zeros((3, 2))) == 0.0

    def test_rel_error_shape_check(self, tk):
        with pytest.raises(ShapeError):
            tk.rel_error(np.zeros((1, 2, 3)))

    def test_astype(self, tk):
        tks = tk.astype("single")
        assert tks.core.dtype == np.float32
        assert all(U.dtype == np.float32 for U in tks.factors)
