"""Distributed classic HOSVD tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import hosvd, hosvd_parallel, sthosvd_parallel
from repro.data import low_rank_tensor
from repro.dist import DistributedTensor, GridComms, ProcessorGrid
from repro.errors import ConfigurationError
from repro.mpi import run_spmd


@pytest.fixture(scope="module")
def X():
    return low_rank_tensor((10, 12, 8), (3, 2, 2), rng=17, noise=1e-9)


GRIDS = [(1, 1, 1), (2, 2, 1), (1, 3, 2)]


class TestHosvdParallel:
    @pytest.mark.parametrize("grid", GRIDS)
    @pytest.mark.parametrize("method", ["qr", "gram"])
    def test_matches_sequential(self, X, grid, method):
        seq = hosvd(X, tol=1e-6, method=method)

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid(grid))
            dt = DistributedTensor.from_full(comms, X.data)
            res = hosvd_parallel(dt, tol=1e-6, method=method)
            return res.ranks, res.to_tucker().rel_error(X)

        out = run_spmd(prog, int(np.prod(grid)))
        ranks, err = out[0]
        assert ranks == seq.ranks
        assert err <= 1.1e-6

    def test_sigmas_from_original_tensor(self, X):
        """Unlike ST-HOSVD, every mode's sigmas come from the original."""

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((2, 1, 2)))
            dt = DistributedTensor.from_full(comms, X.data)
            return hosvd_parallel(dt, tol=1e-6).sigmas

        sigmas = run_spmd(prog, 4)[0]
        for n in range(3):
            sref = np.linalg.svd(X.unfold(n), compute_uv=False)
            np.testing.assert_allclose(sigmas[n], sref, atol=1e-9)

    def test_fixed_ranks(self, X):
        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((2, 2, 1)))
            dt = DistributedTensor.from_full(comms, X.data)
            return hosvd_parallel(dt, ranks=(2, 2, 2)).ranks

        assert run_spmd(prog, 4)[0] == (2, 2, 2)

    def test_costlier_than_sthosvd(self, X):
        """Classic HOSVD does strictly more reduction work at scale."""

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((2, 2, 1)))
            dt = DistributedTensor.from_full(comms, X.data)
            h = hosvd_parallel(dt, ranks=(3, 2, 2), method="qr")
            s = sthosvd_parallel(dt, ranks=(3, 2, 2), method="qr")
            return h.flops.phase_total("lq"), s.flops.phase_total("lq")

        h_fl, s_fl = run_spmd(prog, 4)[0]
        assert h_fl > s_fl

    def test_validation(self, X):
        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((1, 1, 1)))
            dt = DistributedTensor.from_full(comms, X.data)
            hosvd_parallel(dt, tol=0.1, ranks=(1, 1, 1))

        with pytest.raises(ConfigurationError):
            run_spmd(prog, 1)
