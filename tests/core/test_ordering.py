"""Mode-ordering policy tests."""

from __future__ import annotations

import pytest

from repro.core import greedy_order, resolve_mode_order
from repro.errors import ConfigurationError


class TestResolve:
    def test_forward(self):
        assert resolve_mode_order("forward", 4) == (0, 1, 2, 3)
        assert resolve_mode_order(None, 3) == (0, 1, 2)

    def test_backward(self):
        assert resolve_mode_order("backward", 4) == (3, 2, 1, 0)

    def test_explicit(self):
        assert resolve_mode_order((2, 0, 1), 3) == (2, 0, 1)

    def test_not_permutation(self):
        with pytest.raises(ConfigurationError):
            resolve_mode_order((0, 0, 1), 3)
        with pytest.raises(ConfigurationError):
            resolve_mode_order((0, 1), 3)

    def test_garbage(self):
        with pytest.raises(ConfigurationError):
            resolve_mode_order(3.14, 3)


class TestGreedy:
    def test_biggest_reduction_first(self):
        # reductions: 10/1=10, 8/4=2, 6/6=1
        assert greedy_order((10, 8, 6), (1, 4, 6)) == (0, 1, 2)
        assert greedy_order((6, 8, 10), (6, 4, 1)) == (2, 1, 0)

    def test_is_permutation(self):
        order = greedy_order((5, 5, 5, 5), (2, 3, 1, 4))
        assert sorted(order) == [0, 1, 2, 3]

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            greedy_order((5, 5), (2,))
