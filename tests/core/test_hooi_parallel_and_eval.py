"""Distributed HOOI, streaming error evaluation, and memory model tests."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import (
    hooi,
    hooi_parallel,
    rel_error_lowmem,
    sthosvd,
    streaming_rel_error,
)
from repro.data import low_rank_tensor, save_raw
from repro.data.outofcore import OutOfCoreTensor
from repro.dist import DistributedTensor, GridComms, ProcessorGrid
from repro.errors import ConfigurationError, ShapeError
from repro.mpi import run_spmd
from repro.perf import simulate_memory


@pytest.fixture(scope="module")
def X():
    return low_rank_tensor((10, 12, 8, 9), (3, 2, 4, 2), rng=2, noise=1e-9)


class TestHooiParallel:
    @pytest.mark.parametrize("grid", [(1, 1, 1, 1), (2, 1, 2, 1), (1, 3, 1, 2)])
    def test_matches_sequential(self, X, grid):
        seq = hooi(X, ranks=(3, 2, 4, 2))

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid(grid))
            dt = DistributedTensor.from_full(comms, X.data)
            res = hooi_parallel(dt, ranks=(3, 2, 4, 2))
            return res.to_tucker().rel_error(X), res.converged

        out = run_spmd(prog, int(np.prod(grid)))
        err, converged = out[0]
        assert converged
        assert err == pytest.approx(seq.tucker.rel_error(X), abs=1e-9)

    def test_factors_replicated(self, X):
        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((2, 2, 1, 1)))
            dt = DistributedTensor.from_full(comms, X.data)
            return hooi_parallel(dt, ranks=(2, 2, 2, 2)).factors

        res = run_spmd(prog, 4)
        for factors in res.values[1:]:
            for a, b in zip(res[0], factors):
                np.testing.assert_array_equal(a, b)

    def test_fits_monotone(self, X):
        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((2, 1, 1, 2)))
            dt = DistributedTensor.from_full(comms, X.data)
            return hooi_parallel(dt, ranks=(2, 2, 2, 2), max_iters=6,
                                 fit_tol=0.0).fits

        fits = np.array(run_spmd(prog, 4)[0])
        assert np.all(np.diff(fits) >= -1e-12)

    def test_validation(self, X):
        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((1, 1, 1, 1)))
            dt = DistributedTensor.from_full(comms, X.data)
            hooi_parallel(dt, ranks=(2, 2, 2, 2), method="randomized")

        with pytest.raises(ConfigurationError):
            run_spmd(prog, 1)


class TestStreamingError:
    @pytest.fixture(scope="class")
    def setup(self, tmp_path_factory):
        X = low_rank_tensor((12, 10, 14), (3, 4, 2), rng=9, noise=1e-8)
        res = sthosvd(X, tol=1e-4)
        path = str(tmp_path_factory.mktemp("eval") / "ref.bin")
        save_raw(X, path)
        return X, res, OutOfCoreTensor(path, X.shape)

    @pytest.mark.parametrize("slab", [40, 300, 10**7])
    def test_matches_direct(self, setup, slab):
        X, res, ooc = setup
        direct = res.tucker.rel_error(X)
        assert streaming_rel_error(res.tucker, ooc, slab_elements=slab) == pytest.approx(
            direct, rel=1e-10
        )

    @pytest.mark.parametrize("slab", [40, 10**7])
    def test_lowmem_matches(self, setup, slab):
        X, res, _ = setup
        direct = res.tucker.rel_error(X)
        assert rel_error_lowmem(res.tucker, X, slab_elements=slab) == pytest.approx(
            direct, rel=1e-10
        )

    def test_shape_mismatch(self, setup, tmp_path):
        X, res, _ = setup
        other = low_rank_tensor((5, 5, 5), (1, 1, 1), rng=0)
        p = str(tmp_path / "bad.bin")
        save_raw(other, p)
        with pytest.raises(ShapeError):
            streaming_rel_error(res.tucker, OutOfCoreTensor(p, other.shape))

    def test_zero_reference(self, tmp_path):
        from repro.core import TuckerTensor
        from repro.tensor import DenseTensor

        core = DenseTensor(np.zeros((1, 1)))
        tk = TuckerTensor(core=core, factors=(np.zeros((4, 1)), np.zeros((3, 1))))
        p = str(tmp_path / "z.bin")
        save_raw(DenseTensor(np.zeros((4, 3))), p)
        assert streaming_rel_error(tk, OutOfCoreTensor(p, (4, 3))) == 0.0


class TestMemoryModel:
    def test_peak_positive_and_attributed(self):
        m = simulate_memory((256,) * 4, (32,) * 4, (4, 4, 2, 1))
        assert m.peak_bytes > 0
        assert m.peak_mode in range(4)
        assert m.peak_bytes == max(m.by_mode.values())

    def test_first_mode_dominates(self):
        """Memory peaks while the tensor is still untruncated."""
        m = simulate_memory((256,) * 4, (16,) * 4, (2, 2, 2, 2))
        assert m.peak_mode == 0

    def test_single_halves_double(self):
        m64 = simulate_memory((128,) * 3, (16,) * 3, (2, 2, 2), precision="double")
        m32 = simulate_memory((128,) * 3, (16,) * 3, (2, 2, 2), precision="single")
        assert m32.peak_bytes == pytest.approx(m64.peak_bytes / 2)

    def test_weak_scaling_memory_constant(self):
        """The weak-scaling family keeps per-rank memory ~flat."""
        from repro.perf import weak_scaling_config

        peaks = []
        for k in (1, 2, 3):
            cfg = weak_scaling_config(k)
            m = simulate_memory(cfg["shape"], cfg["ranks"], cfg["qr_grid"],
                                mode_order="backward")
            peaks.append(m.peak_bytes)
        assert max(peaks) / min(peaks) < 1.6

    def test_more_ranks_less_memory(self):
        small = simulate_memory((200,) * 3, (20,) * 3, (2, 2, 2))
        big = simulate_memory((200,) * 3, (20,) * 3, (4, 4, 4))
        assert big.peak_bytes < small.peak_bytes

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_memory((8, 8), (2,), (1, 1))
        with pytest.raises(ConfigurationError):
            simulate_memory((8, 8), (2, 2), (1, 1), method="nope")
