"""Degenerate and extreme tensor shapes through the full pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import hooi, hosvd, sthosvd
from repro.tensor import DenseTensor


class TestOneModeTensors:
    def test_sthosvd_vector(self):
        X = DenseTensor(np.arange(1.0, 9.0))
        res = sthosvd(X, tol=0.1)
        assert res.ranks == (1,)
        assert res.tucker.rel_error(X) < 1e-12  # a vector is rank 1

    def test_methods_agree(self):
        X = DenseTensor(np.arange(1.0, 9.0))
        for method in ("qr", "gram"):
            res = sthosvd(X, tol=0.5, method=method)
            assert res.ranks == (1,)


class TestSizeOneModes:
    def test_middle_singleton(self, rng):
        X = DenseTensor(rng.standard_normal((5, 1, 7)))
        res = sthosvd(X, tol=1e-8)
        assert res.ranks[1] == 1
        assert res.tucker.rel_error(X) < 1e-8

    def test_all_singletons(self):
        X = DenseTensor(np.array([[[2.0]]]))
        res = sthosvd(X, tol=0.1)
        assert res.ranks == (1, 1, 1)
        assert res.tucker.rel_error(X) < 1e-14

    def test_leading_singleton_gram(self, rng):
        X = DenseTensor(rng.standard_normal((1, 6, 5)))
        res = sthosvd(X, tol=1e-6, method="gram")
        assert res.tucker.rel_error(X) <= 1e-6


class TestExtremeAspect:
    def test_needle(self, rng):
        """One huge mode, several tiny ones."""
        X = DenseTensor(rng.standard_normal((500, 2, 2)))
        res = sthosvd(X, tol=0.5)
        assert res.tucker.rel_error(X) <= 0.5
        assert res.ranks[0] <= 4  # rank bounded by the product of others

    def test_pancake_backward(self, rng):
        X = DenseTensor(rng.standard_normal((2, 2, 300)))
        res = sthosvd(X, tol=0.3, mode_order="backward")
        assert res.tucker.rel_error(X) <= 0.3

    def test_two_mode_is_matrix_svd(self, rng):
        """A 2-mode ST-HOSVD at rank (k, full) is a truncated matrix SVD."""
        A = rng.standard_normal((12, 30))
        X = DenseTensor(A)
        res = sthosvd(X, ranks=(4, 30))
        s = np.linalg.svd(A, compute_uv=False)
        optimal = np.sqrt(np.sum(s[4:] ** 2)) / np.linalg.norm(A)
        assert res.tucker.rel_error(X) == pytest.approx(optimal, rel=1e-8)


class TestDegenerateRankRequests:
    def test_rank_one_everywhere(self, rng):
        X = DenseTensor(rng.standard_normal((6, 7, 8)))
        res = sthosvd(X, ranks=(1, 1, 1))
        assert res.tucker.core.size == 1

    def test_full_rank_everywhere_is_exact(self, rng):
        X = DenseTensor(rng.standard_normal((5, 6, 4)))
        res = sthosvd(X, ranks=(5, 6, 4))
        assert res.tucker.rel_error(X) < 1e-12

    def test_hosvd_and_hooi_on_singletons(self, rng):
        X = DenseTensor(rng.standard_normal((4, 1, 5)))
        assert hosvd(X, tol=1e-8).tucker.rel_error(X) < 1e-8
        assert hooi(X, ranks=(2, 1, 2)).tucker.rel_error(X) < 1.0


class TestHugeToleranceAndZero:
    def test_huge_tolerance_collapses_to_rank_one(self, rng):
        # The per-mode budget is tol^2 ||X||^2 / N, so full collapse
        # needs tol >= sqrt(N) (each mode may only discard its share).
        X = DenseTensor(rng.standard_normal((6, 6, 6)))
        res = sthosvd(X, tol=2.0)
        assert res.ranks == (1, 1, 1)
        # At tol = 1 the error is still bounded by 1 but ranks are mixed.
        res1 = sthosvd(X, tol=1.0)
        assert res1.tucker.rel_error(X) <= 1.0

    def test_zero_tensor(self):
        X = DenseTensor(np.zeros((4, 5, 6)))
        res = sthosvd(X, tol=0.1)
        assert res.tucker.rel_error(X) == 0.0
        assert res.ranks == (1, 1, 1)

    def test_constant_tensor_is_rank_one(self):
        X = DenseTensor(np.full((5, 6, 7), 3.14))
        res = sthosvd(X, tol=1e-10)
        assert res.ranks == (1, 1, 1)
        assert res.tucker.rel_error(X) < 1e-10
