"""Sequential ST-HOSVD behaviour tests, including the paper's guarantees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import sthosvd
from repro.data import low_rank_tensor, tensor_with_mode_spectra, geometric_spectrum
from repro.errors import ConfigurationError
from repro.tensor import DenseTensor


@pytest.fixture(scope="module")
def lowrank():
    return low_rank_tensor((10, 12, 8, 9), (3, 4, 2, 3), rng=1, noise=1e-10)


class TestRankRecovery:
    @pytest.mark.parametrize("method", ["qr", "gram"])
    @pytest.mark.parametrize("order", ["forward", "backward"])
    def test_recovers_exact_ranks(self, lowrank, method, order):
        res = sthosvd(lowrank, tol=1e-6, method=method, mode_order=order)
        assert res.ranks == (3, 4, 2, 3)
        assert res.tucker.rel_error(lowrank) <= 1e-6

    def test_fixed_ranks(self, lowrank):
        res = sthosvd(lowrank, ranks=(2, 2, 2, 2))
        assert res.ranks == (2, 2, 2, 2)

    def test_error_guarantee_random_data(self, rng):
        """For incompressible data the tolerance must still be honoured."""
        X = DenseTensor(rng.standard_normal((8, 9, 7)))
        for tol in (0.5, 0.1):
            res = sthosvd(X, tol=tol, method="qr")
            assert res.tucker.rel_error(X) <= tol

    def test_estimated_error_close_to_actual(self, lowrank):
        res = sthosvd(lowrank, tol=1e-4, method="qr")
        actual = res.tucker.rel_error(lowrank)
        assert res.estimated_rel_error() == pytest.approx(actual, rel=0.5, abs=1e-9)

    def test_no_truncation_run(self, lowrank):
        res = sthosvd(lowrank, method="qr")
        assert res.ranks == lowrank.shape
        assert res.tucker.rel_error(lowrank) < 1e-12
        assert set(res.sigmas) == {0, 1, 2, 3}


class TestFactorProperties:
    def test_factors_orthonormal(self, lowrank):
        res = sthosvd(lowrank, tol=1e-6)
        for U in res.tucker.factors:
            np.testing.assert_allclose(U.T @ U, np.eye(U.shape[1]), atol=1e-10)

    def test_core_all_orthogonality(self, lowrank):
        """HOSVD property: core slices are mutually orthogonal per mode."""
        res = sthosvd(lowrank, tol=1e-8)
        G = res.tucker.core
        for n in range(G.ndim):
            Gn = G.unfold(n)
            GG = Gn @ Gn.T
            off = GG - np.diag(np.diag(GG))
            assert np.abs(off).max() < 1e-8 * np.abs(GG).max()

    def test_core_norm_preserved_without_truncation(self, lowrank):
        res = sthosvd(lowrank)
        assert res.tucker.core.norm() == pytest.approx(lowrank.norm(), rel=1e-10)


class TestConfiguration:
    def test_tol_and_ranks_mutually_exclusive(self, lowrank):
        with pytest.raises(ConfigurationError):
            sthosvd(lowrank, tol=0.1, ranks=(1, 1, 1, 1))

    def test_bad_method(self, lowrank):
        with pytest.raises(ConfigurationError):
            sthosvd(lowrank, tol=0.1, method="randomized")

    def test_bad_rank_count(self, lowrank):
        with pytest.raises(ConfigurationError):
            sthosvd(lowrank, ranks=(1, 1))

    def test_bad_rank_value(self, lowrank):
        with pytest.raises(ConfigurationError):
            sthosvd(lowrank, ranks=(99, 1, 1, 1))

    def test_precision_override(self, lowrank):
        res = sthosvd(lowrank, tol=1e-3, precision="single")
        assert res.tucker.core.dtype == np.float32
        assert str(res.precision) == "single"

    def test_mode_order_recorded(self, lowrank):
        res = sthosvd(lowrank, tol=1e-3, mode_order="backward")
        assert res.mode_order == (3, 2, 1, 0)

    def test_accepts_raw_array(self, rng):
        res = sthosvd(rng.standard_normal((5, 6, 4)), tol=0.5)
        assert res.tucker.ndim == 3


class TestInstrumentation:
    def test_flops_counted_by_phase(self, lowrank):
        res = sthosvd(lowrank, tol=1e-6, method="qr")
        assert res.flops.phase_total("lq") > 0
        assert res.flops.phase_total("svd") > 0
        assert res.flops.phase_total("ttm") > 0
        assert res.flops.phase_total("gram") == 0

    def test_gram_phases(self, lowrank):
        res = sthosvd(lowrank, tol=1e-6, method="gram")
        assert res.flops.phase_total("gram") > 0
        assert res.flops.phase_total("evd") > 0
        assert res.flops.phase_total("lq") == 0

    def test_qr_costs_about_twice_gram(self, rng):
        """Sec. 3.5: QR-SVD performs ~2x the flops of Gram-SVD."""
        X = DenseTensor(rng.standard_normal((20, 30, 25)))
        fq = sthosvd(X, ranks=(5, 5, 5), method="qr").flops
        fg = sthosvd(X, ranks=(5, 5, 5), method="gram").flops
        ratio = fq.phase_total("lq") / fg.phase_total("gram")
        assert 1.5 < ratio < 2.6

    def test_timer_populated(self, lowrank):
        res = sthosvd(lowrank, tol=1e-6)
        assert res.timer.total > 0


class TestPrecisionBehaviour:
    """The paper's central claims about method x precision."""

    @pytest.fixture(scope="class")
    def decaying(self):
        shape = (24, 20, 22)
        spectra = [geometric_spectrum(s, 1.0, 1e-10) for s in shape]
        return tensor_with_mode_spectra(shape, spectra, rng=3)

    def test_gram_single_fails_tight_tolerance(self, decaying):
        """At 1e-4 < sqrt(eps_s), Gram-single cannot truncate (Tab. 2)."""
        Xf = decaying.astype(np.float32)
        res = sthosvd(Xf, tol=1e-4, method="gram")
        # Essentially no compression: ranks stay near full because the
        # sub-floor singular values come out as un-discardable noise.
        assert res.tucker.compression_ratio() < 2.0
        qr = sthosvd(Xf, tol=1e-4, method="qr")
        assert qr.tucker.compression_ratio() > 5 * res.tucker.compression_ratio()

    def test_qr_single_succeeds_at_same_tolerance(self, decaying):
        Xf = decaying.astype(np.float32)
        res = sthosvd(Xf, tol=1e-4, method="qr")
        assert res.tucker.compression_ratio() > 1.5
        assert res.tucker.rel_error(decaying) <= 2e-4

    def test_all_variants_agree_at_loose_tolerance(self, decaying):
        """At 1e-2 every variant compresses identically (Tab. 2 row 1)."""
        ranks = set()
        for method in ("qr", "gram"):
            for prec in ("single", "double"):
                res = sthosvd(decaying, tol=1e-2, method=method, precision=prec)
                ranks.add(res.ranks)
                assert res.tucker.rel_error(decaying) <= 1e-2
        assert len(ranks) == 1

    def test_only_qr_double_reaches_1em8(self, decaying):
        res_qr = sthosvd(decaying, tol=1e-8, method="qr", precision="double")
        assert res_qr.tucker.rel_error(decaying) <= 1e-8
        res_gram = sthosvd(decaying, tol=1e-8, method="gram", precision="double")
        # Gram double's actual error exceeds the tolerance (noise floor).
        assert res_gram.tucker.rel_error(decaying) > 1e-9 or (
            res_gram.tucker.compression_ratio() <= res_qr.tucker.compression_ratio()
        )


@given(
    shape=st.lists(st.integers(3, 7), min_size=2, max_size=4).map(tuple),
    tol=st.sampled_from([0.5, 0.1, 0.01]),
    method=st.sampled_from(["qr", "gram"]),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=30, deadline=None)
def test_tolerance_always_honoured_property(shape, tol, method, seed):
    """In double precision with tol >> eps, the error bound always holds."""
    rng = np.random.default_rng(seed)
    X = DenseTensor(rng.standard_normal(shape))
    res = sthosvd(X, tol=tol, method=method)
    assert res.tucker.rel_error(X) <= tol * (1 + 1e-8)
