"""CLI driver tests (compress / reconstruct / info, archive round-trips)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cli import load_archive, main, save_archive
from repro.core import sthosvd
from repro.data import load_raw, save_raw, low_rank_tensor


@pytest.fixture(scope="module")
def raw_file(tmp_path_factory):
    X = low_rank_tensor((16, 14, 12), (3, 2, 4), rng=5, noise=1e-8)
    path = str(tmp_path_factory.mktemp("cli") / "data.bin")
    save_raw(X, path)
    return X, path


class TestArchive:
    def test_roundtrip(self, raw_file, tmp_path):
        X, _ = raw_file
        res = sthosvd(X, tol=1e-4)
        d = str(tmp_path / "arch")
        save_archive(res.tucker, d, extra={"method": "qr"})
        back, manifest = load_archive(d)
        assert back.ranks == res.tucker.ranks
        assert manifest["method"] == "qr"
        assert back.reconstruct().allclose(res.tucker.reconstruct(), rtol=1e-12)

    def test_manifest_contents(self, raw_file, tmp_path):
        X, _ = raw_file
        res = sthosvd(X, tol=1e-4)
        d = str(tmp_path / "arch")
        save_archive(res.tucker, d)
        with open(os.path.join(d, "manifest.json")) as f:
            m = json.load(f)
        assert m["shape"] == [16, 14, 12]
        assert m["format"].startswith("repro-tucker-archive")


class TestCompressCommand:
    def test_tol_compress_and_info(self, raw_file, tmp_path, capsys):
        X, path = raw_file
        arch = str(tmp_path / "a1")
        rc = main(["compress", path, "--shape", "16", "14", "12",
                   "--tol", "1e-4", "--out", arch])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ranks:" in out and "compression:" in out
        rc = main(["info", arch])
        assert rc == 0
        out = capsys.readouterr().out
        assert "factors orth:  True" in out

    def test_ranks_compress(self, raw_file, tmp_path, capsys):
        X, path = raw_file
        arch = str(tmp_path / "a2")
        rc = main(["compress", path, "--shape", "16", "14", "12",
                   "--ranks", "3", "2", "4", "--method", "gram", "--out", arch])
        assert rc == 0
        tucker, manifest = load_archive(arch)
        assert tuple(manifest["ranks"]) == (3, 2, 4)

    def test_out_of_core_flag(self, raw_file, tmp_path):
        X, path = raw_file
        arch = str(tmp_path / "a3")
        rc = main(["compress", path, "--shape", "16", "14", "12",
                   "--tol", "1e-4", "--out", arch, "--out-of-core"])
        assert rc == 0
        tucker, _ = load_archive(arch)
        assert tucker.rel_error(X) <= 2e-4

    def test_requires_exactly_one_of_tol_ranks(self, raw_file, tmp_path):
        _, path = raw_file
        with pytest.raises(SystemExit):
            main(["compress", path, "--shape", "16", "14", "12",
                  "--out", str(tmp_path / "x")])
        with pytest.raises(SystemExit):
            main(["compress", path, "--shape", "16", "14", "12",
                  "--tol", "1e-3", "--ranks", "1", "1", "1",
                  "--out", str(tmp_path / "x")])


class TestReconstructCommand:
    @pytest.fixture()
    def archive(self, raw_file, tmp_path):
        X, path = raw_file
        arch = str(tmp_path / "arch")
        main(["compress", path, "--shape", "16", "14", "12",
              "--tol", "1e-5", "--out", arch])
        return X, arch

    def test_full_reconstruction(self, archive, tmp_path, capsys):
        X, arch = archive
        out = str(tmp_path / "full.bin")
        rc = main(["reconstruct", arch, "--out", out])
        assert rc == 0
        back = load_raw(out)
        assert back.shape == X.shape
        err = np.linalg.norm(back.data - X.data) / X.norm()
        assert err <= 2e-5

    def test_region_reconstruction(self, archive, tmp_path):
        X, arch = archive
        out = str(tmp_path / "part.bin")
        rc = main(["reconstruct", arch, "--out", out, "--region", "0:4,:,7"])
        assert rc == 0
        back = load_raw(out)
        assert back.shape == (4, 14, 1)
        np.testing.assert_allclose(
            back.data[:, :, 0], X.data[0:4, :, 7], atol=1e-4
        )

    def test_bad_region_spec(self, archive, tmp_path):
        _, arch = archive
        with pytest.raises(SystemExit):
            main(["reconstruct", arch, "--out", str(tmp_path / "x.bin"),
                  "--region", "0:4,:"])


class TestAutoAndPrecisionFlags:
    def test_auto_selects_variant(self, raw_file, tmp_path, capsys):
        _, path = raw_file
        arch = str(tmp_path / "auto")
        rc = main(["compress", path, "--shape", "16", "14", "12",
                   "--tol", "1e-4", "--auto", "--out", arch])
        assert rc == 0
        out = capsys.readouterr().out
        assert "auto-selected: qr-single" in out
        _, manifest = load_archive(arch)
        assert manifest["method"] == "qr"
        assert manifest["precision"] == "single"

    def test_auto_requires_tol(self, raw_file, tmp_path):
        _, path = raw_file
        with pytest.raises(SystemExit):
            main(["compress", path, "--shape", "16", "14", "12",
                  "--ranks", "2", "2", "2", "--auto",
                  "--out", str(tmp_path / "x")])

    def test_single_pipeline_on_double_file(self, raw_file, tmp_path):
        X, path = raw_file
        arch = str(tmp_path / "sp")
        rc = main(["compress", path, "--shape", "16", "14", "12",
                   "--tol", "1e-3", "--precision", "single",
                   "--method", "qr", "--out", arch, "--out-of-core"])
        assert rc == 0
        tucker, manifest = load_archive(arch)
        assert manifest["dtype"] == "float32"
        assert tucker.astype("double").rel_error(
            X.astype("single").astype("double")) <= 2e-3

    def test_checkpointed_ooc_compress(self, raw_file, tmp_path):
        _, path = raw_file
        arch = str(tmp_path / "ck")
        rc = main(["compress", path, "--shape", "16", "14", "12",
                   "--tol", "1e-4", "--out", arch, "--out-of-core",
                   "--checkpoint-dir", str(tmp_path / "ckdir")])
        assert rc == 0


class TestSimulateAndTuneCommands:
    def test_simulate_prints_breakdown(self, capsys):
        rc = main(["simulate", "--shape", "64", "64", "64", "64",
                   "--ranks", "8", "8", "8", "8", "--grid", "2", "2", "1", "1",
                   "--method", "qr"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "modeled time" in out
        assert "GFLOPS/core" in out
        assert "LQ" in out and "TTM" in out

    def test_simulate_gram_shows_gram_phase(self, capsys):
        rc = main(["simulate", "--shape", "64", "64", "64",
                   "--ranks", "8", "8", "8", "--grid", "2", "2", "1",
                   "--method", "gram", "--precision", "single"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Gram" in out

    def test_tune_lists_configs(self, capsys):
        rc = main(["tune", "--shape", "64", "64", "64", "64",
                   "--ranks", "8", "8", "8", "8", "--procs", "16",
                   "--top", "4"])
        assert rc == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 5  # header + 4 configs
        assert "ordering" in lines[0]

    def test_tune_with_memory_limit(self, capsys):
        rc = main(["tune", "--shape", "64", "64", "64", "64",
                   "--ranks", "8", "8", "8", "8", "--procs", "8",
                   "--memory-limit-gib", "4", "--top", "2"])
        assert rc == 0


class TestRecompressCommand:
    def test_recompress_archive(self, raw_file, tmp_path, capsys):
        X, path = raw_file
        arch = str(tmp_path / "master")
        main(["compress", path, "--shape", "16", "14", "12",
              "--tol", "1e-6", "--out", arch])
        capsys.readouterr()
        out_arch = str(tmp_path / "loose")
        rc = main(["recompress", arch, "--tol", "1e-2", "--out", out_arch])
        assert rc == 0
        out = capsys.readouterr().out
        assert "error bound" in out
        tucker, manifest = load_archive(out_arch)
        assert "recompressed_from" in manifest
        assert all(a <= b for a, b in zip(
            tucker.ranks, load_archive(arch)[0].ranks))
        assert tucker.rel_error(X) <= 1.1 * manifest["estimated_rel_error"] + 1e-2

    def test_recompress_requires_tol_or_ranks(self, raw_file, tmp_path):
        X, path = raw_file
        arch = str(tmp_path / "m2")
        main(["compress", path, "--shape", "16", "14", "12",
              "--tol", "1e-5", "--out", arch])
        with pytest.raises(SystemExit):
            main(["recompress", arch, "--out", str(tmp_path / "x")])


class TestTraceCommand:
    def test_trace_writes_all_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "traceout")
        rc = main(["trace", "--shape", "16", "16", "16",
                   "--grid", "2", "2", "1", "--tol", "1e-4",
                   "--out", out_dir])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "critical path" in printed
        for name in ("trace.json", "phases.txt", "imbalance.txt",
                     "comm.txt", "metrics.txt", "model_diff.txt"):
            assert os.path.exists(os.path.join(out_dir, name)), name

        with open(os.path.join(out_dir, "trace.json")) as f:
            doc = json.load(f)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in xs} == {0, 1, 2, 3}
        names = {e["name"] for e in xs}
        for required in ("redistribute", "lq", "svd", "ttm"):
            assert required in names
        assert any(n.startswith("comm.") for n in names)

    def test_trace_requires_exactly_one_of_tol_ranks(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--shape", "8", "8", "8",
                  "--grid", "2", "1", "1",
                  "--out", str(tmp_path / "x")])
        with pytest.raises(SystemExit):
            main(["trace", "--shape", "8", "8", "8",
                  "--grid", "2", "1", "1", "--tol", "1e-4",
                  "--ranks", "2", "2", "2",
                  "--out", str(tmp_path / "y")])


class TestSanitizedTraceCommand:
    def test_trace_sanitize_reports_clean(self, tmp_path, capsys):
        rc = main(["trace", "--shape", "12", "12", "12",
                   "--grid", "2", "1", "1", "--tol", "1e-4",
                   "--out", str(tmp_path / "san"), "--sanitize"])
        assert rc == 0
        assert "sanitizer:     clean" in capsys.readouterr().out

    def test_trace_without_sanitize_says_nothing(self, tmp_path, capsys):
        rc = main(["trace", "--shape", "12", "12", "12",
                   "--grid", "2", "1", "1", "--tol", "1e-4",
                   "--out", str(tmp_path / "plain")])
        assert rc == 0
        assert "sanitizer" not in capsys.readouterr().out


class TestChaosCommand:
    def test_small_matrix_all_ok(self, capsys):
        rc = main(["chaos", "--shape", "8", "6", "4", "--procs", "2",
                   "--ranks", "3", "2", "2", "--replays", "1"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "chaos matrix" in printed
        assert "all scenarios ok" in printed
        assert "FAIL" not in printed
        # One crash scenario per rank plus drop / kernel-nan / crash+drop.
        for name in ("crash-rank0", "crash-rank1", "drop-1pct",
                     "kernel-nan", "crash+drop"):
            assert name in printed

    def test_requires_exactly_one_of_tol_ranks(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--shape", "8", "6", "4", "--procs", "2"])
        with pytest.raises(SystemExit):
            main(["chaos", "--shape", "8", "6", "4", "--procs", "2",
                  "--tol", "1e-4", "--ranks", "3", "2", "2"])


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def f(comm):\n    return comm.allreduce(1)\n")
        rc = main(["lint", "--strict", str(tmp_path)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_strict_fails_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n"
            "def f(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.bcast(1, root=0)\n"
            "    return np.linalg.svd(np.eye(2))\n"
        )
        rc = main(["lint", "--strict", str(bad)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "rank-divergent-collective" in out
        assert "raw-lapack" in out
        assert "bad.py:4" in out

    def test_non_strict_reports_but_passes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nu = np.linalg.svd(A)\n")
        rc = main(["lint", str(bad)])
        assert rc == 0
        assert "raw-lapack" in capsys.readouterr().out

    def test_rule_subset_flag(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nu = np.linalg.svd(A)\n")
        # Paths go before --rules: the greedy nargs would swallow them.
        assert main(["lint", "--strict", str(bad),
                     "--rules", "tag-mismatch"]) == 0
        assert main(["lint", "--strict", str(bad),
                     "--rules", "raw-lapack"]) == 1
