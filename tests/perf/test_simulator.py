"""Modeled ST-HOSVD tests: the paper's qualitative performance claims."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf import (
    ANDES,
    CASCADE_LAKE,
    simulate_sthosvd,
    strong_scaling_grid,
    weak_scaling_config,
)


def _variants(shape, ranks, cores):
    out = {}
    for method in ("qr", "gram"):
        grid = strong_scaling_grid(cores, method)
        order = "backward" if method == "qr" else "forward"
        for prec in ("single", "double"):
            run = simulate_sthosvd(
                shape, ranks, grid, method=method, precision=prec,
                mode_order=order, machine=ANDES,
            )
            out[(method, prec)] = run
    return out


class TestBasics:
    def test_phase_breakdown_present(self):
        run = simulate_sthosvd(
            (64,) * 4, (8,) * 4, (2, 2, 1, 1), method="qr", machine=ANDES
        )
        phases = run.seconds_by_phase()
        assert phases["lq"] > 0 and phases["svd"] > 0 and phases["ttm"] > 0
        assert run.total_seconds == pytest.approx(sum(phases.values()))

    def test_gram_phases(self):
        run = simulate_sthosvd(
            (64,) * 4, (8,) * 4, (2, 2, 1, 1), method="gram", machine=ANDES
        )
        phases = run.seconds_by_phase()
        assert phases["gram"] > 0 and phases["evd"] > 0
        assert "lq" not in phases

    def test_mode_attribution_sums(self):
        run = simulate_sthosvd(
            (64,) * 3, (8,) * 3, (2, 2, 1), method="qr", machine=ANDES
        )
        assert sum(run.seconds_by_mode().values()) == pytest.approx(run.total_seconds)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_sthosvd((8, 8), (9, 1), (1, 1), machine=ANDES)
        with pytest.raises(ConfigurationError):
            simulate_sthosvd((8, 8), (1, 1), (1,), machine=ANDES)
        with pytest.raises(ConfigurationError):
            simulate_sthosvd((8, 8), (1, 1), (1, 1), method="magic", machine=ANDES)


class TestPaperClaims:
    def test_variant_time_ordering(self):
        """Figs. 3-4: Gram-single < QR-single < Gram-double < QR-double."""
        runs = _variants((256,) * 4, (32,) * 4, 512)
        t = {k: v.total_seconds for k, v in runs.items()}
        assert t[("gram", "single")] < t[("qr", "single")]
        assert t[("qr", "single")] < t[("gram", "double")]
        assert t[("gram", "double")] < t[("qr", "double")]

    def test_single_half_of_double(self):
        runs = _variants((256,) * 4, (32,) * 4, 256)
        for method in ("qr", "gram"):
            ratio = (
                runs[(method, "double")].total_seconds
                / runs[(method, "single")].total_seconds
            )
            assert 1.7 < ratio <= 2.05

    def test_qr_single_beats_gram_double_30pct(self):
        """Sec. 4.4: QR-single ~30% faster than TuckerMPI (Gram double)."""
        runs = _variants((256,) * 4, (32,) * 4, 512)
        speedup = (
            runs[("gram", "double")].total_seconds
            / runs[("qr", "single")].total_seconds
        )
        assert 1.15 < speedup < 2.2

    def test_qr_at_most_2x_gram_same_precision(self):
        """Sec. 3.5: no more than ~2x slowdown from QR at small P."""
        runs = _variants((256,) * 4, (32,) * 4, 32)
        ratio = (
            runs[("qr", "double")].total_seconds
            / runs[("gram", "double")].total_seconds
        )
        assert ratio < 2.3

    def test_strong_scaling_monotone(self):
        """Fig. 4: all variants keep speeding up through 2048 cores."""
        for method in ("qr", "gram"):
            prev = None
            for cores in (32, 64, 128, 256, 512, 1024, 2048):
                grid = strong_scaling_grid(cores, method)
                run = simulate_sthosvd(
                    (256,) * 4, (32,) * 4, grid, method=method,
                    mode_order="backward" if method == "qr" else "forward",
                    machine=ANDES,
                )
                if prev is not None:
                    assert run.total_seconds < prev
                prev = run.total_seconds

    def test_weak_scaling_gflops_match_paper(self):
        """Fig. 3a: QR-SVD ~6.4 GFLOPS/core double and ~13 single on one
        node, degrading moderately at scale."""
        cfg1 = weak_scaling_config(1)
        r64 = simulate_sthosvd(
            cfg1["shape"], cfg1["ranks"], cfg1["qr_grid"], method="qr",
            precision="double", mode_order="backward", machine=ANDES,
        )
        r32 = simulate_sthosvd(
            cfg1["shape"], cfg1["ranks"], cfg1["qr_grid"], method="qr",
            precision="single", mode_order="backward", machine=ANDES,
        )
        assert r64.gflops_per_core() == pytest.approx(6.4, rel=0.15)
        assert r32.gflops_per_core() == pytest.approx(13.0, rel=0.15)
        cfg3 = weak_scaling_config(3)
        r64_3 = simulate_sthosvd(
            cfg3["shape"], cfg3["ranks"], cfg3["qr_grid"], method="qr",
            precision="double", mode_order="backward", machine=ANDES,
        )
        assert 2.5 < r64_3.gflops_per_core() < r64.gflops_per_core()

    def test_first_mode_dominates(self):
        """Sec. 4.3: more than half the time goes to the first LQ/Gram."""
        cfg = weak_scaling_config(1)
        run = simulate_sthosvd(
            cfg["shape"], cfg["ranks"], cfg["qr_grid"], method="qr",
            precision="double", mode_order="backward", machine=ANDES,
        )
        first_mode = run.mode_order[0]
        t_first_lq = run.seconds_by_phase_mode[("lq", first_mode)]
        assert t_first_lq > 0.5 * run.total_seconds

    def test_cascade_lake_ordering_effect(self):
        """Fig. 2a: backward ordering + P_last=1 beats forward + P_0=1
        on Cascade Lake because of the geqr/gelq asymmetry."""
        shape, ranks = (300,) * 4, (30,) * 4
        backward = simulate_sthosvd(
            shape, ranks, (8, 2, 1, 1), method="qr", mode_order="backward",
            machine=CASCADE_LAKE,
        )
        forward = simulate_sthosvd(
            shape, ranks, (1, 1, 2, 8), method="qr", mode_order="forward",
            machine=CASCADE_LAKE,
        )
        assert backward.total_seconds < forward.total_seconds

    def test_andes_ordering_indifferent(self):
        """On Andes geqr == gelq, so the orderings are nearly symmetric."""
        shape, ranks = (300,) * 4, (30,) * 4
        backward = simulate_sthosvd(
            shape, ranks, (8, 2, 1, 1), method="qr", mode_order="backward",
            machine=ANDES,
        )
        forward = simulate_sthosvd(
            shape, ranks, (1, 1, 2, 8), method="qr", mode_order="forward",
            machine=ANDES,
        )
        assert backward.total_seconds == pytest.approx(
            forward.total_seconds, rel=0.25
        )

    def test_flops_qr_vs_gram(self):
        """Weak scaling text: QR performs ~83% more flops than Gram."""
        cfg = weak_scaling_config(2)
        rq = simulate_sthosvd(
            cfg["shape"], cfg["ranks"], cfg["qr_grid"], method="qr",
            mode_order="backward", machine=ANDES,
        )
        rg = simulate_sthosvd(
            cfg["shape"], cfg["ranks"], cfg["gram_grid"], method="gram",
            mode_order="forward", machine=ANDES,
        )
        ratio = rq.flops_total / rg.flops_total
        assert 1.5 < ratio < 2.1


class TestExporters:
    def test_to_dict_roundtrips_json(self):
        import json

        run = simulate_sthosvd(
            (32,) * 3, (4,) * 3, (2, 2, 1), method="qr", machine=ANDES
        )
        d = json.loads(json.dumps(run.to_dict()))
        assert d["nprocs"] == 4
        assert d["total_seconds"] == pytest.approx(run.total_seconds)
        assert "lq" in d["seconds_by_phase"]
        assert any(k.startswith("lq:") for k in d["seconds_by_phase_mode"])

    def test_to_csv_row_fields(self):
        run = simulate_sthosvd(
            (32,) * 3, (4,) * 3, (2, 2, 1), method="gram",
            precision="single", machine=ANDES,
        )
        parts = run.to_csv_row().split(";")
        assert parts[0] == "2x2x1"
        assert parts[2] == "gram"
        assert parts[3] == "float32"
        assert int(parts[4]) == 4
