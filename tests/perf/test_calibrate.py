"""Machine-model calibration tests (timing-based: assertions stay loose)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf import (
    calibrate_machine,
    measure_kernel_rates,
    simulate_sthosvd,
    tune_grid,
)
from repro.perf.machine import KERNELS


class TestMeasurement:
    @pytest.fixture(scope="class")
    def rates(self):
        return measure_kernel_rates(size=128, rng=0)

    def test_all_kernels_both_precisions(self, rates):
        seen = {(m.kernel, m.dtype) for m in rates}
        for k in KERNELS:
            assert (k, "float64") in seen
            assert (k, "float32") in seen

    def test_rates_positive_and_sane(self, rates):
        for m in rates:
            assert m.gflops > 0
            assert m.seconds > 0
            assert m.gflops < 1e4  # < 10 TFLOPS on one host: sanity

    def test_gemm_is_fastest_family(self, rates):
        by = {(m.kernel, m.dtype): m.gflops for m in rates}
        assert by[("gemm", "float64")] >= by[("svd", "float64")]
        assert by[("gemm", "float64")] >= by[("tpqrt", "float64")]


class TestCalibratedModel:
    @pytest.fixture(scope="class")
    def machine(self):
        return calibrate_machine("test-host", size=128, rng=1)

    def test_structure(self, machine):
        assert machine.name == "test-host"
        assert machine.peak_single == pytest.approx(2 * machine.peak_double)
        for k in KERNELS:
            assert 0 < machine.efficiency[k] <= 1.0

    def test_usable_by_simulator(self, machine):
        run = simulate_sthosvd(
            (32,) * 3, (4,) * 3, (2, 2, 1), method="qr", machine=machine
        )
        assert run.total_seconds > 0
        assert run.machine == "test-host"

    def test_usable_by_tuner(self, machine):
        best = tune_grid((32,) * 3, (4,) * 3, 4, method="gram", machine=machine)
        assert best[0].seconds > 0

    def test_single_precision_modeled_faster(self, machine):
        t64 = simulate_sthosvd(
            (48,) * 3, (6,) * 3, (1, 1, 1), method="qr",
            precision="double", machine=machine,
        ).total_seconds
        t32 = simulate_sthosvd(
            (48,) * 3, (6,) * 3, (1, 1, 1), method="qr",
            precision="single", machine=machine,
        ).total_seconds
        assert t32 < t64
