"""Grid-configuration helper tests."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.perf import STRONG_SCALING_GRIDS, strong_scaling_grid, weak_scaling_config


class TestStrongScalingGrids:
    def test_grids_multiply_to_cores(self):
        for cores, by_method in STRONG_SCALING_GRIDS.items():
            for method, grid in by_method.items():
                assert math.prod(grid) == cores, (cores, method)

    def test_qr_grids_backloaded(self):
        """QR grids put P=1 in the last mode (Table 1) so geqr applies."""
        for cores in STRONG_SCALING_GRIDS:
            assert strong_scaling_grid(cores, "qr")[-1] == 1

    def test_gram_grids_frontloaded(self):
        for cores in STRONG_SCALING_GRIDS:
            assert strong_scaling_grid(cores, "gram")[0] == 1

    def test_unknown_cores(self):
        with pytest.raises(ConfigurationError):
            strong_scaling_grid(96, "qr")

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            strong_scaling_grid(32, "svd")


class TestWeakScaling:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_grid_sizes(self, k):
        cfg = weak_scaling_config(k)
        assert math.prod(cfg["qr_grid"]) == cfg["cores"]
        assert math.prod(cfg["gram_grid"]) == cfg["cores"]
        assert cfg["cores"] == 32 * cfg["nodes"]

    def test_local_data_constant(self):
        """The local tensor stays ~1 GB as k grows (weak scaling)."""
        sizes = []
        for k in (1, 2, 3):
            cfg = weak_scaling_config(k)
            total = math.prod(cfg["shape"])
            sizes.append(total / cfg["cores"])
        assert sizes[0] == pytest.approx(sizes[1], rel=1e-12)
        assert sizes[1] == pytest.approx(sizes[2], rel=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            weak_scaling_config(0)
