"""Machine-model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf import ANDES, CASCADE_LAKE, MachineModel


class TestMachineModel:
    def test_peak_by_precision(self):
        assert ANDES.peak(np.float64) == pytest.approx(48e9)
        assert ANDES.peak(np.float32) == pytest.approx(96e9)

    def test_single_rate_doubles(self):
        for kernel in ("geqr", "syrk", "gemm"):
            assert ANDES.rate(kernel, np.float32) == pytest.approx(
                2 * ANDES.rate(kernel, np.float64)
            )

    def test_kernel_time(self):
        t = ANDES.kernel_time("geqr", 6.48e9, np.float64)
        assert t == pytest.approx(1.0)  # 0.135 * 48e9 = 6.48e9 flops/s

    def test_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            ANDES.rate("fft", np.float64)
        with pytest.raises(ConfigurationError):
            MachineModel("x", 1, 1e9, 2e9, efficiency={"warp": 0.5})

    def test_unknown_dtype(self):
        with pytest.raises(ConfigurationError):
            ANDES.peak(np.int64)


class TestCalibration:
    def test_andes_qr_gflops_match_paper(self):
        """Paper: QR-SVD gets 6.4 GFLOPS/core double, 13 single on 1 node."""
        assert ANDES.rate("geqr", np.float64) == pytest.approx(6.48e9, rel=0.05)
        assert ANDES.rate("geqr", np.float32) == pytest.approx(12.96e9, rel=0.05)

    def test_andes_symmetric_qr_lq(self):
        """Sec. 4.2.1: geqr ~ gelq on Andes."""
        assert ANDES.rate("geqr", np.float64) == ANDES.rate("gelq", np.float64)

    def test_cascade_lake_gelq_penalty(self):
        """Sec. 4.2.1: gelq markedly slower than geqr on Cascade Lake."""
        assert CASCADE_LAKE.rate("gelq", np.float64) < 0.6 * CASCADE_LAKE.rate(
            "geqr", np.float64
        )
