"""Unit tests for the collective-algorithm cost formulas."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.mpi.costmodel import CommCosts
from repro.perf.collectives import (
    cost_allgather_ring,
    cost_allreduce_recursive_doubling,
    cost_allreduce_ring,
    cost_allreduce_tree,
    cost_alltoall_pairwise,
    cost_bcast_binomial,
    cost_bcast_scatter_allgather,
    cost_reduce_scatter_ring,
)

COMM = CommCosts(alpha=1e-6, beta=1e-9)


class TestFormulas:
    def test_single_rank_is_free(self):
        for fn in (cost_bcast_binomial, cost_allreduce_tree,
                   cost_allreduce_recursive_doubling, cost_allreduce_ring,
                   cost_allgather_ring, cost_alltoall_pairwise,
                   cost_reduce_scatter_ring, cost_bcast_scatter_allgather):
            assert fn(1, 1000, COMM) == 0.0

    def test_bcast_binomial_value(self):
        # 3 rounds of (alpha + beta * 1000) at P=8
        expected = 3 * (1e-6 + 1e-6)
        assert cost_bcast_binomial(8, 1000, COMM) == pytest.approx(expected)

    def test_tree_allreduce_twice_recursive_doubling(self):
        for p in (4, 16, 64):
            assert cost_allreduce_tree(p, 5000, COMM) == pytest.approx(
                2 * cost_allreduce_recursive_doubling(p, 5000, COMM)
            )

    def test_ring_bandwidth_term_bounded_by_payload(self):
        # Ring allreduce moves 2*(P-1)/P of the payload: < 2 payloads.
        p, nbytes = 64, 10**8
        t = cost_allreduce_ring(p, nbytes, COMM)
        assert t < 2 * COMM.beta * nbytes + 2 * p * COMM.alpha
        assert t > 1.9 * COMM.beta * nbytes  # close to the bound at large P

    def test_long_message_crossover(self):
        """Ring beats recursive doubling for long payloads at large P."""
        p = 256
        small, big = 256, 1 << 26
        assert cost_allreduce_recursive_doubling(p, small, COMM) < \
            cost_allreduce_ring(p, small, COMM)
        assert cost_allreduce_ring(p, big, COMM) < \
            cost_allreduce_recursive_doubling(p, big, COMM)

    def test_alltoall_matches_paper_model(self):
        """(P_n - 1) messages of local/P_n each — eq. (10)'s redistribution."""
        p, local = 8, 10**6
        t = cost_alltoall_pairwise(p, local, COMM)
        expected = (p - 1) * (COMM.alpha + COMM.beta * local / p)
        assert t == pytest.approx(expected)

    def test_reduce_scatter_equals_alltoall_shape(self):
        p, total = 16, 4096
        assert cost_reduce_scatter_ring(p, total, COMM) == pytest.approx(
            cost_alltoall_pairwise(p, total, COMM)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cost_bcast_binomial(0, 10, COMM)
        with pytest.raises(ConfigurationError):
            cost_allgather_ring(2, -1, COMM)


class TestApiDocsGenerator:
    def test_document_package_produces_entries(self):
        import sys, os

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "tools"))
        try:
            from gen_api_docs import document_package, first_paragraph
        finally:
            sys.path.pop(0)
        lines = document_package("repro.perf")
        entries = [l for l in lines if l.startswith("- ")]
        assert any("simulate_sthosvd" in l for l in entries)
        assert any("tune_grid" in l for l in entries)
        import repro.perf

        assert first_paragraph(repro.perf.simulate_sthosvd).startswith("Model")
