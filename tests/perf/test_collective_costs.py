"""Unit tests for the collective-algorithm cost formulas."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.mpi.costmodel import CommCosts
from repro.mpi.tuning import CollectiveTuning
from repro.perf.collectives import (
    cost_allgather_bruck,
    cost_allgather_gather_bcast,
    cost_allgather_ring,
    cost_allreduce_recursive_doubling,
    cost_allreduce_ring,
    cost_allreduce_tree,
    cost_alltoall_pairwise,
    cost_bcast_binomial,
    cost_bcast_scatter_allgather,
    cost_reduce_scatter_ring,
    dispatched_allgather_cost,
    dispatched_allreduce_cost,
    dispatched_bcast_cost,
    dispatched_reduce_scatter_cost,
)

COMM = CommCosts(alpha=1e-6, beta=1e-9)


class TestFormulas:
    def test_single_rank_is_free(self):
        for fn in (cost_bcast_binomial, cost_allreduce_tree,
                   cost_allreduce_recursive_doubling, cost_allreduce_ring,
                   cost_allgather_ring, cost_alltoall_pairwise,
                   cost_reduce_scatter_ring, cost_bcast_scatter_allgather):
            assert fn(1, 1000, COMM) == 0.0

    def test_bcast_binomial_value(self):
        # 3 rounds of (alpha + beta * 1000) at P=8
        expected = 3 * (1e-6 + 1e-6)
        assert cost_bcast_binomial(8, 1000, COMM) == pytest.approx(expected)

    def test_tree_allreduce_twice_recursive_doubling(self):
        for p in (4, 16, 64):
            assert cost_allreduce_tree(p, 5000, COMM) == pytest.approx(
                2 * cost_allreduce_recursive_doubling(p, 5000, COMM)
            )

    def test_ring_bandwidth_term_bounded_by_payload(self):
        # Ring allreduce moves 2*(P-1)/P of the payload: < 2 payloads.
        p, nbytes = 64, 10**8
        t = cost_allreduce_ring(p, nbytes, COMM)
        assert t < 2 * COMM.beta * nbytes + 2 * p * COMM.alpha
        assert t > 1.9 * COMM.beta * nbytes  # close to the bound at large P

    def test_long_message_crossover(self):
        """Ring beats recursive doubling for long payloads at large P."""
        p = 256
        small, big = 256, 1 << 26
        assert cost_allreduce_recursive_doubling(p, small, COMM) < \
            cost_allreduce_ring(p, small, COMM)
        assert cost_allreduce_ring(p, big, COMM) < \
            cost_allreduce_recursive_doubling(p, big, COMM)

    def test_alltoall_matches_paper_model(self):
        """(P_n - 1) messages of local/P_n each — eq. (10)'s redistribution."""
        p, local = 8, 10**6
        t = cost_alltoall_pairwise(p, local, COMM)
        expected = (p - 1) * (COMM.alpha + COMM.beta * local / p)
        assert t == pytest.approx(expected)

    def test_reduce_scatter_equals_alltoall_shape(self):
        p, total = 16, 4096
        assert cost_reduce_scatter_ring(p, total, COMM) == pytest.approx(
            cost_alltoall_pairwise(p, total, COMM)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cost_bcast_binomial(0, 10, COMM)
        with pytest.raises(ConfigurationError):
            cost_allgather_ring(2, -1, COMM)

    def test_bruck_latency_beats_ring_at_scale(self):
        """Bruck pays ceil(log2 P) alphas vs the ring's P-1."""
        p, slot = 64, 64
        assert cost_allgather_bruck(p, slot, COMM) < \
            cost_allgather_ring(p, slot, COMM)
        # Same total volume: bandwidth terms match.
        bw = COMM.beta * slot * (p - 1)
        assert cost_allgather_bruck(p, slot, COMM) == pytest.approx(
            math.ceil(math.log2(p)) * COMM.alpha + bw
        )

    def test_gather_bcast_is_the_worst_allgather(self):
        """The retired root-funnel schedule loses to both balanced ones."""
        for p in (8, 16, 64):
            for slot in (64, 1 << 16):
                legacy = cost_allgather_gather_bcast(p, slot, COMM)
                assert legacy > cost_allgather_ring(p, slot, COMM)
                assert legacy > cost_allgather_bruck(p, slot, COMM)


class TestDispatchedCosts:
    """The dispatched_* helpers price exactly what the engine selects."""

    def test_allreduce_tracks_best_regime(self):
        tuning = CollectiveTuning()
        for p in (4, 16, 64):
            for nbytes in (256, 1 << 14, 1 << 22, 1 << 26):
                d = dispatched_allreduce_cost(p, nbytes, COMM, tuning)
                rd = cost_allreduce_recursive_doubling(p, nbytes, COMM)
                ring = cost_allreduce_ring(p, nbytes, COMM)
                assert d in (pytest.approx(rd), pytest.approx(ring))
                # Near the crossover the selection may be the slightly
                # worse of the two, but never by more than 2x.
                assert d <= 2.0 * min(rd, ring), (p, nbytes)

    def test_dispatched_never_worse_than_both_fixed(self):
        """In each regime the dispatched cost equals one of the fixed
        algorithms and is within a small factor of the better one."""
        tuning = CollectiveTuning()
        for p in (4, 16, 64, 256):
            for nbytes in (128, 1 << 12, 1 << 20, 1 << 27):
                d = dispatched_bcast_cost(p, nbytes, COMM, tuning)
                binom = cost_bcast_binomial(p, nbytes, COMM)
                sa = cost_bcast_scatter_allgather(p, nbytes, COMM)
                assert d in (pytest.approx(binom), pytest.approx(sa))
                assert d <= 1.5 * min(binom, sa), (p, nbytes)

    def test_reduce_scatter_and_allgather_dispatch(self):
        tuning = CollectiveTuning()
        assert dispatched_reduce_scatter_cost(8, 1 << 20, COMM, tuning) == \
            pytest.approx(cost_reduce_scatter_ring(8, 1 << 20, COMM))
        assert dispatched_allgather_cost(4, 4096, COMM, tuning) == \
            pytest.approx(cost_allgather_ring(4, 4096, COMM))
        assert dispatched_allgather_cost(16, 4096, COMM, tuning) == \
            pytest.approx(cost_allgather_bruck(16, 4096, COMM))

    def test_tuning_override_changes_selection(self):
        eager_ring = CollectiveTuning(allreduce_ring_min_bytes=0)
        assert dispatched_allreduce_cost(8, 64, COMM, eager_ring) == \
            pytest.approx(cost_allreduce_ring(8, 64, COMM))


class TestApiDocsGenerator:
    def test_document_package_produces_entries(self):
        import sys, os

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "tools"))
        try:
            from gen_api_docs import document_package, first_paragraph
        finally:
            sys.path.pop(0)
        lines = document_package("repro.perf")
        entries = [l for l in lines if l.startswith("- ")]
        assert any("simulate_sthosvd" in l for l in entries)
        assert any("tune_grid" in l for l in entries)
        import repro.perf

        assert first_paragraph(repro.perf.simulate_sthosvd).startswith("Model")
