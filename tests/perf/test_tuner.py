"""Grid tuner tests: it must rediscover the paper's hand-tuning rules."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.perf import (
    ANDES,
    CASCADE_LAKE,
    enumerate_grids,
    strong_scaling_grid,
    simulate_sthosvd,
    tune_grid,
)


class TestEnumeration:
    def test_all_factorizations_multiply_to_p(self):
        grids = enumerate_grids(24, (100, 100, 100))
        assert all(math.prod(g) == 24 for g in grids)
        assert len(set(grids)) == len(grids)

    def test_respects_shape_bounds(self):
        grids = enumerate_grids(16, (2, 100, 100))
        assert all(g[0] <= 2 for g in grids)

    def test_infeasible_raises(self):
        with pytest.raises(ConfigurationError):
            enumerate_grids(64, (2, 2, 2))

    def test_max_grids_caps(self):
        grids = enumerate_grids(64, (100,) * 4, max_grids=5)
        assert len(grids) == 5


class TestTuning:
    def test_recovers_cascade_lake_rule(self):
        """Sec. 4.2.4: on Cascade Lake the winner is backward ordering
        with the last mode's grid dimension 1 (geqr > gelq)."""
        best = tune_grid((300,) * 4, (30,) * 4, 16, method="qr",
                         machine=CASCADE_LAKE)[0]
        assert best.mode_order == "backward"
        assert best.grid[-1] == 1

    def test_beats_or_matches_table1(self):
        """The exhaustive search can only improve on the hand-picked grid."""
        for cores in (32, 512):
            table1 = simulate_sthosvd(
                (256,) * 4, (32,) * 4, strong_scaling_grid(cores, "qr"),
                method="qr", mode_order="backward", machine=ANDES,
            )
            best = tune_grid((256,) * 4, (32,) * 4, cores, method="qr",
                             machine=ANDES)[0]
            assert best.seconds <= table1.total_seconds * 1.0001

    def test_first_processed_mode_gets_small_grid_dim(self):
        """Sec. 4.2.2's rule of thumb emerges from the search."""
        best = tune_grid((200,) * 4, (20,) * 4, 64, method="qr", machine=ANDES)[0]
        first_mode = 0 if best.mode_order == "forward" else 3
        assert best.grid[first_mode] <= 2

    def test_top_k_sorted(self):
        out = tune_grid((128,) * 3, (16,) * 3, 8, method="gram",
                        machine=ANDES, top_k=5)
        times = [c.seconds for c in out]
        assert times == sorted(times)
        assert len(out) == 5

    def test_memory_limit_filters(self):
        # With a laughably small limit nothing fits.
        with pytest.raises(ConfigurationError):
            tune_grid((256,) * 4, (32,) * 4, 32, method="qr",
                      machine=ANDES, memory_limit_bytes=1024.0)
        # With a sane limit, every returned config obeys it.
        limit = 4 * 2**30
        out = tune_grid((256,) * 4, (32,) * 4, 32, method="qr",
                        machine=ANDES, memory_limit_bytes=limit, top_k=3)
        assert all(c.peak_bytes <= limit for c in out)

    def test_gram_and_qr_prefer_different_grids_on_cl(self):
        """The geqr/gelq asymmetry only matters to the QR method."""
        qr = tune_grid((300,) * 4, (30,) * 4, 16, method="qr",
                       machine=CASCADE_LAKE)[0]
        gram = tune_grid((300,) * 4, (30,) * 4, 16, method="gram",
                         machine=CASCADE_LAKE)[0]
        # QR's winner is strictly pinned to P_last=1/backward; Gram is
        # indifferent to the transpose question, so its best time beats
        # or equals QR's.
        assert gram.seconds <= qr.seconds
