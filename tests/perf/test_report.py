"""Report-formatting tests."""

from __future__ import annotations

import numpy as np

from repro.perf import (
    ANDES,
    breakdown_table,
    scaling_table,
    simulate_sthosvd,
    variant_label,
)


class TestVariantLabel:
    def test_labels(self):
        assert variant_label("qr", "single") == "QR single"
        assert variant_label("gram", np.float64) == "Gram double"
        assert variant_label("qr", np.dtype(np.float32)) == "QR single"


class TestBreakdownTable:
    def test_contains_all_components(self):
        run = simulate_sthosvd(
            (32,) * 3, (4,) * 3, (2, 2, 1), method="qr", machine=ANDES
        )
        txt = breakdown_table({"QR double": run}, title="demo")
        assert "demo" in txt
        assert "LQ (mode 0)" in txt
        assert "TTM (mode 2)" in txt
        assert "TOTAL" in txt

    def test_multiple_columns(self):
        runs = {}
        for prec in ("single", "double"):
            runs[f"QR {prec}"] = simulate_sthosvd(
                (32,) * 3, (4,) * 3, (2, 2, 1), method="qr", precision=prec,
                machine=ANDES,
            )
        txt = breakdown_table(runs)
        assert "QR single" in txt and "QR double" in txt


class TestScalingTable:
    def test_rows_sorted_by_x(self):
        txt = scaling_table(
            {"a": [(64, 1.0), (32, 2.0)], "b": [(32, 3.0), (64, 1.5)]},
            xlabel="cores",
        )
        lines = txt.splitlines()
        assert lines[0].startswith("cores")
        first_data = lines[2].split("|")[0]
        assert "32" in first_data

    def test_missing_points_are_nan(self):
        txt = scaling_table({"a": [(1, 1.0)], "b": [(2, 2.0)]})
        assert "nan" in txt
