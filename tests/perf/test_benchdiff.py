"""Benchmark snapshot comparison: classification, bands, exit semantics."""

from __future__ import annotations

import json

import pytest

from repro.perf.benchdiff import (
    classify_metric,
    compare_snapshots,
    flatten_metrics,
    format_comparison,
    load_snapshot,
)


def _snapshot(**overrides):
    snap = {
        "bench": "demo",
        "version": 1,
        "commit": "abc",
        "generated_unix": 0,
        "host": {"cpu_count": 4},
        "config": {"shape": [8, 8]},
        "timings": {"p4": {"best_wall_s": 1.0, "best_compute_s": 0.8}},
        "counters": {"sent_messages": 100, "sent_bytes": 4096},
        "speedup_procs_over_threads": 2.0,
    }
    snap.update(overrides)
    return snap


class TestClassify:
    def test_time_and_counter_leaves_are_lower_better(self):
        assert classify_metric("timings.p4.best_wall_s") == "lower"
        assert classify_metric("modeled.P64.recdbl_us") == "lower"
        assert classify_metric("counters.sent_messages") == "lower"
        assert classify_metric("counters.sent_bytes") == "lower"

    def test_rate_like_leaves_are_higher_better(self):
        assert classify_metric("speedup_procs_over_threads") == "higher"
        assert classify_metric("kernels.dgemm.gflops") == "higher"
        assert classify_metric("io.read_bandwidth") == "higher"


class TestFlatten:
    def test_metadata_and_config_excluded(self):
        flat = flatten_metrics(_snapshot())
        assert "config.shape" not in str(flat)
        assert "host.cpu_count" not in flat
        assert flat["timings.p4.best_wall_s"] == 1.0
        assert flat["speedup_procs_over_threads"] == 2.0

    def test_lists_and_bools_skipped(self):
        flat = flatten_metrics(_snapshot(extra={"samples": [1, 2], "ok": True}))
        assert "extra.samples" not in flat
        assert "extra.ok" not in flat


class TestCompare:
    def test_identical_snapshots_clean(self):
        report = compare_snapshots(_snapshot(), _snapshot())
        assert report["comparable"]
        assert report["regressions"] == []
        assert report["improvements"] == []

    def test_lower_better_regression_detected(self):
        new = _snapshot()
        new["timings"] = {"p4": {"best_wall_s": 1.5, "best_compute_s": 0.8}}
        report = compare_snapshots(_snapshot(), new, tolerance=0.25)
        assert report["regressions"] == ["timings.p4.best_wall_s"]

    def test_higher_better_regression_detected(self):
        new = _snapshot(speedup_procs_over_threads=1.0)
        report = compare_snapshots(_snapshot(), new, tolerance=0.25)
        assert "speedup_procs_over_threads" in report["regressions"]

    def test_improvement_is_not_a_regression(self):
        new = _snapshot()
        new["timings"] = {"p4": {"best_wall_s": 0.5, "best_compute_s": 0.8}}
        report = compare_snapshots(_snapshot(), new)
        assert report["regressions"] == []
        assert "timings.p4.best_wall_s" in report["improvements"]

    def test_within_band_is_quiet(self):
        new = _snapshot()
        new["timings"] = {"p4": {"best_wall_s": 1.2, "best_compute_s": 0.8}}
        report = compare_snapshots(_snapshot(), new, tolerance=0.25)
        assert report["regressions"] == []
        assert report["improvements"] == []

    def test_per_metric_tolerance_override_longest_prefix_wins(self):
        new = _snapshot()
        new["timings"] = {"p4": {"best_wall_s": 1.5, "best_compute_s": 0.8}}
        report = compare_snapshots(
            _snapshot(), new, tolerance=0.25,
            tolerances={"timings": 0.1, "timings.p4.best_wall_s": 1.0},
        )
        assert report["regressions"] == []

    def test_config_mismatch_not_comparable(self):
        new = _snapshot(config={"shape": [16, 16]})
        report = compare_snapshots(_snapshot(), new)
        assert not report["comparable"]
        assert any("config" in m for m in report["mismatches"])
        assert report["metrics"] == []

    def test_bench_name_mismatch(self):
        report = compare_snapshots(_snapshot(), _snapshot(bench="other"))
        assert not report["comparable"]

    def test_missing_metrics_listed(self):
        new = _snapshot()
        del new["counters"]
        report = compare_snapshots(_snapshot(), new)
        assert "counters.sent_messages" in report["missing"]
        assert report["regressions"] == []


class TestFormatAndLoad:
    def test_format_mentions_regression(self):
        new = _snapshot()
        new["timings"] = {"p4": {"best_wall_s": 2.0, "best_compute_s": 0.8}}
        text = format_comparison(compare_snapshots(_snapshot(), new))
        assert "REGRESSED" in text and "best_wall_s" in text
        assert "1 regression(s)" in text

    def test_format_not_comparable(self):
        text = format_comparison(
            compare_snapshots(_snapshot(), _snapshot(bench="other"))
        )
        assert "NOT COMPARABLE" in text

    def test_load_snapshot_validates_envelope(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_snapshot()))
        assert load_snapshot(str(good))["bench"] == "demo"
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError, match="not a benchmark snapshot"):
            load_snapshot(str(bad))


class TestCliExitCodes:
    def test_cli_compare_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        old = _snapshot()
        new = _snapshot()
        new["timings"] = {"p4": {"best_wall_s": 9.0, "best_compute_s": 0.8}}
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))
        assert main(["bench", "--compare", str(old_path), str(new_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # identical snapshots: clean exit
        assert main(["bench", "--compare", str(old_path), str(old_path)]) == 0

    def test_cli_compare_incomparable_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(_snapshot()))
        b.write_text(json.dumps(_snapshot(bench="other")))
        assert main(["bench", "--compare", str(a), str(b)]) == 2
