"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import DenseTensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20210809)  # the paper's conference date


@pytest.fixture
def tensor4(rng) -> DenseTensor:
    """A generic 4-mode tensor with unequal dimensions."""
    return DenseTensor(rng.standard_normal((6, 7, 5, 8)))


@pytest.fixture
def tensor3(rng) -> DenseTensor:
    return DenseTensor(rng.standard_normal((9, 4, 11)))


@pytest.fixture
def tensor4_f32(tensor4) -> DenseTensor:
    return tensor4.astype(np.float32)
