"""End-to-end observability: traced parallel drivers on a small tensor.

Cross-checks the three measurement systems against each other — the
span tracer, the :class:`~repro.instrument.PhaseTimer` carried by the
driver result (including its attributed Comm row), and the progress
callback — on a real distributed ST-HOSVD / HOOI run.
"""

from __future__ import annotations

import pytest

from repro.core import hooi_parallel, sthosvd_parallel
from repro.data import low_rank_tensor
from repro.dist import DistributedTensor, GridComms, ProcessorGrid
from repro.instrument import (
    PHASE_COMM,
    PHASE_GRAM,
    PHASE_LQ,
    PHASE_TTM,
)
from repro.mpi import run_spmd
from repro.obs import Tracer

GRID = (2, 2, 1)
P = 4


@pytest.fixture(scope="module")
def X():
    return low_rank_tensor((12, 10, 8), (3, 4, 2), rng=7, noise=1e-9).data


def _traced_sthosvd(X, *, method="qr", progress_sink=None):
    tracer = Tracer()

    def prog(comm):
        comms = GridComms(comm, ProcessorGrid(GRID))
        dt = DistributedTensor.from_full(comms, X)
        events: list[dict] = []
        res = sthosvd_parallel(
            dt, tol=1e-6, method=method, progress=events.append,
        )
        return {
            "rank": comm.rank,
            "timer": dict(res.timer.by_phase),
            "events": events,
            "ranks": res.ranks,
        }

    outs = run_spmd(prog, P, tracer=tracer)
    return tracer, outs


class TestSthosvdTrace:
    def test_spans_cover_every_layer(self, X):
        tracer, _ = _traced_sthosvd(X)
        names = tracer.span_names()
        for required in ("sthosvd.mode", "lq", "svd", "ttm",
                         "redistribute", "tensor_lq", "geqr"):
            assert required in names, f"missing span {required!r}"
        assert any(n.startswith("comm.") for n in names)
        assert tracer.ranks() == list(range(P))

    def test_span_phase_totals_match_phase_timer(self, X):
        """Per rank, the PhaseTimer's total (all rows, Comm included)
        must agree with the tracer's driver spans: attribute_comm moves
        time between rows but preserves the sum, and the sthosvd.mode
        spans bound the timed blocks from above (plus per-mode glue)."""
        tracer, outs = _traced_sthosvd(X)
        for out in outs:
            r = out["rank"]
            timer_total = sum(out["timer"].values())
            mode_total = sum(
                s.duration for s in tracer.spans
                if s.rank == r and s.name == "sthosvd.mode"
            )
            assert timer_total > 0.0
            assert mode_total > 0.0
            # Timed blocks live inside the sthosvd.mode spans.
            assert timer_total <= mode_total + 1e-3
            # ...and the glue between them (rank selection, factor
            # slicing) is small for a 12x10x8 tensor.
            assert abs(mode_total - timer_total) <= max(
                0.5 * mode_total, 0.02
            )

    def test_comm_row_present_and_bounded_by_tracer(self, X):
        """Satellite (a): the PhaseTimer breakdown gains a Comm row.
        Its value can never exceed what the tracer measured in comm
        spans (attribution only moves measured comm seconds)."""
        tracer, outs = _traced_sthosvd(X)
        for out in outs:
            timer = out["timer"]
            assert timer.get(PHASE_COMM, 0.0) > 0.0
            assert timer.get(PHASE_LQ, 0.0) > 0.0
            assert timer.get(PHASE_TTM, 0.0) > 0.0
            tracer_comm = tracer.by_phase(out["rank"]).get(PHASE_COMM, 0.0)
            assert timer[PHASE_COMM] <= tracer_comm + 1e-6

    def test_gram_method_attributes_comm_from_gram_row(self, X):
        _, outs = _traced_sthosvd(X, method="gram")
        for out in outs:
            timer = out["timer"]
            assert timer.get(PHASE_COMM, 0.0) > 0.0
            assert timer.get(PHASE_GRAM, 0.0) > 0.0
            assert PHASE_LQ not in timer

    def test_progress_events_one_per_mode_on_rank0(self, X):
        _, outs = _traced_sthosvd(X)
        by_rank = {out["rank"]: out for out in outs}
        events = by_rank[0]["events"]
        assert len(events) == 3
        for r in range(1, P):
            assert by_rank[r]["events"] == []
        for i, ev in enumerate(events):
            assert set(ev) == {"step", "total_steps", "mode", "ranks",
                               "seconds"}
            assert ev["step"] == i + 1
            assert ev["total_steps"] == 3
            assert ev["seconds"] > 0.0
        assert [ev["mode"] for ev in events] == [0, 1, 2]
        # The last event reports the final core shape.
        assert events[-1]["ranks"] == by_rank[0]["ranks"]

    def test_untraced_run_unaffected(self, X):
        """Without a tracer the driver still produces the Comm-free
        timer (no attribution source) and identical ranks."""

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid(GRID))
            dt = DistributedTensor.from_full(comms, X)
            res = sthosvd_parallel(dt, tol=1e-6, method="qr")
            return res.ranks, dict(res.timer.by_phase)

        outs = run_spmd(prog, P)
        _, traced_outs = _traced_sthosvd(X)
        assert outs[0][0] == traced_outs[0]["ranks"]
        assert PHASE_COMM not in outs[0][1]


class TestHooiTrace:
    def test_hooi_progress_and_comm_row(self, X):
        tracer = Tracer()

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid(GRID))
            dt = DistributedTensor.from_full(comms, X)
            events: list[dict] = []
            res = hooi_parallel(
                dt, (3, 4, 2), max_iters=2, progress=events.append,
            )
            return {
                "rank": comm.rank,
                "timer": dict(res.timer.by_phase),
                "events": events,
                "iters": res.iterations,
            }

        outs = run_spmd(prog, P, tracer=tracer)
        assert "hooi.mode" in tracer.span_names()
        by_rank = {out["rank"]: out for out in outs}
        events = by_rank[0]["events"]
        iters = by_rank[0]["iters"]
        assert len(events) == 3 * iters
        for ev in events:
            assert set(ev) == {"step", "total_steps", "iteration",
                               "mode", "ranks", "seconds"}
        assert events[0]["iteration"] == 0
        for r in range(1, P):
            assert by_rank[r]["events"] == []
        for out in outs:
            assert out["timer"].get(PHASE_COMM, 0.0) > 0.0
