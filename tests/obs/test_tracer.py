"""Tracer unit tests: nesting, SPMD thread-safety, disabled-mode cost."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.instrument import PHASE_COMM, PHASE_LQ, PHASE_TTM
from repro.mpi import run_spmd
from repro.obs import Tracer, activate, current_tracer, deactivate, trace_span
from repro.obs.tracer import NULL_SPAN


@pytest.fixture(autouse=True)
def _clean_active_tracer():
    yield
    deactivate()


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


class TestSpanRecording:
    def test_basic_span(self):
        t = Tracer()
        with t.span("work", phase=PHASE_LQ, mode=1, note="x"):
            time.sleep(0.001)
        (s,) = t.spans
        assert s.name == "work"
        assert s.phase == PHASE_LQ
        assert s.mode == 1
        assert s.rank == 0
        assert s.depth == 0
        assert s.duration >= 0.001
        assert s.attrs["note"] == "x"

    def test_nesting_depth_and_enclosing_phase(self):
        t = Tracer()
        with t.span("outer", phase=PHASE_LQ):
            with t.span("middle"):
                with t.span("inner", phase=PHASE_TTM):
                    pass
        spans = {s.name: s for s in t.spans}
        assert spans["outer"].depth == 0
        assert spans["middle"].depth == 1
        assert spans["inner"].depth == 2
        assert spans["middle"].enclosing_phase == PHASE_LQ
        assert spans["inner"].enclosing_phase == PHASE_LQ
        assert not spans["inner"].self_nested  # different phase

    def test_mode_inherited_from_enclosing_span(self):
        t = Tracer()
        with t.span("outer", phase=PHASE_LQ, mode=2):
            with t.span("kernel"):  # no explicit mode
                pass
        spans = {s.name: s for s in t.spans}
        assert spans["kernel"].mode == 2

    def test_self_nested_same_phase_excluded_from_totals(self):
        """A comm span inside a comm span (tree allreduce's bcast) must
        not double-count in by_phase."""
        t = Tracer()
        with t.span("comm.allreduce", phase=PHASE_COMM):
            time.sleep(0.002)
            with t.span("comm.bcast", phase=PHASE_COMM):
                time.sleep(0.002)
        spans = {s.name: s for s in t.spans}
        assert spans["comm.bcast"].self_nested
        assert not spans["comm.allreduce"].self_nested
        total = t.by_phase(0)[PHASE_COMM]
        assert total == pytest.approx(spans["comm.allreduce"].duration)

    def test_byte_tallies_land_on_innermost_span(self):
        t = Tracer()
        with t.span("comm.send", phase=PHASE_COMM):
            t.add_bytes(100, 100)
            t.add_bytes(50, 0)
        (s,) = t.spans
        assert s.attrs["messages"] == 2
        assert s.attrs["bytes_sent"] == 150
        assert s.attrs["bytes_copied"] == 100
        assert s.attrs["bytes_moved"] == 50

    def test_local_mark_and_phase_seconds(self):
        t = Tracer()
        with t.span("a", phase=PHASE_COMM):
            time.sleep(0.001)
        mark = t.local_mark()
        with t.span("b", phase=PHASE_COMM):
            time.sleep(0.001)
        since = t.local_phase_seconds(PHASE_COMM, since=mark)
        assert since == pytest.approx(
            [s for s in t.spans if s.name == "b"][0].duration
        )
        assert t.local_phase_seconds(PHASE_COMM) > since


class TestActiveTracerPlumbing:
    def test_activate_deactivate(self):
        t = Tracer()
        assert current_tracer() is None
        activate(t, rank=3)
        assert current_tracer() is t
        with trace_span("work", phase=PHASE_LQ):
            pass
        deactivate()
        assert current_tracer() is None
        (s,) = t.spans
        assert s.rank == 3

    def test_trace_span_without_tracer_is_null_singleton(self):
        deactivate()
        assert trace_span("anything", phase=PHASE_LQ) is NULL_SPAN
        with trace_span("anything") as sp:
            assert sp is None

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        activate(t, rank=0)
        assert current_tracer() is None  # disabled reports as absent
        assert trace_span("x") is NULL_SPAN
        assert t.span("y") is NULL_SPAN
        with t.span("z"):
            pass
        assert t.spans == []

    def test_disabled_overhead_is_negligible(self):
        """trace_span with tracing off is one thread-local read plus a
        shared null context — bound its absolute per-hook cost.

        A parallel ST-HOSVD enters a few hundred hooks per mode, each
        wrapping kernels that run for milliseconds; a few microseconds
        per disabled hook keeps the total far inside the <2% wall-clock
        budget of the acceptance check."""
        deactivate()
        n = 50000

        def hooked():
            for _ in range(n):
                with trace_span("k"):
                    pass

        hooked()  # warm up
        best = min(
            _timed(hooked) for _ in range(3)
        )
        per_hook = best / n
        assert per_hook < 5e-6, f"{per_hook * 1e9:.0f} ns per disabled hook"


class TestSpmdThreadSafety:
    def test_per_rank_spans_via_run_spmd(self):
        t = Tracer()

        def prog(comm):
            with trace_span("work", phase=PHASE_LQ, mode=comm.rank):
                comm.barrier()

        run_spmd(prog, 4, tracer=t)
        assert t.ranks() == [0, 1, 2, 3]
        works = [s for s in t.spans if s.name == "work"]
        assert sorted(s.rank for s in works) == [0, 1, 2, 3]
        assert {s.mode for s in works} == {0, 1, 2, 3}
        # Every rank recorded its barrier under the Comm phase.
        for r in range(4):
            assert t.by_phase(r).get(PHASE_COMM, 0.0) > 0.0

    def test_rank_threads_deactivated_after_run(self):
        t = Tracer()
        run_spmd(lambda comm: comm.barrier(), 2, tracer=t)
        assert current_tracer() is None

    def test_concurrent_recording_loses_no_spans(self):
        t = Tracer()
        per_rank = 25

        def prog(comm):
            for i in range(per_rank):
                with trace_span(f"s{i}"):
                    pass

        run_spmd(prog, 8, tracer=t)
        recorded = [s for s in t.spans if s.name.startswith("s")]
        assert len(recorded) == 8 * per_rank
        for r in range(8):
            assert sum(1 for s in recorded if s.rank == r) == per_rank


class TestCommInstrumentation:
    def test_collective_spans_carry_algorithm(self):
        t = Tracer()

        def prog(comm):
            comm.allreduce(np.ones(4))
            comm.bcast(np.ones(8) if comm.rank == 0 else None, root=0)

        run_spmd(prog, 4, tracer=t)
        by_name = {}
        for s in t.spans:
            by_name.setdefault(s.name, []).append(s)
        assert all(
            "algorithm" in s.attrs for s in by_name["comm.allreduce"]
        )
        assert all("algorithm" in s.attrs for s in by_name["comm.bcast"])

    def test_send_bytes_tallied_on_comm_span(self):
        t = Tracer()

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1)
            else:
                comm.recv(0)

        run_spmd(prog, 2, tracer=t)
        (send_span,) = [s for s in t.spans if s.name == "comm.send"]
        assert send_span.attrs["bytes_sent"] == 80
        assert send_span.attrs["messages"] == 1

    def test_message_size_histogram_fed(self):
        t = Tracer()

        def prog(comm):
            comm.allreduce(np.ones(16), algorithm="recursive_doubling")

        run_spmd(prog, 4, tracer=t)
        h = t.metrics.histogram(
            "comm.message_bytes[allreduce:recursive_doubling]"
        )
        assert h.count == 4  # one observation per rank
        assert h.sum == 4 * 128
