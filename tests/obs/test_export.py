"""Chrome-trace JSON schema and imbalance/phase table tests."""

from __future__ import annotations

import json
import time

import pytest

from repro.instrument import PHASE_COMM, PHASE_LQ, PHASE_TTM
from repro.mpi import run_spmd
from repro.obs import (
    Tracer,
    chrome_trace,
    imbalance_summary,
    imbalance_table,
    phase_table,
    trace_span,
    write_chrome_trace,
)


def _traced_world(nprocs: int = 4) -> Tracer:
    """A small SPMD run whose trace covers every exporter code path."""
    t = Tracer()

    def prog(comm):
        with trace_span("kernel", phase=PHASE_LQ, mode=0, rows=8):
            time.sleep(0.001 * (comm.rank + 1))  # deliberate imbalance
            comm.barrier()
        with trace_span("ttm", phase=PHASE_TTM, mode=1):
            time.sleep(0.001)

    run_spmd(prog, nprocs, tracer=t)
    return t


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace(_traced_world())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert all(e["ph"] in ("X", "M") for e in doc["traceEvents"])

    def test_other_data_self_identifies_the_run(self):
        doc = chrome_trace(
            _traced_world(2),
            metadata={"backend": "threads", "start_unix": 123.0},
        )
        other = doc["otherData"]
        assert isinstance(other["commit"], str) and other["commit"]
        assert other["generated_unix"] > 0
        assert "hostname" in other["host"] and "python" in other["host"]
        # caller-supplied metadata is merged in verbatim
        assert other["backend"] == "threads"
        assert other["start_unix"] == 123.0
        json.dumps(doc)  # stays serializable

    def test_one_track_per_rank_with_metadata(self):
        doc = chrome_trace(_traced_world(4))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["tid"]: e["args"]["name"]
                 for e in meta if e["name"] == "thread_name"}
        assert names == {r: f"rank {r}" for r in range(4)}
        sort_idx = {e["tid"]: e["args"]["sort_index"]
                    for e in meta if e["name"] == "thread_sort_index"}
        assert sort_idx == {r: r for r in range(4)}
        (proc,) = [e for e in meta if e["name"] == "process_name"]
        assert proc["args"]["name"] == "repro SPMD world"

    def test_span_events_schema(self):
        doc = chrome_trace(_traced_world(2))
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs
        for e in xs:
            assert set(e) == {"name", "cat", "ph", "ts", "dur", "pid",
                              "tid", "args"}
            assert e["pid"] == 0
            assert e["tid"] in (0, 1)
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
        kernels = [e for e in xs if e["name"] == "kernel"]
        assert len(kernels) == 2
        for e in kernels:
            assert e["cat"] == PHASE_LQ
            assert e["args"]["phase"] == PHASE_LQ
            assert e["args"]["mode"] == 0
            assert e["args"]["rows"] == 8
            # sleep(1ms) minimum, in microseconds
            assert e["dur"] >= 1000.0

    def test_json_round_trip_and_write(self, tmp_path):
        t = _traced_world(2)
        path = tmp_path / "trace.json"
        write_chrome_trace(t, str(path), indent=1)
        on_disk = json.loads(path.read_text())
        rebuilt = json.loads(json.dumps(chrome_trace(t)))
        # otherData carries a fresh generation timestamp per export
        on_disk["otherData"].pop("generated_unix")
        rebuilt["otherData"].pop("generated_unix")
        assert on_disk == rebuilt

    def test_empty_tracer_still_valid(self):
        doc = chrome_trace(Tracer())
        assert doc["traceEvents"][0]["name"] == "process_name"
        assert not [e for e in doc["traceEvents"] if e["ph"] == "X"]


class TestTables:
    def test_phase_table_rows_and_columns(self):
        table = phase_table(_traced_world(4), title="phases")
        assert "phases" in table
        for col in (PHASE_LQ, PHASE_TTM, PHASE_COMM, "busy", "rank"):
            assert col in table
        for r in range(4):
            assert f"\n{r} " in table or f" {r} " in table

    def test_imbalance_table_mentions_phases_and_busy(self):
        table = imbalance_table(_traced_world(4))
        for needle in (PHASE_LQ, PHASE_TTM, "busy", "barrier wait",
                       "max/mean"):
            assert needle in table


class TestImbalanceSummary:
    def test_keys_and_phase_stats(self):
        t = _traced_world(4)
        s = imbalance_summary(t)
        assert set(s) == {"phases", "barrier_wait", "max_barrier_wait",
                          "comm_wait", "critical_path_seconds",
                          "mean_busy_seconds"}
        lq = s["phases"][PHASE_LQ]
        assert set(lq) == {"max", "mean", "min", "imbalance"}
        assert lq["min"] <= lq["mean"] <= lq["max"]
        assert lq["imbalance"] == pytest.approx(lq["max"] / lq["mean"])
        # Ranks sleep 1..4 ms inside the LQ span, so it is imbalanced.
        assert lq["imbalance"] > 1.0

    def test_barrier_and_comm_wait(self):
        t = _traced_world(4)
        s = imbalance_summary(t)
        assert set(s["barrier_wait"]) == {0, 1, 2, 3}
        # Rank 0 sleeps least before the barrier, so it waits longest.
        waits = s["barrier_wait"]
        assert waits[0] == max(waits.values())
        assert s["max_barrier_wait"] == waits[0]
        for r in range(4):
            assert s["comm_wait"][r] >= waits[r]

    def test_critical_path_is_slowest_rank(self):
        t = _traced_world(4)
        s = imbalance_summary(t)
        busy = {r: t.total_seconds(r) for r in t.ranks()}
        assert s["critical_path_seconds"] == pytest.approx(max(busy.values()))
        assert s["mean_busy_seconds"] == pytest.approx(
            sum(busy.values()) / len(busy)
        )
        assert s["mean_busy_seconds"] <= s["critical_path_seconds"]

    def test_empty_tracer(self):
        s = imbalance_summary(Tracer())
        assert s["phases"] == {}
        assert s["critical_path_seconds"] == 0.0
        assert s["mean_busy_seconds"] == 0.0
