"""Metrics registry unit tests and bridge tests from existing tallies."""

from __future__ import annotations

import json
import threading

import pytest

from repro.instrument import PHASE_GRAM, PHASE_TTM, FlopCounter
from repro.mpi.tracing import CommTrace
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ingest_comm_trace,
    ingest_flop_counter,
)


class TestInstruments:
    def test_counter(self):
        c = Counter("msgs")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.snapshot() == {"type": "counter", "value": 6}

    def test_gauge(self):
        g = Gauge("peak")
        assert g.value == 0.0
        g.set(3.5)
        g.set(1.25)
        assert g.value == 1.25
        assert g.snapshot() == {"type": "gauge", "value": 1.25}

    def test_histogram_bucketing(self):
        h = Histogram("sizes", buckets=(10, 100, 1000))
        for v in (5, 10, 11, 500, 5000):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 5526.0
        assert h.mean == pytest.approx(5526.0 / 5)
        assert h.max == 5000.0
        assert h.bucket_counts() == {
            "le=10": 2,   # 5 and 10 (bounds are inclusive)
            "le=100": 1,  # 11
            "le=1000": 1,  # 500
            "le=+Inf": 1,  # 5000 overflows
        }

    def test_empty_histogram(self):
        h = Histogram("sizes")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.max == 0.0

    def test_histogram_rejects_no_buckets(self):
        with pytest.raises(ValueError):
            Histogram("sizes", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a")
        c1.inc(3)
        assert reg.counter("a") is c1
        assert reg.counter("a").value == 3

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_names_sorted_and_get(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert reg.get("a") is reg.counter("a")
        assert reg.get("missing") is None

    def test_to_dict_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(100)
        d = json.loads(json.dumps(reg.to_dict()))
        assert d["c"]["value"] == 2
        assert d["g"]["value"] == 0.5
        assert d["h"]["count"] == 1

    def test_as_table_lists_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("comm.sent_messages[all]").inc(7)
        reg.histogram("comm.message_bytes[bcast:binomial]").observe(64)
        table = reg.as_table(title="metrics")
        assert "metrics" in table
        assert "comm.sent_messages[all]" in table
        assert "comm.message_bytes[bcast:binomial]" in table

    def test_concurrent_get_or_create_single_instance(self):
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            c = reg.counter("shared")
            seen.append(c)
            for _ in range(100):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)
        assert reg.counter("shared").value == 800


class TestBridges:
    def test_ingest_comm_trace(self):
        trace = CommTrace()
        trace.set_context("redistribute")
        trace.record_send(0, 100, copied=100)
        trace.record_send(1, 50, copied=0)
        trace.record_recv(0, 50)
        trace.record_recv(1, 100)
        trace.set_context(None)
        reg = MetricsRegistry()
        ingest_comm_trace(reg, trace)
        assert reg.counter("comm.sent_messages[redistribute]").value == 2
        assert reg.counter("comm.sent_bytes[redistribute]").value == 150
        assert reg.counter("comm.copied_bytes[redistribute]").value == 100
        assert reg.counter("comm.moved_bytes[redistribute]").value == 50
        assert reg.counter("comm.recv_messages[redistribute]").value == 2
        assert reg.counter("comm.recv_bytes[redistribute]").value == 150
        # The catch-all context is ingested too.
        assert reg.counter("comm.sent_messages[all]").value == 2

    def test_ingest_flop_counter(self):
        flops = FlopCounter()
        flops.add(1000, PHASE_GRAM)
        flops.add(500, PHASE_TTM)
        reg = MetricsRegistry()
        ingest_flop_counter(reg, flops)
        assert reg.counter("flops.total").value == 1500
        assert reg.counter(f"flops[{PHASE_GRAM}]").value == 1000
        assert reg.counter(f"flops[{PHASE_TTM}]").value == 500
