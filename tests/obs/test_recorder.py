"""Unit tests for the flight recorder, telemetry hub, and postmortems."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import RankFailedError
from repro.faults import CrashRule, FaultPlan
from repro.mpi import run_spmd
from repro.obs import (
    FlightRecorder,
    TelemetryHub,
    build_postmortem,
    load_postmortem,
    render_postmortem,
    write_postmortem,
)
from repro.obs.recorder import (
    RecorderSpan,
    activate,
    current_recorder,
    deactivate,
    event_dict,
    record_event,
)


# ----------------------------------------------------------------------
# Ring buffer mechanics
# ----------------------------------------------------------------------
class TestRing:
    def test_bounded_eviction(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(0, "send", peer=i)
        events = rec.events(0)
        assert len(events) == 4
        assert [e[0] for e in events] == [6, 7, 8, 9]  # monotone seqs survive
        assert rec.recorded(0) == 10
        assert rec.evicted(0) == 6

    def test_last_events_and_cursor(self):
        rec = FlightRecorder(capacity=8)
        for i in range(5):
            rec.record(1, "recv", peer=i)
        assert [e[0] for e in rec.last_events(1, 2)] == [3, 4]
        assert rec.cursor(1) == 5
        assert [e[0] for e in rec.events_since(1, 3)] == [3, 4]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_absorb_events_dedupes_by_seq(self):
        """Heartbeat deltas and the finalize shard overlap; absorbing
        the same events twice must not duplicate them."""
        src = FlightRecorder(capacity=16)
        for i in range(6):
            src.record(2, "send", peer=i)
        dst = FlightRecorder(capacity=16)
        batch = src.events_since(2, 0)
        dst.absorb_events(2, batch[:4])
        dst.absorb_events(2, batch)  # overlaps the first four
        assert [e[0] for e in dst.events(2)] == [0, 1, 2, 3, 4, 5]
        assert dst.recorded(2) == 6

    def test_clear(self):
        rec = FlightRecorder(capacity=4)
        rec.record(0, "send")
        rec.clear()
        assert rec.ranks() == []
        assert rec.events(0) == []


# ----------------------------------------------------------------------
# Span stacks: open spans vs the error-unwind fallback
# ----------------------------------------------------------------------
class TestSpanStacks:
    def test_open_stack_tracks_nesting(self):
        rec = FlightRecorder()
        rec.record(0, "span.open", "outer")
        rec.record(0, "span.open", "inner")
        assert rec.open_spans(0) == ["outer", "inner"]
        assert rec.span_stack(0) == ["outer", "inner"]
        rec.record(0, "span.close", "inner")
        assert rec.open_spans(0) == ["outer"]

    def test_error_unwind_preserved_after_close(self):
        """When the exception has already unwound every span, the stack
        at death is reconstructed from the error-closed spans."""
        rec = FlightRecorder()
        rec.record(0, "span.open", "outer")
        rec.record(0, "span.open", "inner")
        rec.record(0, "span.close", "inner", error="RankKilledError")
        rec.record(0, "span.close", "outer", error="RankKilledError")
        assert rec.open_spans(0) == []
        assert rec.error_unwind(0) == ["inner", "outer"]
        assert rec.span_stack(0) == ["outer", "inner"]  # innermost last

    def test_clean_close_clears_unwind(self):
        rec = FlightRecorder()
        rec.record(0, "span.open", "a")
        rec.record(0, "span.close", "a", error="ValueError")
        rec.record(0, "span.open", "b")
        rec.record(0, "span.close", "b")  # clean close: not dying
        assert rec.error_unwind(0) == []
        assert rec.span_stack(0) == []


# ----------------------------------------------------------------------
# Thread-local activation + stand-in spans
# ----------------------------------------------------------------------
class TestActivation:
    def test_record_event_routes_to_active_recorder(self):
        rec = FlightRecorder()
        activate(rec, 3)
        try:
            assert current_recorder() is rec
            record_event("fault", "crash", op_index=2)
        finally:
            deactivate()
        assert current_recorder() is None
        (event,) = rec.events(3)
        assert event[2] == "fault" and event[3] == "crash"
        assert event_dict(event)["detail"] == {"op_index": 2}

    def test_recorder_span_records_open_close(self):
        rec = FlightRecorder()
        with RecorderSpan(rec, 1, "kernel", {"mode": 0}) as span:
            span.set(rows=8)
            span.add_bytes(64)
        kinds = [(e[2], e[3]) for e in rec.events(1)]
        assert kinds == [("span.open", "kernel"), ("span.close", "kernel")]
        close_detail = event_dict(rec.events(1)[-1])["detail"]
        assert close_detail["mode"] == 0 and close_detail["rows"] == 8
        assert close_detail["copied_bytes"] == 64
        assert "duration_s" in close_detail

    def test_recorder_span_records_error(self):
        rec = FlightRecorder()
        with pytest.raises(RuntimeError):
            with RecorderSpan(rec, 0, "kernel", None):
                raise RuntimeError("boom")
        close_detail = event_dict(rec.events(0)[-1])["detail"]
        assert close_detail["error"] == "RuntimeError"
        assert rec.error_unwind(0) == ["kernel"]


# ----------------------------------------------------------------------
# TelemetryHub
# ----------------------------------------------------------------------
class TestTelemetryHub:
    def test_unattached_snapshot(self):
        hub = TelemetryHub()
        snap = hub.snapshot()
        assert snap == {"attached": False}
        assert "no world attached" in hub.render()

    def test_heartbeat_ages_prefer_freshest_signal(self):
        hub = TelemetryHub()
        rec = FlightRecorder()

        class _Ctx:
            world_size = 2
            recorder = rec

        hub.attach(_Ctx(), recorder=rec, backend="procs")
        hub.beat(0, ts=100.0)
        rec.record(0, "send")  # recorder event is fresher than the beat
        ages = hub.heartbeat_ages(now=rec.last_event_ts(0) + 1.0)
        assert ages[0] == pytest.approx(1.0, abs=0.05)
        assert ages[1] is None  # never heard from


# ----------------------------------------------------------------------
# Postmortem bundles end to end (threads backend; conformance tests
# cover procs)
# ----------------------------------------------------------------------
def _crash_world(tmp_path):
    rec = FlightRecorder(postmortem_dir=str(tmp_path))

    def prog(comm):
        if comm.rank == 1:
            comm.send(np.ones(4), 0, tag=5)
        return comm.recv((comm.rank + 1) % comm.size, tag=9)

    plan = FaultPlan(seed=7, crashes=(CrashRule(rank=0, at_op=1),))
    with pytest.raises(RankFailedError):
        run_spmd(prog, 2, faults=plan, recorder=rec, recv_timeout=15)
    return rec


class TestPostmortem:
    def test_bundle_is_json_clean(self, tmp_path):
        rec = _crash_world(tmp_path)
        bundle = rec.last_postmortem
        json.dumps(bundle)  # strictly JSON-serializable
        assert bundle["schema"] == "repro-postmortem/1"
        assert bundle["world_size"] == 2
        assert bundle["error"]["type"] == "RankFailedError"
        assert bundle["rank_errors"]  # per-rank error table present

    def test_write_load_roundtrip_and_schema_guard(self, tmp_path):
        rec = _crash_world(tmp_path)
        path = rec.last_postmortem_path
        assert path is not None and path.startswith(str(tmp_path))
        assert load_postmortem(path) == rec.last_postmortem
        bad = tmp_path / "not-a-bundle.json"
        bad.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError, match="not a postmortem bundle"):
            load_postmortem(str(bad))

    def test_render_mentions_key_facts(self, tmp_path):
        rec = _crash_world(tmp_path)
        text = render_postmortem(rec.last_postmortem, events=5)
        assert "ROOT CAUSE" in text
        assert "in-flight messages: 1" in text
        assert "tag=5" in text
        assert "last 3 events" in text or "last 5 events" in text

    def test_write_postmortem_explicit(self, tmp_path):
        bundle = {"schema": "repro-postmortem/1", "ranks": {}}
        path = write_postmortem(bundle, str(tmp_path), filename="x.json")
        assert load_postmortem(path) == bundle

    def test_build_postmortem_without_recorder(self):
        """Bundle assembly must not require a recorder (degraded mode)."""

        class _Ctx:
            world_size = 1
            abort_reason = None
            recorder = None
            telemetry = None
            last_deadlock = None
            faults = None
            transport = None

            class abort_event:
                @staticmethod
                def is_set():
                    return False

            @staticmethod
            def failed_ranks():
                return []

            @staticmethod
            def rank_status(rank):
                return "finalized"

            @staticmethod
            def mailboxes():
                return []

        bundle = build_postmortem(_Ctx())
        assert bundle["ranks"]["0"]["status"] == "finalized"
        assert "events_recorded" not in bundle["ranks"]["0"]
