"""Fault-tolerant ST-HOSVD/HOOI: the ISSUE's acceptance scenario.

A seeded plan that kills one rank mid-mode and drops a percent of
messages must still yield a completed decomposition on the shrunk
communicator, with reconstruction error within 10x of the fault-free
run, deterministically across replays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ft import hooi_fault_tolerant, sthosvd_fault_tolerant
from repro.errors import ConvergenceError, RankFailedError
from repro.faults import (
    CrashRule,
    FaultPlan,
    KernelFaultRule,
    MessageFaultRule,
)
from repro.mpi import run_spmd
from repro.obs import Tracer

SHAPE = (16, 14, 12)
RANKS = (6, 5, 4)
FULL = np.asfortranarray(
    np.random.default_rng(3).standard_normal(SHAPE)
)


def _sthosvd_prog(comm):
    res = sthosvd_fault_tolerant(
        comm, FULL if comm.rank == 0 else None, ranks=RANKS, method="qr",
    )
    tucker = res.result.to_tucker()
    err = None
    if res.comm.rank == 0:
        rec = np.asarray(tucker.reconstruct().data)
        err = float(np.linalg.norm((rec - FULL).ravel())
                    / np.linalg.norm(FULL.ravel()))
    return {
        "survivors": res.comm.size,
        "recoveries": res.recoveries,
        "err": err,
        "events": res.events,
        "numeric": res.result.numeric_recoveries,
    }


def _first_err(res):
    return next(v["err"] for v in res.values
                if v is not None and v["err"] is not None)


class TestSthosvdFaultTolerant:
    def test_clean_run_matches_plain_driver(self):
        res = run_spmd(_sthosvd_prog, 4)
        assert all(v["recoveries"] == 0 for v in res.values)
        assert all(v["survivors"] == 4 for v in res.values)

    def test_acceptance_crash_plus_drops(self):
        base = run_spmd(_sthosvd_prog, 4)
        base_err = _first_err(base)

        plan = FaultPlan(
            seed=42,
            crashes=(CrashRule(rank=1, at_op=20),),  # mid-mode
            messages=(MessageFaultRule(kind="drop", prob=0.01),),
        )
        keys = []
        for _ in range(3):
            res = run_spmd(_sthosvd_prog, 4, faults=plan, resilience=True)
            keys.append(res.faults.trace_key())
            done = [v for v in res.values if v is not None]
            assert len(done) == 3 and res.failed_ranks == [1]
            assert all(v["survivors"] == 3 for v in done)
            assert all(v["recoveries"] == 1 for v in done)
            assert _first_err(res) <= 10 * base_err
            (kind, detail), = done[0]["events"]
            assert kind == "rank_failure" and detail["survivors"] == 3
        assert keys[0] == keys[1] == keys[2]

    def test_crash_of_data_root_recovers(self):
        plan = FaultPlan(seed=8, crashes=(CrashRule(rank=0, at_op=25),))
        res = run_spmd(_sthosvd_prog, 4, faults=plan, resilience=True)
        assert res.failed_ranks == [0]
        done = [v for v in res.values if v is not None]
        assert all(v["survivors"] == 3 for v in done)
        base_err = _first_err(run_spmd(_sthosvd_prog, 4))
        assert _first_err(res) <= 10 * base_err

    def test_max_recoveries_exhausted_reraises(self):
        def prog(comm):
            return sthosvd_fault_tolerant(
                comm, FULL if comm.rank == 0 else None, ranks=RANKS,
                max_recoveries=0,
            )

        plan = FaultPlan(seed=8, crashes=(CrashRule(rank=2, at_op=25),))
        with pytest.raises(RankFailedError):
            run_spmd(prog, 4, faults=plan, resilience=True)


class TestNumericDegradation:
    def test_kernel_nan_triggers_guard_not_corruption(self):
        tracer = Tracer()
        plan = FaultPlan(seed=0, kernels=(
            KernelFaultRule("gesvd", 0, kind="nan"),
        ))
        base = run_spmd(_sthosvd_prog, 4)
        res = run_spmd(_sthosvd_prog, 4, faults=plan, resilience=True,
                       tracer=tracer)
        assert res.failed_ranks == []
        # Factors stayed finite and the error did not blow up.
        assert _first_err(res) <= 10 * _first_err(base)
        recs = res.values[0]["numeric"]
        assert recs and recs[0].endswith("qr->jacobi")
        # Escalation is visible in tracer metrics and spans.
        assert tracer.metrics.counter("ft.numeric_recoveries").value > 0
        assert any(s.name == "ft.numeric_recovery" for s in tracer.spans)

    def test_persistent_nan_exhausts_ladder(self):
        from repro.dist import DistributedTensor, GridComms
        from repro.dist.grid import ProcessorGrid
        from repro.dist.redistribute import distribute_from_root
        from repro.faults.guards import guarded_mode_svd

        def prog(comm):
            grid = ProcessorGrid.for_size(comm.size, len(SHAPE))
            comms = GridComms(comm, grid)
            dt = distribute_from_root(
                comms, FULL if comm.rank == 0 else None, root=0)
            with pytest.raises(ConvergenceError, match="non-finite"):
                guarded_mode_svd(dt, 0, method="qr")
            return "raised"

        # Corrupt the primary gesvd AND the Jacobi fallback's kernels:
        # every rung of the float64 ladder stays non-finite.
        plan = FaultPlan(seed=0, kernels=tuple(
            KernelFaultRule(k, i, kind="nan")
            for k in ("gesvd", "geqr", "gelq")
            for i in range(6)
        ))
        res = run_spmd(prog, 4, faults=plan)
        assert all(v == "raised" for v in res.values)


class TestHooiFaultTolerant:
    def test_crash_mid_sweep_recovers(self):
        def prog(comm):
            res = hooi_fault_tolerant(
                comm, FULL if comm.rank == 0 else None, RANKS,
                method="gram", max_iters=4,
            )
            fit = res.result.final_fit if res.comm.rank == 0 else None
            return (res.comm.size, res.recoveries,
                    res.result.iterations, fit)

        base = run_spmd(prog, 4)
        base_fit = base.values[0][3]

        plan = FaultPlan(seed=9, crashes=(CrashRule(rank=2, at_op=60),))
        res = run_spmd(prog, 4, faults=plan, resilience=True)
        done = [v for v in res.values if v is not None]
        assert res.failed_ranks == [2]
        assert all(v[0] == 3 and v[1] == 1 for v in done)
        fit = next(v[3] for v in done if v[3] is not None)
        assert fit == pytest.approx(base_fit, rel=1e-9)
