"""Runtime fault injection: message faults, crashes, reliability counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError, RankFailedError
from repro.faults import (
    CrashRule,
    FaultPlan,
    KernelFaultRule,
    MessageFaultRule,
    Resilience,
)
from repro.mpi import CommTrace, run_spmd
from repro.mpi.tracing import CommTrace as _CommTrace
from repro.obs import Tracer, chrome_trace, ingest_comm_trace


def _pingpong(comm, rounds=20):
    data = np.arange(64, dtype=np.float64)
    out = []
    for i in range(rounds):
        if comm.rank == 0:
            comm.send(data * i, 1, tag=4)
            out.append(comm.recv(1, tag=5))
        else:
            out.append(comm.recv(0, tag=4))
            comm.send(data * i, 0, tag=5)
    return np.sum(out)


class TestMessageFaults:
    def test_drops_are_retried_transparently(self):
        plan = FaultPlan(seed=2, messages=(
            MessageFaultRule(kind="drop", prob=0.3),
        ))
        clean = run_spmd(_pingpong, 2)
        trace = CommTrace()
        faulty = run_spmd(_pingpong, 2, faults=plan, resilience=True,
                          comm_trace=trace)
        assert faulty.values == clean.values
        assert trace.dropped_messages() > 0
        assert trace.retried_messages() >= trace.dropped_messages()

    def test_corruption_is_detected_by_checksums(self):
        plan = FaultPlan(seed=7, messages=(
            MessageFaultRule(kind="corrupt", prob=0.4),
        ))
        clean = run_spmd(_pingpong, 2)
        trace = CommTrace()
        faulty = run_spmd(_pingpong, 2, faults=plan, resilience=True,
                          comm_trace=trace)
        assert faulty.values == clean.values
        assert trace.checksum_failures() > 0

    def test_corruption_without_checksums_changes_data(self):
        plan = FaultPlan(seed=7, messages=(
            MessageFaultRule(kind="corrupt", prob=0.4),
        ))
        clean = run_spmd(_pingpong, 2)
        faulty = run_spmd(
            _pingpong, 2, faults=plan,
            resilience=Resilience(checksums=False),
        )
        assert faulty.values != clean.values

    def test_duplicates_are_deduplicated(self):
        plan = FaultPlan(seed=5, messages=(
            MessageFaultRule(kind="duplicate", prob=0.5),
        ))
        clean = run_spmd(_pingpong, 2)
        faulty = run_spmd(_pingpong, 2, faults=plan, resilience=True)
        assert faulty.values == clean.values
        assert any(e.kind == "duplicate" for e in faulty.faults.trace)

    def test_delay_preserves_values(self):
        plan = FaultPlan(seed=5, messages=(
            MessageFaultRule(kind="delay", prob=0.5, delay_seconds=1e-4),
        ))
        clean = run_spmd(_pingpong, 2)
        faulty = run_spmd(_pingpong, 2, faults=plan, resilience=True)
        assert faulty.values == clean.values

    def test_all_drops_exhaust_retry_budget(self):
        plan = FaultPlan(seed=1, messages=(
            MessageFaultRule(kind="drop", prob=1.0),
        ))
        with pytest.raises(CommunicatorError, match="retr"):
            run_spmd(_pingpong, 2, faults=plan,
                     resilience=Resilience(max_retries=3))


class TestCrash:
    def test_uncaught_failure_propagates(self):
        plan = FaultPlan(seed=0, crashes=(CrashRule(rank=1, at_op=5),))
        with pytest.raises(RankFailedError):
            run_spmd(_pingpong, 2, faults=plan, resilience=True)

    def test_victim_reported_not_reraised(self):
        plan = FaultPlan(seed=0, crashes=(CrashRule(rank=1, at_op=3),))

        def prog(comm):
            try:
                return _pingpong(comm, rounds=10)
            except RankFailedError:
                return "survived"

        res = run_spmd(prog, 2, faults=plan, resilience=True)
        assert res.failed_ranks == [1]
        assert res.values[1] is None
        assert res.values[0] == "survived"
        assert [e.kind for e in res.faults.trace] == ["crash"]


class TestKernelFaults:
    def test_kernel_fault_fires_on_all_ranks_by_default(self):
        from repro.linalg.svd import qr_svd

        def prog(comm):
            rng = np.random.default_rng(0)  # same matrix on every rank
            U, _ = qr_svd(rng.standard_normal((6, 40)))
            return bool(np.isnan(U).any())

        plan = FaultPlan(seed=0, kernels=(
            KernelFaultRule("gesvd", 0, kind="nan"),
        ))
        res = run_spmd(prog, 3, faults=plan)
        assert res.values == [True, True, True]
        assert len(res.faults.trace) == 3

    def test_kernel_fault_respects_rank_filter(self):
        from repro.linalg.svd import qr_svd

        def prog(comm):
            rng = np.random.default_rng(0)
            U, _ = qr_svd(rng.standard_normal((6, 40)))
            return bool(np.isnan(U).any())

        plan = FaultPlan(seed=0, kernels=(
            KernelFaultRule("gesvd", 0, kind="nan", ranks=(2,)),
        ))
        res = run_spmd(prog, 3, faults=plan)
        assert res.values == [False, False, True]


class TestReliabilityCounters:
    def _faulty_trace(self):
        plan = FaultPlan(seed=2, messages=(
            MessageFaultRule(kind="drop", prob=0.3),
            MessageFaultRule(kind="corrupt", prob=0.2),
        ))
        trace = _CommTrace()
        run_spmd(_pingpong, 2, faults=plan, resilience=True, comm_trace=trace)
        return trace

    def test_counters_surface_in_table_and_dict(self):
        trace = self._faulty_trace()
        d = trace.to_dict()
        assert d["totals"]["dropped_messages"] > 0
        assert d["totals"]["retried_messages"] > 0
        table = trace.as_table()
        assert "dropped" in table and "retried" in table

    def test_clean_run_table_omits_reliability_columns(self):
        trace = _CommTrace()
        run_spmd(_pingpong, 2, comm_trace=trace)
        assert "dropped" not in trace.as_table()

    def test_metrics_ingest_and_chrome_counter(self):
        trace = self._faulty_trace()
        tracer = Tracer()
        ingest_comm_trace(tracer.metrics, trace)
        names = set(tracer.metrics.names())
        assert "comm.dropped_messages" in names
        assert "comm.retried_messages" in names
        doc = chrome_trace(tracer, comm_trace=trace)
        counters = [e for e in doc["traceEvents"]
                    if e.get("name") == "comm.reliability"]
        assert counters and all(e["ph"] == "C" for e in counters)
        assert sum(e["args"]["dropped"] for e in counters) > 0
