"""Revoke/shrink recovery and the buddy-replicated distributed checkpoint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError, CommRevokedError, RankFailedError
from repro.faults import CrashRule, DistributedCheckpoint, FaultPlan
from repro.dist import DistributedTensor, GridComms
from repro.dist.grid import ProcessorGrid
from repro.dist.redistribute import distribute_from_root
from repro.mpi import run_spmd
from repro.obs import Tracer

SHAPE = (8, 6, 4)
FULL = np.asfortranarray(
    np.random.default_rng(0).standard_normal(SHAPE)
)


def _distribute(comm, full=FULL):
    grid = ProcessorGrid.for_size(comm.size, full.ndim)
    comms = GridComms(comm, grid)
    return distribute_from_root(comms, full if comm.rank == 0 else None, root=0)


def _survive_and_shrink(comm):
    """Barrier until the injected crash hits, then revoke + shrink."""
    try:
        for _ in range(400):
            comm.barrier()
    except RankFailedError:
        comm.revoke()
    return comm.shrink()


class TestShrink:
    def test_shrink_renumbers_survivors_densely(self):
        plan = FaultPlan(seed=0, crashes=(CrashRule(rank=1, at_op=30),))

        def prog(comm):
            new = _survive_and_shrink(comm)
            total = new.allreduce(np.array([new.rank]))
            return (new.rank, new.size, int(total[0]))

        res = run_spmd(prog, 4, faults=plan, resilience=True)
        done = [v for v in res.values if v is not None]
        assert sorted(v[0] for v in done) == [0, 1, 2]
        assert all(v[1] == 3 for v in done)
        assert all(v[2] == 3 for v in done)  # 0+1+2 over the new world

    def test_revoked_epoch_raises_for_stragglers(self):
        plan = FaultPlan(seed=0, crashes=(CrashRule(rank=2, at_op=10),))

        def prog(comm):
            new = _survive_and_shrink(comm)
            # The old world is revoked: any further op on it must fail
            # fast rather than hang waiting for the dead rank.
            with pytest.raises(CommRevokedError):
                comm.barrier()
            return new.size

        res = run_spmd(prog, 4, faults=plan, resilience=True)
        assert [v for v in res.values if v is not None] == [3, 3, 3]


class TestDistributedCheckpoint:
    def test_save_recover_roundtrip_after_death(self):
        plan = FaultPlan(seed=0, crashes=(CrashRule(rank=2, at_op=60),))

        def prog(comm):
            dt = _distribute(comm)
            ckpt = DistributedCheckpoint("rt")
            ckpt.save(dt, 1, meta={"mark": 17})
            new = _survive_and_shrink(comm)
            step, meta, full = ckpt.recover(new)
            ok = bool(np.array_equal(full, FULL)) if new.rank == 0 else None
            return (step, meta["mark"], ok)

        res = run_spmd(prog, 4, faults=plan, resilience=True)
        done = [v for v in res.values if v is not None]
        assert all(v[0] == 1 and v[1] == 17 for v in done)
        assert any(v[2] is True for v in done)

    def test_newest_complete_step_wins(self):
        plan = FaultPlan(seed=0, crashes=(CrashRule(rank=1, at_op=80),))

        def prog(comm):
            dt = _distribute(comm)
            ckpt = DistributedCheckpoint("steps", keep=3)
            ckpt.save(dt, 1, meta={"step": 1})
            ckpt.save(dt, 2, meta={"step": 2})
            new = _survive_and_shrink(comm)
            step, meta, _ = ckpt.recover(new)
            return (step, meta["step"])

        res = run_spmd(prog, 4, faults=plan, resilience=True)
        assert all(v == (2, 2) for v in res.values if v is not None)

    def test_rank_and_buddy_both_dead_is_unrecoverable(self):
        # Rank 2's block is replicated to rank 3 (its ring buddy);
        # killing both loses the only two copies.
        plan = FaultPlan(seed=0, crashes=(
            CrashRule(rank=2, at_op=60), CrashRule(rank=3, at_op=60),
        ))

        def prog(comm):
            dt = _distribute(comm)
            ckpt = DistributedCheckpoint("lost")
            ckpt.save(dt, 1, meta={})
            # The two victims die at their own op counts, so one may
            # still be alive at the first shrink: keep absorbing
            # failures until only ranks 0 and 1 remain.
            new = comm
            while new.size > 2:
                new = _survive_and_shrink(new)
            with pytest.raises(CheckpointError, match="no complete step"):
                ckpt.recover(new)
            return "checked"

        res = run_spmd(prog, 4, faults=plan, resilience=True)
        assert res.values.count("checked") == 2

    def test_prune_respects_keep(self):
        def prog(comm):
            dt = _distribute(comm)
            ckpt = DistributedCheckpoint("pr", keep=1)
            for step in (1, 2, 3):
                ckpt.save(dt, step, meta={"step": step})
            held = {
                key[2] for key, _ in comm.context.store_items(comm.world_rank)
                if key[0] == "pr"
            }
            return held

        res = run_spmd(prog, 4)
        # keep=1: after saving step 3, steps <= 2 are pruned.
        assert all(v == {3} for v in res.values)


class TestSanitizerInterplay:
    """S4: recovery under tracer AND sanitizer must not misfire."""

    def test_recovery_with_tracer_and_sanitizer(self):
        plan = FaultPlan(seed=0, crashes=(CrashRule(rank=1, at_op=40),))
        tracer = Tracer()

        def prog(comm):
            dt = _distribute(comm)
            ckpt = DistributedCheckpoint("s4")
            ckpt.save(dt, 1, meta={"ok": True})
            new = _survive_and_shrink(comm)
            step, meta, _ = ckpt.recover(new)
            return (new.size, step)

        res = run_spmd(prog, 4, faults=plan, resilience=True,
                       tracer=tracer, sanitize=True)
        done = [v for v in res.values if v is not None]
        assert done == [(3, 1), (3, 1), (3, 1)]
        # A shrink is not a collective mismatch, and the dead rank's
        # undelivered messages must not hard-fail finalization.
        kinds = [f.kind for f in res.sanitizer.findings]
        assert "collective-mismatch" not in kinds
        assert all(
            f.severity == "warning" for f in res.sanitizer.findings
        ), kinds
        assert len(tracer.spans) > 0
