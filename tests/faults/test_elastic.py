"""Elastic recovery: rank replacement, durable checkpoints, restart.

PR 10's acceptance surface.  ``recover="replace"`` must survive a
mid-mode rank kill (and a kill of the replacement itself) with the
world keeping its original shape and the factors bitwise-identical to
the fault-free run; the durable checkpoint tier must restart a brand
new invocation from disk with the same bitwise guarantee, and refuse
manifests that belong to a different input or world shape.
"""

from __future__ import annotations

import glob
import json
import os

import numpy as np
import pytest

from repro.core.ft import sthosvd_fault_tolerant
from repro.dist.dtensor import GridComms
from repro.dist.grid import ProcessorGrid
from repro.dist.redistribute import distribute_from_root
from repro.errors import CheckpointError, RankFailedError
from repro.faults import CrashRule, DistributedCheckpoint, FaultPlan
from repro.mpi import run_spmd

SHAPE = (12, 10, 8)
RANKS = (4, 3, 2)
FULL = np.asfortranarray(np.random.default_rng(7).standard_normal(SHAPE))


def _prog(comm, recover="replace", ckpt_dir=None, full=None,
          max_recoveries=2):
    res = sthosvd_fault_tolerant(
        comm, (FULL if full is None else full) if comm.rank == 0 else None,
        ranks=RANKS, method="qr", recover=recover, ckpt_dir=ckpt_dir,
        max_recoveries=max_recoveries,
    )
    return {
        "survivors": res.comm.size,
        "recoveries": res.recoveries,
        "events": res.events,
        "factors": [np.asarray(f).copy() for f in res.result.factors],
    }


def _done(res):
    vals = [v for v in res.values if v is not None]
    assert vals, "no rank completed"
    return vals


def _assert_factors_equal(vals, base, what):
    for v in vals:
        for a, b in zip(base, v["factors"]):
            assert np.array_equal(a, b), f"factors differ ({what})"


_CRASH = FaultPlan(seed=3, crashes=(CrashRule(rank=1, at_op=25),))


class TestReplaceRecovery:
    def test_replace_keeps_world_shape_and_is_bitwise(self):
        base = _done(run_spmd(_prog, 4, resilience=True))[0]
        assert base["recoveries"] == 0

        res = run_spmd(_prog, 4, faults=_CRASH, resilience=True)
        vals = _done(res)
        assert len(vals) == 4  # the replacement finished too
        assert all(v["survivors"] == 4 for v in vals)
        assert all(v["recoveries"] >= 1 for v in vals)
        _assert_factors_equal(vals, base["factors"], "replace")
        kind, detail = vals[0]["events"][-1]
        assert kind == "rank_failure"
        assert detail["mode"] == "replace" and detail["survivors"] == 4

    @pytest.mark.parametrize("backend", ["procs", "sockets"])
    def test_replace_backends(self, backend):
        base = _done(run_spmd(_prog, 4, resilience=True, backend=backend))[0]
        res = run_spmd(_prog, 4, faults=_CRASH, resilience=True,
                       backend=backend)
        vals = _done(res)
        assert len(vals) == 4
        assert all(v["survivors"] == 4 for v in vals)
        _assert_factors_equal(vals, base["factors"], f"replace on {backend}")

    def test_replacement_killed_too(self):
        """repeat=2 kills the respawned incarnation as well."""
        base = _done(run_spmd(_prog, 4, resilience=True))[0]
        plan = FaultPlan(seed=3, crashes=(
            CrashRule(rank=1, at_op=25, repeat=2),))
        res = run_spmd(_prog, 4, faults=plan, resilience=True)
        vals = _done(res)
        assert len(vals) == 4
        assert all(v["survivors"] == 4 for v in vals)
        _assert_factors_equal(vals, base["factors"], "double kill")

    def test_replayed_plan_yields_identical_recovery_sequence(self):
        runs = [run_spmd(_prog, 4, faults=_CRASH, resilience=True)
                for _ in range(2)]
        keys = [r.faults.trace_key() for r in runs]
        assert keys[0] == keys[1]
        seqs = [[(k, d.get("mode"), d.get("survivors"), d.get("resumed_step"))
                 for k, d in _done(r)[0]["events"]] for r in runs]
        assert seqs[0] == seqs[1]


class TestDurableCheckpoints:
    def test_manifest_contents_and_commit_discipline(self, tmp_path):
        run_spmd(_prog, 4, "shrink", str(tmp_path), resilience=True)
        manifests = sorted(glob.glob(str(tmp_path / "*-manifest-*.json")))
        assert manifests
        with open(manifests[-1]) as fh:
            man = json.load(fh)
        assert man["schema"] == "repro-dckpt/1"
        assert man["nprocs"] == 4
        assert man["input_shape"] == list(SHAPE)
        assert man["input_dtype"] == "float64"
        # Every shard the manifest names must exist: the manifest is
        # written last, so a committed manifest implies complete shards.
        for owner, files in man["shards"].items():
            for kind in ("own", "buddy"):
                assert os.path.exists(tmp_path / files[kind]), (owner, kind)

    def test_restart_from_disk_is_bitwise(self, tmp_path):
        base = _done(run_spmd(_prog, 4, resilience=True))[0]
        # A crashed-and-recovered run leaves durable checkpoints behind.
        run_spmd(_prog, 4, "replace", str(tmp_path), faults=_CRASH,
                 resilience=True)
        # A brand-new world pointed at the directory resumes from the
        # newest committed manifest and lands on identical factors.
        res = run_spmd(_prog, 4, "replace", str(tmp_path), resilience=True)
        vals = _done(res)
        assert len(vals) == 4
        assert all("disk_resume" in [e[0] for e in v["events"]]
                   for v in vals)
        _assert_factors_equal(vals, base["factors"], "disk restart")

    def test_manifest_round_trip_across_backends(self, tmp_path):
        """Shards written by the threads backend restart under procs."""
        base = _done(run_spmd(_prog, 4, resilience=True))[0]
        run_spmd(_prog, 4, "shrink", str(tmp_path), resilience=True)
        res = run_spmd(_prog, 4, "shrink", str(tmp_path), resilience=True,
                       backend="procs")
        vals = _done(res)
        assert all("disk_resume" in [e[0] for e in v["events"]]
                   for v in vals)
        _assert_factors_equal(vals, base["factors"], "cross-backend resume")

    def test_refuses_world_shape_mismatch(self, tmp_path):
        run_spmd(_prog, 4, "shrink", str(tmp_path), resilience=True)
        with pytest.raises(CheckpointError, match="4 ranks"):
            run_spmd(_prog, 2, "shrink", str(tmp_path), resilience=True)

    def test_refuses_input_mismatch(self, tmp_path):
        run_spmd(_prog, 4, "shrink", str(tmp_path), resilience=True)
        other = FULL.astype(np.float32)
        with pytest.raises(CheckpointError, match="float64"):
            run_spmd(_prog, 4, "shrink", str(tmp_path), other,
                     resilience=True)


def _two_crash_prog(comm):
    """Manual shrink loop: save once, survive two sequential crashes.

    The regression this guards: after the first shrink, entries whose
    buddy died are single-copy; without :meth:`DistributedCheckpoint.
    rebalance` the second crash can take the last copy and recovery
    fails with an incomplete checkpoint.
    """
    grid = ProcessorGrid.for_size(comm.size, FULL.ndim)
    comms = GridComms(comm, grid)
    dt = distribute_from_root(comms, FULL if comm.rank == 0 else None, root=0)
    ckpt = DistributedCheckpoint("rb", keep=2)
    ckpt.save(dt, 0, {"tag": "seed"})
    recoveries, moved = 0, []
    pending = False
    while True:
        try:
            if pending:
                comm.revoke()
                comm = comm.shrink()
                ckpt.recover(comm, root=0)
                moved.append(ckpt.rebalance(comm))
                pending = False
            for _ in range(120):
                comm.barrier()
            step, meta, recovered = ckpt.recover(comm, root=0)
            ok = None
            if comm.rank == 0:
                ok = bool(np.array_equal(recovered, FULL))
            return {"size": comm.size, "recoveries": recoveries,
                    "moved": moved, "ok": ok, "step": step}
        except RankFailedError:
            recoveries += 1
            if recoveries > 3:
                raise
            pending = True


class TestBuddyRebalance:
    def test_two_sequential_crashes_keep_every_block(self):
        plan = FaultPlan(seed=5, crashes=(
            CrashRule(rank=1, at_op=30),
            CrashRule(rank=2, at_op=90),
        ))
        res = run_spmd(_two_crash_prog, 4, faults=plan, resilience=True)
        vals = _done(res)
        assert sorted(res.failed_ranks) == [1, 2]
        assert all(v["size"] == 2 and v["recoveries"] == 2 for v in vals)
        # The first rebalance re-replicated at least one orphaned entry
        # (rank 1 was both an owner and rank 0's buddy).
        assert all(v["moved"][0] > 0 for v in vals)
        assert any(v["ok"] for v in vals)


class TestMaxRecoveriesExhausted:
    def test_original_error_carries_recovery_history(self):
        """Exhaustion re-raises the first failure, not the last retry's."""
        plan = FaultPlan(seed=3, crashes=(
            CrashRule(rank=1, at_op=25, repeat=4),))
        with pytest.raises(RankFailedError) as ei:
            run_spmd(_prog, 4, "replace", None, None, 1,
                     faults=plan, resilience=True)
        history = getattr(ei.value, "recovery_history", None)
        assert isinstance(history, tuple) and history
        assert history[0][0] == "rank_failure"
        assert history[0][1]["mode"] == "replace"


class TestObservability:
    def test_postmortem_carries_recovery_log(self):
        from repro.obs.postmortem import build_postmortem, render_postmortem

        class _Ctx:
            world_size = 2
            abort_reason = None
            recorder = None
            telemetry = None
            last_deadlock = None
            faults = None
            transport = None
            rank_incarnations = [0, 1]

            class abort_event:
                @staticmethod
                def is_set():
                    return False

            @staticmethod
            def failed_ranks():
                return []

            @staticmethod
            def rank_status(rank):
                return "finalized"

            @staticmethod
            def mailboxes():
                return []

            @staticmethod
            def recovery_events():
                return [{"action": "respawn", "world_rank": 1,
                         "incarnation": 1, "time": 12.5}]

        bundle = build_postmortem(_Ctx())
        json.dumps(bundle)
        assert bundle["recovery"][0]["action"] == "respawn"
        assert bundle["rank_incarnations"] == [0, 1]
        text = render_postmortem(bundle)
        assert "recovery (1 action" in text
        assert "respawn" in text
        assert "rank incarnations" in text

    def test_telemetry_reports_incarnations(self):
        from repro.obs.telemetry import TelemetryHub

        class _Ctx:
            world_size = 2
            abort_reason = None
            rank_incarnations = [0, 2]
            recovery_log = None

            class abort_event:
                @staticmethod
                def is_set():
                    return False

            @staticmethod
            def failed_ranks():
                return []

            @staticmethod
            def rank_status(rank):
                return "running"

            @staticmethod
            def recovery_events():
                return [{"action": "respawn"}, {"action": "replace_commit"}]

        hub = TelemetryHub()
        hub.attach(_Ctx(), backend="threads")
        snap = hub.snapshot()
        assert snap["ranks"]["1"]["incarnation"] == 2
        assert snap["recoveries"] == 2
        text = hub.render(snap)
        assert "recoveries=2" in text
        assert "inc" in text


class TestChaosReplaceCLI:
    def test_chaos_replace_with_durable_tier(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["chaos", "--shape", "8", "6", "4", "--procs", "2",
                   "--ranks", "3", "2", "2", "--replays", "2",
                   "--recover", "replace", "--ckpt-dir", str(tmp_path)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "all scenarios ok" in printed
        assert "FAIL" not in printed
        # Replays got their own checkpoint directories, each committed.
        assert glob.glob(str(tmp_path / "crash-rank0-r0" / "*-manifest-*"))
        assert glob.glob(str(tmp_path / "crash-rank0-r1" / "*-manifest-*"))
