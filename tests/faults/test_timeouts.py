"""Blocking paths honor ``recv_timeout`` (S1): no path hangs forever."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi import run_spmd


class TestBlockingTimeouts:
    def test_split_missing_member_times_out(self):
        def prog(comm):
            if comm.rank == 0:
                comm.split(color=0, key=0)  # rank 1 never joins
            return "done"

        with pytest.raises(CommunicatorError, match="timed out|deadlock|already finalized"):
            run_spmd(prog, 2, recv_timeout=0.6)

    def test_barrier_missing_member_times_out(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()  # rank 1 never arrives
            return "done"

        with pytest.raises(CommunicatorError, match="timed out|deadlock|already finalized"):
            run_spmd(prog, 2, recv_timeout=0.6)

    def test_sendrecv_missing_partner_times_out(self):
        def prog(comm):
            if comm.rank == 0:
                comm.sendrecv(np.arange(4), partner=1, tag=2)
            return "done"

        with pytest.raises(CommunicatorError, match="timed out|deadlock|already finalized"):
            run_spmd(prog, 2, recv_timeout=0.6)

    def test_shrink_is_woken_not_timed_out_by_late_joiners(self):
        # All ranks shrink with nobody dead: the rendezvous completes
        # well inside the timeout and yields an identical communicator.
        def prog(comm):
            new = comm.shrink()
            return (new.rank, new.size)

        res = run_spmd(prog, 3, recv_timeout=5.0)
        assert res.values == [(0, 3), (1, 3), (2, 3)]
