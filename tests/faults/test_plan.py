"""FaultPlan/rule validation and injector determinism (no SPMD runs)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CrashRule,
    FaultInjector,
    FaultPlan,
    KernelFaultRule,
    MessageFaultRule,
    Resilience,
)


class TestValidation:
    def test_empty_plan_is_valid(self):
        FaultPlan()

    def test_crash_rule_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=(CrashRule(rank=-1, at_op=1),))
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=(CrashRule(rank=0, at_op=0),))

    def test_one_crash_per_rank(self):
        with pytest.raises(ConfigurationError, match="one crash rule per rank"):
            FaultPlan(crashes=(CrashRule(0, 1), CrashRule(0, 5)))

    def test_message_rule_kind_and_prob(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(messages=(MessageFaultRule(kind="explode", prob=0.5),))
        with pytest.raises(ConfigurationError):
            FaultPlan(messages=(MessageFaultRule(kind="drop", prob=1.5),))
        with pytest.raises(ConfigurationError):
            FaultPlan(messages=(MessageFaultRule(kind="drop", prob=0.1,
                                                 tags="sometimes"),))

    def test_kernel_rule_kind(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(kernels=(KernelFaultRule("gesvd", 0, kind="zero"),))
        with pytest.raises(ConfigurationError):
            FaultPlan(kernels=(KernelFaultRule("gesvd", -1),))

    def test_resilience_bounds(self):
        with pytest.raises(ConfigurationError):
            Resilience(max_retries=0).validate()
        with pytest.raises(ConfigurationError):
            Resilience(poll_interval=0.0).validate()

    def test_injector_rejects_non_plan(self):
        with pytest.raises(ConfigurationError):
            FaultInjector({"seed": 0})


class TestRuleMatching:
    def test_tag_classes(self):
        user = MessageFaultRule(kind="drop", prob=1.0, tags="user")
        coll = MessageFaultRule(kind="drop", prob=1.0, tags="collectives")
        assert user.matches(0, tag=7, nbytes=10)
        assert not user.matches(0, tag=-3, nbytes=10)
        assert coll.matches(0, tag=-3, nbytes=10)
        assert not coll.matches(0, tag=7, nbytes=10)

    def test_explicit_tags_and_senders(self):
        r = MessageFaultRule(kind="corrupt", prob=1.0, tags=(5, 9), senders=(1,))
        assert r.matches(1, tag=5, nbytes=0)
        assert not r.matches(0, tag=5, nbytes=0)
        assert not r.matches(1, tag=6, nbytes=0)

    def test_size_window(self):
        r = MessageFaultRule(kind="drop", prob=1.0, min_bytes=8, max_bytes=64)
        assert r.matches(0, 0, 8) and r.matches(0, 0, 64)
        assert not r.matches(0, 0, 7)
        assert not r.matches(0, 0, 65)


class TestInjectorDeterminism:
    def test_same_seed_same_outcomes(self):
        rule = MessageFaultRule(kind="drop", prob=0.5)
        outcomes = []
        for _ in range(2):
            inj = FaultInjector(FaultPlan(seed=11, messages=(rule,)))
            outcomes.append(tuple(
                inj.message_outcome(0, 1, tag=0, nbytes=8) is not None
                for _ in range(64)
            ))
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_rank_streams_are_independent(self):
        rule = MessageFaultRule(kind="drop", prob=0.5)
        inj = FaultInjector(FaultPlan(seed=11, messages=(rule,)))
        a = tuple(inj.message_outcome(0, 1, 0, 8) is not None for _ in range(64))
        b = tuple(inj.message_outcome(1, 0, 0, 8) is not None for _ in range(64))
        assert a != b

    def test_trace_json_round_trips(self):
        inj = FaultInjector(FaultPlan(seed=0, kernels=(
            KernelFaultRule("gesvd", 0, kind="nan"),
        )))
        U, _ = inj.kernel_fault("gesvd", np.eye(3), rank=0)
        assert np.isnan(U[0, 0])
        events = json.loads(inj.trace_json())
        assert events == [
            {"rank": 0, "op_index": 0, "kind": "kernel:gesvd",
             "detail": [0, "nan"]},
        ]

    def test_corrupted_copy_never_touches_original(self):
        inj = FaultInjector(FaultPlan(seed=3))
        payload = [np.zeros(16), "label"]
        copy = inj.corrupted_copy(0, payload)
        assert np.all(payload[0] == 0)
        assert copy[1] == "label"
        assert np.count_nonzero(copy[0].view(np.uint8)) == 1

    def test_corrupted_copy_without_arrays_is_none(self):
        inj = FaultInjector(FaultPlan(seed=3))
        assert inj.corrupted_copy(0, {"just": "metadata"}) is None
