"""Dead-partner fast-fail must work on every transport backend (S2).

A blocked receive whose partner died — by injected crash or, on the
process backend, by the worker process dying outright — must wake
promptly with :class:`~repro.errors.RankFailedError` carrying the
failed-partner diagnosis, never sit out the full ``recv_timeout``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import RankFailedError
from repro.faults import CrashRule, FaultPlan
from repro.mpi import available_backends, run_spmd

TIMEOUT = 60.0  # generous recv_timeout: fast-fail must beat it easily


@pytest.fixture(params=list(available_backends()))
def backend(request):
    return request.param


def test_recv_from_crashed_rank_fast_fails(backend):
    """The receiver wakes well before recv_timeout when the sender dies."""

    def prog(comm):
        if comm.rank == 0:
            comm.send(np.ones(4), 1, tag=3)  # injected crash fires here
            return None
        comm.recv(0, tag=3)
        return None

    plan = FaultPlan(seed=5, crashes=(CrashRule(rank=0, at_op=1),))
    t0 = time.monotonic()
    with pytest.raises(RankFailedError, match="rank 0 already failed"):
        run_spmd(prog, 2, faults=plan, recv_timeout=TIMEOUT, backend=backend)
    assert time.monotonic() - t0 < TIMEOUT / 2


def test_collective_with_crashed_rank_fast_fails(backend):
    """Survivors inside a collective observe the death, not a timeout."""

    def prog(comm):
        comm.barrier()
        comm.barrier()  # rank 1 dies before/inside this one
        return comm.rank

    plan = FaultPlan(seed=6, crashes=(CrashRule(rank=1, at_op=2),))
    t0 = time.monotonic()
    with pytest.raises(RankFailedError):
        run_spmd(prog, 3, faults=plan, recv_timeout=TIMEOUT, backend=backend)
    assert time.monotonic() - t0 < TIMEOUT / 2


def test_survivors_can_shrink_past_the_death(backend):
    """The ULFM-style recovery loop works identically on both backends."""

    def prog(comm):
        try:
            comm.barrier()
            comm.barrier()
        except RankFailedError:
            comm.revoke()
            comm = comm.shrink()
        return float(comm.allreduce(np.array([1.0]))[0]), comm.size

    plan = FaultPlan(seed=6, crashes=(CrashRule(rank=2, at_op=2),))
    res = run_spmd(prog, 4, faults=plan, recv_timeout=TIMEOUT,
                   backend=backend)
    assert res.failed_ranks == [2]
    survivors = [v for v in res.values if v is not None]
    assert survivors == [(3.0, 3)] * 3


def test_sockets_hard_death_fast_fails_within_liveness_deadline():
    """A socket worker killed without warning (os._exit, simulating
    SIGKILL or a powered-off host) stops pinging; the master declares
    it dead once the liveness deadline passes — well inside
    recv_timeout — and blocked partners wake with RankFailedError."""
    import os

    from repro.mpi.transport import SocketTransport

    liveness = 2.0

    def prog(comm):
        if comm.rank == 0:
            os._exit(9)
        comm.recv(0, tag=1)
        return None

    t0 = time.monotonic()
    with pytest.raises(RankFailedError, match="rank 0"):
        run_spmd(prog, 2, recv_timeout=TIMEOUT,
                 backend=SocketTransport(liveness_timeout=liveness))
    elapsed = time.monotonic() - t0
    assert elapsed < TIMEOUT / 2
    # detection is liveness-bounded, not instant: the silence had to
    # outlast the deadline before the master would call it a death
    assert elapsed >= liveness * 0.5


def test_sockets_partition_postmortem_names_broken_link():
    """An injected partition kills a rank's links mid-run: survivors
    shrink past it and complete — no hang, no world abort — and the
    partition lands in the deterministic fault trace."""
    from repro.faults import NetworkFaultRule
    from repro.mpi.transport import SocketTransport
    from repro.obs import FlightRecorder

    def prog(comm):
        try:
            for i in range(6):
                comm.send(np.ones(8), (comm.rank + 1) % comm.size, tag=i)
                comm.recv((comm.rank - 1) % comm.size, tag=i)
        except RankFailedError:
            comm.revoke()
            comm = comm.shrink()
        return float(comm.allreduce(np.array([1.0]))[0]), comm.size

    plan = FaultPlan(seed=13, network=(
        NetworkFaultRule("partition", ranks=(1,), after_frames=3),
    ))
    rec = FlightRecorder(heartbeat_interval=0.05)
    res = run_spmd(prog, 3, faults=plan, recv_timeout=TIMEOUT, recorder=rec,
                   backend=SocketTransport(liveness_timeout=2.0))
    # graceful degradation: no world abort, survivors complete shrunk
    assert res.failed_ranks == [1]
    survivors = [v for v in res.values if v is not None]
    assert survivors == [(2.0, 2)] * 2
    assert (1, 3, "net:partition", (1,)) in res.faults.trace_key()


def test_sockets_partition_root_cause_in_written_postmortem(tmp_path):
    """When the program does NOT tolerate the partition, the launcher
    re-raises the survivor's RankFailedError and writes a postmortem
    whose network section carries the broken link's record: the
    injected partition, the liveness-deadline disconnect, and the
    heartbeat age at death."""
    from repro.faults import NetworkFaultRule
    from repro.mpi.transport import SocketTransport
    from repro.obs import FlightRecorder, render_postmortem

    def prog(comm):
        for i in range(6):
            comm.send(np.ones(8), (comm.rank + 1) % comm.size, tag=i)
            comm.recv((comm.rank - 1) % comm.size, tag=i)
        return comm.rank

    plan = FaultPlan(seed=13, network=(
        NetworkFaultRule("partition", ranks=(1,), after_frames=3),
    ))
    rec = FlightRecorder(heartbeat_interval=0.05,
                         postmortem_dir=str(tmp_path))
    with pytest.raises(RankFailedError):
        run_spmd(prog, 3, faults=plan, recv_timeout=TIMEOUT, recorder=rec,
                 backend=SocketTransport(liveness_timeout=2.0))

    bundle = rec.last_postmortem
    assert bundle is not None
    net = bundle["network"]
    assert net is not None
    broken = net["1"]
    assert "net:partition" in broken["faults"]
    assert broken["disconnect"] is not None  # liveness verdict recorded
    assert broken["heartbeat_age"] is not None
    # healthy links carry history but no disconnect verdict
    assert net["0"]["disconnect"] is None
    assert net["0"]["connect_attempts"] >= 2  # ctl + data hellos
    assert [1, 3, "net:partition", [1]] in bundle["fault_trace"]
    text = render_postmortem(bundle)
    assert "ROOT CAUSE" in text
    assert "network links" in text and "net:partition" in text


def test_procs_hard_death_fast_fails_without_lifecycle_message():
    """A worker killed without warning (os._exit, simulating segfault or
    OOM kill) is detected through its pipe EOF: partners blocked on it
    wake with RankFailedError long before recv_timeout."""
    import os

    def prog(comm):
        if comm.rank == 0:
            os._exit(11)
        comm.recv(0, tag=1)
        return None

    t0 = time.monotonic()
    with pytest.raises(RankFailedError, match="rank 0"):
        run_spmd(prog, 2, recv_timeout=TIMEOUT, backend="procs")
    assert time.monotonic() - t0 < TIMEOUT / 2
