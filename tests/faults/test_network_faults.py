"""Deterministic network fault injection on the sockets backend.

The contract: network faults are *count-based* (connect attempts, data
frames), never wall-clock-based, so the same plan against the same
program yields the identical :class:`~repro.faults.FaultEvent` trace
run after run — the property every other fault kind in
:mod:`repro.faults` already guarantees, extended to the wire.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError, RankFailedError
from repro.faults import FaultPlan, NetworkFaultRule
from repro.faults.network import NetworkFaultState
from repro.mpi import run_spmd
from repro.mpi.transport import SocketTransport
from repro.mpi.transport.net import RetryPolicy


# ----------------------------------------------------------------------
# Rule validation
# ----------------------------------------------------------------------
def test_rule_validation_rejects_bad_kinds_and_bounds():
    with pytest.raises(Exception):
        FaultPlan(seed=0, network=(NetworkFaultRule("smoke-signals"),))
    with pytest.raises(Exception):
        FaultPlan(seed=0, network=(
            NetworkFaultRule("connect_refused", attempts=0),))
    with pytest.raises(Exception):
        FaultPlan(seed=0, network=(
            NetworkFaultRule("reset", after_frames=0),))
    with pytest.raises(Exception):
        FaultPlan(seed=0, network=(NetworkFaultRule("slow"),))  # no shaping


def test_rule_rank_scoping():
    rule = NetworkFaultRule("reset", ranks=(1, 3))
    assert rule.applies_to(1) and rule.applies_to(3)
    assert not rule.applies_to(0)
    assert NetworkFaultRule("reset").applies_to(7)  # None = all ranks


# ----------------------------------------------------------------------
# The state engine alone (no transport): count-based transitions
# ----------------------------------------------------------------------
def test_state_engine_refusals_then_accept():
    rules = (NetworkFaultRule("connect_refused", ranks=(0,), attempts=2),)
    st = NetworkFaultState(rules, rank=0)
    with pytest.raises(ConnectionRefusedError):
        st.on_connect_attempt("ctl")
    with pytest.raises(ConnectionRefusedError):
        st.on_connect_attempt("ctl")
    st.on_connect_attempt("ctl")  # budget exhausted: accepted
    kinds = [e[2] for e in st.drain_events()]
    assert kinds == ["net:connect_refused", "net:connect_refused"]


def test_state_engine_reset_and_partition_fire_on_frame_counts():
    rules = (NetworkFaultRule("reset", ranks=(0,), after_frames=2),
             NetworkFaultRule("partition", ranks=(0,), after_frames=4))
    st = NetworkFaultState(rules, rank=0)
    actions = [st.on_frame(10) for _ in range(5)]
    assert actions == ["send", "reset", "send", "dark", "dark"]
    assert st.dark
    kinds = [e[2] for e in st.drain_events()]
    assert kinds == ["net:reset", "net:partition"]


def test_state_engine_uncountable_frames_do_not_advance_rules():
    """Heartbeats/pings are timing-dependent traffic; excluding them
    from the frame count is what keeps the trace deterministic."""
    rules = (NetworkFaultRule("reset", ranks=(0,), after_frames=1),)
    st = NetworkFaultState(rules, rank=0)
    for _ in range(10):
        assert st.on_frame(8, countable=False) == "send"
    assert st.on_frame(8) == "reset"


# ----------------------------------------------------------------------
# End-to-end determinism over the sockets transport
# ----------------------------------------------------------------------
def _ring_prog(comm):
    for i in range(5):
        comm.send(np.ones(16), (comm.rank + 1) % comm.size, tag=i)
        comm.recv((comm.rank - 1) % comm.size, tag=i)
    return comm.rank


@pytest.mark.parametrize("rules", [
    (NetworkFaultRule("connect_refused", ranks=(1,), attempts=2),),
    (NetworkFaultRule("reset", ranks=(1,), after_frames=2),),
    (NetworkFaultRule("slow", ranks=(0,), latency_seconds=0.005),),
    (NetworkFaultRule("connect_refused", ranks=(2,), attempts=1),
     NetworkFaultRule("reset", ranks=(0,), after_frames=3),),
], ids=["refused", "reset", "slow", "mixed"])
def test_transient_fault_trace_deterministic(rules):
    plan = FaultPlan(seed=21, network=tuple(rules))
    keys = []
    for _ in range(3):
        res = run_spmd(_ring_prog, 3, faults=plan, backend="sockets")
        assert sorted(res.values) == [0, 1, 2]  # faults were survived
        keys.append(res.faults.trace_key())
    assert keys[0]  # something actually fired
    assert keys[0] == keys[1] == keys[2]


def test_partition_trace_and_outcome_deterministic():
    def prog(comm):
        try:
            return _ring_prog(comm)
        except RankFailedError:
            comm.revoke()
            comm = comm.shrink()
            return 100 + int(comm.allreduce(np.array([1.0]))[0])

    plan = FaultPlan(seed=4, network=(
        NetworkFaultRule("partition", ranks=(2,), after_frames=2),))
    outcomes = []
    for _ in range(2):
        res = run_spmd(prog, 3, faults=plan,
                       backend=SocketTransport(liveness_timeout=1.5))
        assert res.failed_ranks == [2]
        survivors = sorted(v for v in res.values if v is not None)
        outcomes.append((tuple(survivors), res.faults.trace_key()))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == (102, 102)
    assert (2, 2, "net:partition", (2,)) in outcomes[0][1]


def test_reset_does_not_corrupt_or_duplicate_messages():
    """A mid-stream reset is retransmitted exactly once: receivers see
    every message once, bitwise intact."""
    def prog(comm):
        if comm.rank == 0:
            for i in range(8):
                comm.send(np.arange(32.0) * (i + 1), 1, tag=i)
            return None
        return [comm.recv(0, tag=i).sum() for i in range(8)]

    plan = FaultPlan(seed=2, network=(
        NetworkFaultRule("reset", ranks=(0,), after_frames=3),))
    res = run_spmd(prog, 2, faults=plan, backend="sockets")
    want = [float(np.arange(32.0).sum() * (i + 1)) for i in range(8)]
    assert res.values[1] == want
    assert (0, 3, "net:reset", (256,)) in res.faults.trace_key()


def test_dead_send_path_is_attributed_not_a_clean_finalize():
    """A rank whose data link dies permanently (reconnects refused)
    must not finalize clean: the master skips the doomed drain wait
    and fails the rank with the send path as the named cause, so the
    blocked receiver's diagnosis is the lost delivery — not a
    misleading 'rank already finalized with an empty queue'."""
    def prog(comm):
        if comm.rank == 0:
            # Sabotage the worker's own data path: kill the socket and
            # point reconnects at a port nothing listens on, so the
            # staged delivery below can never ship.
            pump = comm.context._pump
            pump._fs.close()
            pump._addr = ("127.0.0.1", 1)
            comm.send(np.ones(4), 1, tag=7)
            return "finished"
        return comm.recv(0, tag=7)

    transport = SocketTransport(connect_policy=RetryPolicy(
        max_retries=1, backoff_base=0.01, backoff_cap=0.02, jitter=0.0))
    import time

    t0 = time.monotonic()
    with pytest.raises(RankFailedError, match="send path failed"):
        run_spmd(prog, 2, recv_timeout=60, backend=transport)
    # the master must not sit out the 30 s drain barrier first
    assert time.monotonic() - t0 < 15.0


def test_connect_retries_land_in_comm_trace_and_health():
    from repro.mpi import CommTrace

    plan = FaultPlan(seed=6, network=(
        NetworkFaultRule("connect_refused", ranks=(1,), attempts=2),))
    trace = CommTrace()
    transport = SocketTransport()
    res = run_spmd(_ring_prog, 3, faults=plan, comm_trace=trace,
                   backend=transport)
    assert sorted(res.values) == [0, 1, 2]
    assert trace.connect_retries(1) == 2
    assert trace.connect_retries(0) == 0
    health = transport.net_health
    assert health[1]["retries"] == 2
    assert health[1]["connect_attempts"] >= 4  # 2 refusals + ctl + data
    assert health[0]["connect_attempts"] >= 2  # ctl + data, no refusals


# ----------------------------------------------------------------------
# Rendezvous hardening: nothing is unpickled before authentication
# ----------------------------------------------------------------------
def test_rendezvous_rejects_pickle_and_bad_token_preauth(tmp_path):
    """The accept loop must never deserialize a pickle from an
    unauthenticated connection: a crafted pickled hello (the attack the
    pre-JSON protocol allowed) is dropped without executing anything,
    a JSON hello with a wrong token is dropped, and only the correct
    token earns the ``ok`` acknowledgement."""
    import json
    import os
    import pickle
    import socket as socketlib
    import struct
    import threading
    from types import SimpleNamespace

    from repro.mpi.transport.sockets import SocketTransport, _SockLink

    transport = SocketTransport()
    transport._shutdown = threading.Event()
    transport._boot_blobs = None
    transport.net_health = {0: {"connect_attempts": 0, "retries": 0,
                                "reconnects": 0, "heartbeat_age": None,
                                "disconnect": None, "faults": []}}
    listener = socketlib.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]
    links = [_SockLink(0)]
    context = SimpleNamespace(comm_trace=None, recorder=None)
    thread = threading.Thread(
        target=transport._accept_loop,
        args=(listener, links, "right-token", context), daemon=True,
    )
    thread.start()

    def frame(blob: bytes) -> bytes:
        return struct.pack("<I", len(blob)) + blob

    marker = str(tmp_path / "pwned")

    class Evil:
        def __reduce__(self):
            return (os.mkdir, (marker,))

    try:
        # A pickled hello that would mkdir on load — even with the
        # correct token in the old tuple slot — must be dropped with
        # the connection closed and the payload never deserialized.
        evil = pickle.dumps(
            (("hello", "ctl", 0, "right-token", Evil()), []), protocol=4
        )
        with socketlib.create_connection(("127.0.0.1", port), timeout=5) as s:
            s.sendall(frame(evil))
            s.settimeout(5)
            assert s.recv(1) == b""  # closed, no reply
        assert not os.path.exists(marker), "pre-auth pickle was executed"

        # A well-formed JSON hello with the wrong token: closed too.
        bad = json.dumps({"kind": "hello", "purpose": "ctl", "rank": 0,
                          "token": "wrong-token"}).encode()
        with socketlib.create_connection(("127.0.0.1", port), timeout=5) as s:
            s.sendall(frame(bad))
            s.settimeout(5)
            assert s.recv(1) == b""

        # The correct token is acknowledged with a JSON ok.
        good = json.dumps({"kind": "hello", "purpose": "ctl", "rank": 0,
                           "token": "right-token", "generation": 1,
                           "attempts": 1, "retries": 0}).encode()
        with socketlib.create_connection(("127.0.0.1", port), timeout=5) as s:
            s.sendall(frame(good))
            s.settimeout(5)
            raw = s.recv(65536)
            (length,) = struct.unpack("<I", raw[:4])
            reply = json.loads(raw[4:4 + length])
            assert reply["kind"] == "ok" and reply["world"] == 1
    finally:
        transport._shutdown.set()
        thread.join(timeout=5)
        listener.close()
    assert links[0].ctl is not None  # the authenticated hello attached


# ----------------------------------------------------------------------
# RetryPolicy unit behavior
# ----------------------------------------------------------------------
def test_retry_policy_backoff_is_bounded_exponential():
    p = RetryPolicy(max_retries=10, backoff_base=0.1, backoff_cap=0.4,
                    jitter=0.0)
    delays = [p.delay(a) for a in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]


def test_retry_policy_huge_attempt_counts_do_not_overflow():
    # A Request poll loop feeds an unbounded attempt counter into
    # delay(); 2.0 ** 1024 must not raise OverflowError and the cap
    # must still hold (regression: long-pending polls crashed at ~1s).
    p = RetryPolicy(backoff_base=1e-6, backoff_cap=1e-3, jitter=0.0)
    for attempt in (64, 1024, 10**6):
        assert p.delay(attempt) == 1e-3
    uncapped = RetryPolicy(backoff_base=1e-6, backoff_cap=None, jitter=0.0)
    assert uncapped.delay(10**6) == uncapped.delay(64)  # saturates, finite


def test_retry_policy_jitter_stays_within_fraction():
    rng = np.random.default_rng(0)
    p = RetryPolicy(max_retries=10, backoff_base=0.1, backoff_cap=1.0,
                    jitter=0.5)
    for attempt in range(6):
        base = min(0.1 * 2 ** attempt, 1.0)
        for _ in range(20):
            d = p.delay(attempt, rng=rng)
            assert base * 0.5 <= d <= base * 1.5


def test_retry_policy_run_retries_then_succeeds():
    calls = {"n": 0}
    sleeps = []

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionRefusedError("nope")
        return "ok"

    p = RetryPolicy(max_retries=5, backoff_base=0.01, backoff_cap=0.02,
                    jitter=0.0)
    out = p.run(flaky, retry_on=(ConnectionRefusedError,),
                sleep=sleeps.append)
    assert out == "ok" and calls["n"] == 3
    assert sleeps == [0.01, 0.02]


def test_retry_policy_run_exhausts_budget():
    def always():
        raise ConnectionRefusedError("still down")

    p = RetryPolicy(max_retries=3, backoff_base=0.0, backoff_cap=0.0,
                    jitter=0.0)
    with pytest.raises(ConnectionRefusedError):
        p.run(always, retry_on=(ConnectionRefusedError,),
              sleep=lambda _t: None)


def test_resilience_exposes_its_retry_policy():
    from repro.faults import Resilience

    pol = Resilience(max_retries=4, backoff_base=0.25).retry_policy()
    assert isinstance(pol, RetryPolicy)
    assert pol.max_retries == 4 and pol.backoff_base == 0.25
