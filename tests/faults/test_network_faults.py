"""Deterministic network fault injection on the sockets backend.

The contract: network faults are *count-based* (connect attempts, data
frames), never wall-clock-based, so the same plan against the same
program yields the identical :class:`~repro.faults.FaultEvent` trace
run after run — the property every other fault kind in
:mod:`repro.faults` already guarantees, extended to the wire.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError, RankFailedError
from repro.faults import FaultPlan, NetworkFaultRule
from repro.faults.network import NetworkFaultState
from repro.mpi import run_spmd
from repro.mpi.transport import SocketTransport
from repro.mpi.transport.net import RetryPolicy


# ----------------------------------------------------------------------
# Rule validation
# ----------------------------------------------------------------------
def test_rule_validation_rejects_bad_kinds_and_bounds():
    with pytest.raises(Exception):
        FaultPlan(seed=0, network=(NetworkFaultRule("smoke-signals"),))
    with pytest.raises(Exception):
        FaultPlan(seed=0, network=(
            NetworkFaultRule("connect_refused", attempts=0),))
    with pytest.raises(Exception):
        FaultPlan(seed=0, network=(
            NetworkFaultRule("reset", after_frames=0),))
    with pytest.raises(Exception):
        FaultPlan(seed=0, network=(NetworkFaultRule("slow"),))  # no shaping


def test_rule_rank_scoping():
    rule = NetworkFaultRule("reset", ranks=(1, 3))
    assert rule.applies_to(1) and rule.applies_to(3)
    assert not rule.applies_to(0)
    assert NetworkFaultRule("reset").applies_to(7)  # None = all ranks


# ----------------------------------------------------------------------
# The state engine alone (no transport): count-based transitions
# ----------------------------------------------------------------------
def test_state_engine_refusals_then_accept():
    rules = (NetworkFaultRule("connect_refused", ranks=(0,), attempts=2),)
    st = NetworkFaultState(rules, rank=0)
    with pytest.raises(ConnectionRefusedError):
        st.on_connect_attempt("ctl")
    with pytest.raises(ConnectionRefusedError):
        st.on_connect_attempt("ctl")
    st.on_connect_attempt("ctl")  # budget exhausted: accepted
    kinds = [e[2] for e in st.drain_events()]
    assert kinds == ["net:connect_refused", "net:connect_refused"]


def test_state_engine_reset_and_partition_fire_on_frame_counts():
    rules = (NetworkFaultRule("reset", ranks=(0,), after_frames=2),
             NetworkFaultRule("partition", ranks=(0,), after_frames=4))
    st = NetworkFaultState(rules, rank=0)
    actions = [st.on_frame(10) for _ in range(5)]
    assert actions == ["send", "reset", "send", "dark", "dark"]
    assert st.dark
    kinds = [e[2] for e in st.drain_events()]
    assert kinds == ["net:reset", "net:partition"]


def test_state_engine_uncountable_frames_do_not_advance_rules():
    """Heartbeats/pings are timing-dependent traffic; excluding them
    from the frame count is what keeps the trace deterministic."""
    rules = (NetworkFaultRule("reset", ranks=(0,), after_frames=1),)
    st = NetworkFaultState(rules, rank=0)
    for _ in range(10):
        assert st.on_frame(8, countable=False) == "send"
    assert st.on_frame(8) == "reset"


# ----------------------------------------------------------------------
# End-to-end determinism over the sockets transport
# ----------------------------------------------------------------------
def _ring_prog(comm):
    for i in range(5):
        comm.send(np.ones(16), (comm.rank + 1) % comm.size, tag=i)
        comm.recv((comm.rank - 1) % comm.size, tag=i)
    return comm.rank


@pytest.mark.parametrize("rules", [
    (NetworkFaultRule("connect_refused", ranks=(1,), attempts=2),),
    (NetworkFaultRule("reset", ranks=(1,), after_frames=2),),
    (NetworkFaultRule("slow", ranks=(0,), latency_seconds=0.005),),
    (NetworkFaultRule("connect_refused", ranks=(2,), attempts=1),
     NetworkFaultRule("reset", ranks=(0,), after_frames=3),),
], ids=["refused", "reset", "slow", "mixed"])
def test_transient_fault_trace_deterministic(rules):
    plan = FaultPlan(seed=21, network=tuple(rules))
    keys = []
    for _ in range(3):
        res = run_spmd(_ring_prog, 3, faults=plan, backend="sockets")
        assert sorted(res.values) == [0, 1, 2]  # faults were survived
        keys.append(res.faults.trace_key())
    assert keys[0]  # something actually fired
    assert keys[0] == keys[1] == keys[2]


def test_partition_trace_and_outcome_deterministic():
    def prog(comm):
        try:
            return _ring_prog(comm)
        except RankFailedError:
            comm.revoke()
            comm = comm.shrink()
            return 100 + int(comm.allreduce(np.array([1.0]))[0])

    plan = FaultPlan(seed=4, network=(
        NetworkFaultRule("partition", ranks=(2,), after_frames=2),))
    outcomes = []
    for _ in range(2):
        res = run_spmd(prog, 3, faults=plan,
                       backend=SocketTransport(liveness_timeout=1.5))
        assert res.failed_ranks == [2]
        survivors = sorted(v for v in res.values if v is not None)
        outcomes.append((tuple(survivors), res.faults.trace_key()))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == (102, 102)
    assert (2, 2, "net:partition", (2,)) in outcomes[0][1]


def test_reset_does_not_corrupt_or_duplicate_messages():
    """A mid-stream reset is retransmitted exactly once: receivers see
    every message once, bitwise intact."""
    def prog(comm):
        if comm.rank == 0:
            for i in range(8):
                comm.send(np.arange(32.0) * (i + 1), 1, tag=i)
            return None
        return [comm.recv(0, tag=i).sum() for i in range(8)]

    plan = FaultPlan(seed=2, network=(
        NetworkFaultRule("reset", ranks=(0,), after_frames=3),))
    res = run_spmd(prog, 2, faults=plan, backend="sockets")
    want = [float(np.arange(32.0).sum() * (i + 1)) for i in range(8)]
    assert res.values[1] == want
    assert (0, 3, "net:reset", (256,)) in res.faults.trace_key()


def test_connect_retries_land_in_comm_trace_and_health():
    from repro.mpi import CommTrace

    plan = FaultPlan(seed=6, network=(
        NetworkFaultRule("connect_refused", ranks=(1,), attempts=2),))
    trace = CommTrace()
    transport = SocketTransport()
    res = run_spmd(_ring_prog, 3, faults=plan, comm_trace=trace,
                   backend=transport)
    assert sorted(res.values) == [0, 1, 2]
    assert trace.connect_retries(1) == 2
    assert trace.connect_retries(0) == 0
    health = transport.net_health
    assert health[1]["retries"] == 2
    assert health[1]["connect_attempts"] >= 4  # 2 refusals + ctl + data
    assert health[0]["connect_attempts"] >= 2  # ctl + data, no refusals


# ----------------------------------------------------------------------
# RetryPolicy unit behavior
# ----------------------------------------------------------------------
def test_retry_policy_backoff_is_bounded_exponential():
    p = RetryPolicy(max_retries=10, backoff_base=0.1, backoff_cap=0.4,
                    jitter=0.0)
    delays = [p.delay(a) for a in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]


def test_retry_policy_jitter_stays_within_fraction():
    rng = np.random.default_rng(0)
    p = RetryPolicy(max_retries=10, backoff_base=0.1, backoff_cap=1.0,
                    jitter=0.5)
    for attempt in range(6):
        base = min(0.1 * 2 ** attempt, 1.0)
        for _ in range(20):
            d = p.delay(attempt, rng=rng)
            assert base * 0.5 <= d <= base * 1.5


def test_retry_policy_run_retries_then_succeeds():
    calls = {"n": 0}
    sleeps = []

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionRefusedError("nope")
        return "ok"

    p = RetryPolicy(max_retries=5, backoff_base=0.01, backoff_cap=0.02,
                    jitter=0.0)
    out = p.run(flaky, retry_on=(ConnectionRefusedError,),
                sleep=sleeps.append)
    assert out == "ok" and calls["n"] == 3
    assert sleeps == [0.01, 0.02]


def test_retry_policy_run_exhausts_budget():
    def always():
        raise ConnectionRefusedError("still down")

    p = RetryPolicy(max_retries=3, backoff_base=0.0, backoff_cap=0.0,
                    jitter=0.0)
    with pytest.raises(ConnectionRefusedError):
        p.run(always, retry_on=(ConnectionRefusedError,),
              sleep=lambda _t: None)


def test_resilience_exposes_its_retry_policy():
    from repro.faults import Resilience

    pol = Resilience(max_retries=4, backoff_base=0.25).retry_policy()
    assert isinstance(pol, RetryPolicy)
    assert pol.max_retries == 4 and pol.backoff_base == 0.25
