"""FlopCounter / PhaseTimer instrumentation tests."""

from __future__ import annotations

import time

import pytest

from repro.instrument import FlopCounter, PhaseTimer


class TestFlopCounter:
    def test_accumulation_by_phase_and_mode(self):
        c = FlopCounter()
        c.add(100, phase="lq", mode=0)
        c.add(50, phase="lq", mode=1)
        c.add(25, phase="svd", mode=0)
        assert c.total == 175
        assert c.phase_total("lq") == 150
        assert c.by_phase_mode[("lq", 0)] == 100
        assert c.phase_total("ttm") == 0

    def test_default_phase(self):
        c = FlopCounter()
        c.add(7)
        assert c.by_phase["other"] == 7
        assert c.by_phase_mode[("other", None)] == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FlopCounter().add(-1)

    def test_merge(self):
        a, b = FlopCounter(), FlopCounter()
        a.add(10, phase="lq", mode=0)
        b.add(5, phase="lq", mode=0)
        b.add(3, phase="ttm", mode=2)
        a.merge(b)
        assert a.total == 18
        assert a.by_phase_mode[("lq", 0)] == 15
        assert a.phase_total("ttm") == 3

    def test_snapshot(self):
        c = FlopCounter()
        c.add(4, phase="gram")
        snap = c.snapshot()
        assert snap == {"total": 4, "by_phase": {"gram": 4}}


class TestPhaseTimer:
    def test_accumulates_elapsed(self):
        t = PhaseTimer()
        with t.phase("lq", 0):
            time.sleep(0.01)
        with t.phase("lq", 1):
            time.sleep(0.01)
        assert t.by_phase["lq"] >= 0.02
        assert t.by_phase_mode[("lq", 0)] >= 0.01
        assert t.total == pytest.approx(sum(t.by_phase.values()))

    def test_exception_still_recorded(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError):
            with t.phase("svd"):
                time.sleep(0.005)
                raise RuntimeError
        assert t.by_phase["svd"] >= 0.005

    def test_merge_max_keeps_slowest(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.by_phase["lq"] = 1.0
        b.by_phase["lq"] = 2.0
        b.by_phase["ttm"] = 0.5
        a.merge_max(b)
        assert a.by_phase["lq"] == 2.0
        assert a.by_phase["ttm"] == 0.5
