"""Utility-module tests: validation, RNG spawning, table formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.precision import Precision, SINGLE, DOUBLE, resolve_precision
from repro.util import (
    check_axis,
    check_positive_int,
    check_shape_match,
    default_rng,
    ensure_ndarray,
    format_table,
    require,
    spawn_rngs,
)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="nope"):
            require(False, "nope")

    def test_check_positive_int(self):
        assert check_positive_int(np.int64(3), "x") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_check_axis(self):
        assert check_axis(-1, 3) == 2
        assert check_axis(0, 3) == 0
        with pytest.raises(ShapeError):
            check_axis(3, 3)
        with pytest.raises(ConfigurationError):
            check_axis("0", 3)

    def test_check_shape_match(self):
        check_shape_match((2, 3), [2, 3], "ok")
        with pytest.raises(ShapeError):
            check_shape_match((2, 3), (3, 2), "bad")

    def test_ensure_ndarray(self):
        a = ensure_ndarray([[1, 2]], "a", ndim=2)
        assert a.shape == (1, 2)
        with pytest.raises(ShapeError):
            ensure_ndarray([1, 2], "a", ndim=2)


class TestRng:
    def test_default_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert default_rng(g) is g

    def test_spawn_independent_reproducible(self):
        a = spawn_rngs(7, 3)
        b = spawn_rngs(7, 3)
        for x, y in zip(a, b):
            assert x.integers(0, 1000) == y.integers(0, 1000)
        # different children differ
        vals = {g.integers(0, 10**9) for g in spawn_rngs(7, 5)}
        assert len(vals) > 1


class TestPrecision:
    def test_resolve_aliases(self):
        for alias in ("single", "float32", "f32", np.float32, np.dtype(np.float32)):
            assert resolve_precision(alias) is SINGLE
        for alias in ("double", "float64", np.float64):
            assert resolve_precision(alias) is DOUBLE
        assert resolve_precision(SINGLE) is SINGLE

    def test_eps_values(self):
        assert SINGLE.eps == pytest.approx(2**-23)
        assert DOUBLE.eps == pytest.approx(2**-52)
        assert SINGLE.word_bytes == 4
        assert DOUBLE.word_bytes == 8

    def test_floors(self):
        assert SINGLE.gram_svd_floor == pytest.approx(np.sqrt(2**-23))
        assert DOUBLE.qr_svd_floor == pytest.approx(2**-52)

    def test_bad_precision(self):
        with pytest.raises(ConfigurationError):
            resolve_precision("half")
        with pytest.raises(ConfigurationError):
            resolve_precision(np.int32)
        with pytest.raises(ConfigurationError):
            resolve_precision(object())


class TestFormatTable:
    def test_alignment_and_title(self):
        txt = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]], title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_scientific_for_extremes(self):
        txt = format_table(["x"], [[1.23e-12]])
        assert "e-12" in txt

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        txt = format_table(["a"], [])
        assert "a" in txt
