"""Cross-module pipeline fuzzer.

One hypothesis-driven test sweeps the whole public surface: random
tensor, random algorithm (ST-HOSVD / HOSVD / HOOI), random method,
precision, ordering, and tolerance-or-ranks, then checks every invariant
that must hold regardless of the configuration:

* the error guarantee (when the tolerance clears the variant's floor);
* orthonormal factor columns;
* rank bounds (1 <= R_n <= I_n, and <= the unfolding's column count);
* estimated vs actual error consistency;
* determinism (same inputs -> identical result).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import hooi, hosvd, sthosvd
from repro.linalg import min_reachable_tolerance
from repro.tensor import DenseTensor


@st.composite
def pipeline_config(draw):
    ndim = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(2, 8)) for _ in range(ndim))
    algorithm = draw(st.sampled_from(["sthosvd", "hosvd", "hooi"]))
    method = draw(st.sampled_from(["qr", "gram", "gram-mixed"]))
    precision = draw(st.sampled_from(["single", "double"]))
    order = draw(st.sampled_from(["forward", "backward"]))
    use_tol = draw(st.booleans()) if algorithm != "hooi" else False
    if use_tol:
        tol = draw(st.sampled_from([0.5, 0.1, 0.02]))
        ranks = None
    else:
        tol = None
        ranks = tuple(draw(st.integers(1, s)) for s in shape)
    seed = draw(st.integers(0, 10**6))
    return shape, algorithm, method, precision, order, tol, ranks, seed


def _run(shape, algorithm, method, precision, order, tol, ranks, seed):
    rng = np.random.default_rng(seed)
    X = DenseTensor(rng.standard_normal(shape))
    if algorithm == "sthosvd":
        res = sthosvd(X, tol=tol, ranks=ranks, method=method,
                      precision=precision, mode_order=order)
        return X, res.tucker, res
    if algorithm == "hosvd":
        res = hosvd(X, tol=tol, ranks=ranks, method=method, precision=precision)
        return X, res.tucker, res
    res = hooi(X, ranks=ranks, method=method, precision=precision, max_iters=4)
    return X, res.tucker, None


@given(cfg=pipeline_config())
@settings(max_examples=60, deadline=None)
def test_pipeline_invariants(cfg):
    shape, algorithm, method, precision, order, tol, ranks, seed = cfg
    X, tucker, res = _run(*cfg)

    # --- rank bounds ------------------------------------------------------
    for n, (r, i) in enumerate(zip(tucker.ranks, shape)):
        assert 1 <= r <= i
    assert tucker.shape == shape

    # --- orthonormal factors ----------------------------------------------
    tol_orth = 1e-2 if precision == "single" else 1e-8
    for U in tucker.factors:
        gram = U.astype(np.float64).T @ U.astype(np.float64)
        assert np.abs(gram - np.eye(U.shape[1])).max() < tol_orth

    # --- error guarantee (only when tol clears the floor comfortably) ------
    if tol is not None:
        base = "gram" if method.startswith("gram") else "qr"
        eff_prec = "double" if method == "gram-mixed" else precision
        floor = min_reachable_tolerance(base, eff_prec)
        if tol > 100 * floor:
            err = tucker.rel_error(X)
            assert err <= tol * (1 + 1e-6)
            if res is not None:
                est = res.estimated_rel_error()
                # estimate and actual agree within a modest factor, once
                # both are meaningfully above the precision's roundoff
                # (a full-rank result estimates 0 while the actual error
                # is roundoff-level).
                assert est <= tol * (1 + 1e-6)
                roundoff = 1e3 * np.finfo(
                    np.float32 if precision == "single" else np.float64
                ).eps
                if err > roundoff and est > 0:
                    assert 0.2 < est / err < 5.0

    # --- approximation never exceeds the trivial bound ---------------------
    assert tucker.rel_error(X) <= 1.0 + 1e-9


@given(cfg=pipeline_config())
@settings(max_examples=20, deadline=None)
def test_pipeline_deterministic(cfg):
    _, t1, _ = _run(*cfg)
    _, t2, _ = _run(*cfg)
    assert t1.ranks == t2.ranks
    np.testing.assert_array_equal(t1.core.data, t2.core.data)
    for a, b in zip(t1.factors, t2.factors):
        np.testing.assert_array_equal(a, b)
