"""Tests for the structured triangle-on-pentagon QR kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.instrument import FlopCounter
from repro.linalg import tpqrt, tpqrt_reduce_triangles
from repro.linalg.flops import tpqrt_flops


def _gram(R):
    return R.T @ R


class TestRectangular:
    @pytest.mark.parametrize("n,m", [(4, 7), (4, 4), (4, 1), (1, 5), (6, 20)])
    def test_matches_dense_qr(self, rng, n, m):
        R = np.triu(rng.standard_normal((n, n)))
        B = rng.standard_normal((m, n))
        ref = np.linalg.qr(np.vstack([R, B]))[1]
        out = tpqrt(R.copy(), B.copy(), structure="rect")
        np.testing.assert_allclose(_gram(out), _gram(ref), atol=1e-10)

    def test_r_stays_upper_triangular(self, rng):
        R = np.triu(rng.standard_normal((5, 5)))
        B = rng.standard_normal((3, 5))
        out = tpqrt(R.copy(), B.copy())
        np.testing.assert_array_equal(np.tril(out, -1), 0)

    def test_b_annihilated_in_place(self, rng):
        R = np.triu(rng.standard_normal((4, 4)))
        B = rng.standard_normal((3, 4))
        tpqrt(R, B)
        np.testing.assert_array_equal(B, 0)

    def test_keep_reflectors(self, rng):
        R = np.triu(rng.standard_normal((4, 4)))
        B = rng.standard_normal((3, 4))
        tpqrt(R, B, keep_reflectors=True)
        assert np.any(B != 0)

    def test_zero_b_is_noop(self, rng):
        R = np.triu(rng.standard_normal((4, 4)))
        out = tpqrt(R.copy(), np.zeros((3, 4)))
        np.testing.assert_array_equal(out, R)

    def test_float32(self, rng):
        R = np.triu(rng.standard_normal((4, 4))).astype(np.float32)
        B = rng.standard_normal((5, 4)).astype(np.float32)
        out = tpqrt(R.copy(), B.copy())
        assert out.dtype == np.float32
        ref = np.linalg.qr(np.vstack([R, B]).astype(np.float64))[1]
        np.testing.assert_allclose(_gram(out), _gram(ref), rtol=1e-3, atol=1e-4)


class TestTriangular:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_matches_dense_qr(self, rng, n):
        R1 = np.triu(rng.standard_normal((n, n)))
        R2 = np.triu(rng.standard_normal((n, n)))
        ref = np.linalg.qr(np.vstack([R1, R2]))[1]
        out = tpqrt_reduce_triangles(R1, R2)
        np.testing.assert_allclose(_gram(out), _gram(ref), atol=1e-10)

    def test_inputs_not_modified(self, rng):
        R1 = np.triu(rng.standard_normal((4, 4)))
        R2 = np.triu(rng.standard_normal((4, 4)))
        c1, c2 = R1.copy(), R2.copy()
        tpqrt_reduce_triangles(R1, R2)
        np.testing.assert_array_equal(R1, c1)
        np.testing.assert_array_equal(R2, c2)

    def test_deterministic(self, rng):
        R1 = np.triu(rng.standard_normal((5, 5)))
        R2 = np.triu(rng.standard_normal((5, 5)))
        a = tpqrt_reduce_triangles(R1, R2)
        b = tpqrt_reduce_triangles(R1, R2)
        np.testing.assert_array_equal(a, b)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ShapeError):
            tpqrt_reduce_triangles(np.zeros((3, 3)), np.zeros((4, 4)))


class TestValidation:
    def test_r_must_be_square(self):
        with pytest.raises(ShapeError):
            tpqrt(np.zeros((3, 4)), np.zeros((2, 4)))

    def test_column_mismatch(self):
        with pytest.raises(ShapeError):
            tpqrt(np.zeros((3, 3)), np.zeros((2, 4)))

    def test_dtype_mismatch(self):
        with pytest.raises(ShapeError):
            tpqrt(np.zeros((3, 3)), np.zeros((2, 3), dtype=np.float32))

    def test_tri_structure_must_be_square(self):
        with pytest.raises(ShapeError):
            tpqrt(np.zeros((3, 3)), np.zeros((2, 3)), structure="tri")

    def test_unknown_structure(self):
        with pytest.raises(ShapeError):
            tpqrt(np.zeros((3, 3)), np.zeros((3, 3)), structure="hexagonal")


class TestFlops:
    def test_counter_uses_structured_count(self, rng):
        n = 6
        R = np.triu(rng.standard_normal((n, n)))
        B = np.triu(rng.standard_normal((n, n)))
        c = FlopCounter()
        tpqrt(R, B, structure="tri", counter=c)
        assert c.total == tpqrt_flops(n, n, n)
        # Structured triangular reduction must be cheaper than rectangular.
        assert tpqrt_flops(n, n, n) < tpqrt_flops(n, n, 0)

    def test_flops_validation(self):
        with pytest.raises(ValueError):
            tpqrt_flops(4, 3, 5)


@given(
    n=st.integers(1, 8),
    m=st.integers(1, 10),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_tpqrt_gram_invariant_property(n, m, seed):
    """[R; B]'s Gram is preserved by the structured elimination."""
    rng = np.random.default_rng(seed)
    R = np.triu(rng.standard_normal((n, n)))
    B = rng.standard_normal((m, n))
    stacked_gram = R.T @ R + B.T @ B
    out = tpqrt(R.copy(), B.copy())
    np.testing.assert_allclose(out.T @ out, stacked_gram, atol=1e-9)
