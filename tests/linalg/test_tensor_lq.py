"""Tests for the sequential TensorLQ (paper Alg. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.instrument import FlopCounter
from repro.tensor import DenseTensor
from repro.linalg import tensor_lq


class TestTensorLq:
    @pytest.mark.parametrize("backend", ["lapack", "householder"])
    def test_gram_identity_all_modes(self, tensor4, backend):
        for n in range(4):
            L = tensor_lq(tensor4, n, backend=backend)
            Y = tensor4.unfold(n)
            np.testing.assert_allclose(L @ L.T, Y @ Y.T, atol=1e-10)

    def test_lower_triangular_square(self, tensor4):
        for n in range(4):
            L = tensor_lq(tensor4, n)
            rows = tensor4.shape[n]
            assert L.shape == (rows, rows)
            np.testing.assert_array_equal(np.triu(L, 1), 0)

    def test_singular_values_match_unfolding(self, tensor4):
        for n in range(4):
            L = tensor_lq(tensor4, n)
            np.testing.assert_allclose(
                np.linalg.svd(L, compute_uv=False),
                np.linalg.svd(tensor4.unfold(n), compute_uv=False),
                atol=1e-10,
            )

    def test_mode_out_of_range(self, tensor4):
        with pytest.raises(ShapeError):
            tensor_lq(tensor4, 4)

    def test_two_mode_tensor(self, rng):
        X = DenseTensor(rng.standard_normal((5, 30)))
        for n in range(2):
            L = tensor_lq(X, n)
            Y = X.unfold(n)
            np.testing.assert_allclose(L @ L.T, Y @ Y.T, atol=1e-10)

    def test_tall_mode_needs_block_combining(self, rng):
        # Mode-1 blocks are (8 x 2): the first LQ must combine 4 blocks.
        X = DenseTensor(rng.standard_normal((2, 8, 12)))
        L = tensor_lq(X, 1)
        Y = X.unfold(1)
        np.testing.assert_allclose(L @ L.T, Y @ Y.T, atol=1e-10)

    def test_degenerate_unfolding_taller_than_wide(self, rng):
        # Mode-1 unfolding is 10 x 6: fewer columns than rows overall.
        X = DenseTensor(rng.standard_normal((2, 10, 3)))
        L = tensor_lq(X, 1)
        Y = X.unfold(1)
        np.testing.assert_allclose(L @ L.T, Y @ Y.T, atol=1e-10)

    def test_float32_pipeline(self, tensor4_f32):
        for n in range(4):
            L = tensor_lq(tensor4_f32, n)
            assert L.dtype == np.float32
            Y = tensor4_f32.unfold(n)
            np.testing.assert_allclose(
                L @ L.T, Y @ Y.T, rtol=2e-3, atol=2e-3
            )

    def test_input_not_mutated(self, tensor4):
        before = tensor4.copy()
        for n in range(4):
            tensor_lq(tensor4, n)
        assert tensor4 == before

    def test_counter_attributes_to_mode(self, tensor4):
        c = FlopCounter()
        tensor_lq(tensor4, 2, counter=c)
        assert c.total > 0
        assert sum(v for (ph, m), v in c.by_phase_mode.items() if m == 2) == c.total

    def test_accepts_raw_array(self, rng):
        arr = rng.standard_normal((4, 5, 6))
        L = tensor_lq(arr, 1)
        assert L.shape == (5, 5)


@given(
    shape=st.lists(st.integers(1, 6), min_size=2, max_size=4).map(tuple),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_tensor_lq_gram_property(shape, seed):
    rng = np.random.default_rng(seed)
    X = DenseTensor(rng.standard_normal(shape))
    for n in range(len(shape)):
        L = tensor_lq(X, n)
        Y = X.unfold(n)
        np.testing.assert_allclose(L @ L.T, Y @ Y.T, atol=1e-8)


class TestBinaryTreeVariant:
    def test_matches_flat_tree_gram(self, tensor4):
        from repro.linalg import tensor_lq_binary_tree

        for n in range(4):
            L1 = tensor_lq(tensor4, n)
            L2 = tensor_lq_binary_tree(tensor4, n, leaf_cols=16)
            np.testing.assert_allclose(L1 @ L1.T, L2 @ L2.T, atol=1e-9)

    def test_leaf_width_independent(self, tensor4):
        from repro.linalg import tensor_lq_binary_tree

        ref = tensor_lq(tensor4, 1)
        for leaf in (8, 32, 1024):
            L = tensor_lq_binary_tree(tensor4, 1, leaf_cols=leaf)
            np.testing.assert_allclose(L @ L.T, ref @ ref.T, atol=1e-9)

    def test_tall_unfolding(self, rng):
        from repro.linalg import tensor_lq_binary_tree

        X = DenseTensor(rng.standard_normal((9, 2, 3)))
        L = tensor_lq_binary_tree(X, 0)
        Y = X.unfold(0)
        np.testing.assert_allclose(L @ L.T, Y @ Y.T, atol=1e-9)

    def test_float32(self, tensor4_f32):
        from repro.linalg import tensor_lq_binary_tree

        L = tensor_lq_binary_tree(tensor4_f32, 2)
        assert L.dtype == np.float32
