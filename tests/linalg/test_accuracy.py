"""Tests for the Theorem 1/2 accuracy-floor utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg import (
    min_reachable_tolerance,
    singular_value_floor,
    subspace_angle,
    trustworthy_count,
)
from repro.precision import SINGLE, DOUBLE


class TestFloors:
    def test_qr_floor_is_eps(self):
        assert singular_value_floor(1.0, "qr", DOUBLE) == pytest.approx(2**-52)
        assert singular_value_floor(1.0, "qr", SINGLE) == pytest.approx(2**-23)

    def test_gram_floor_is_sqrt_eps(self):
        assert singular_value_floor(1.0, "gram", DOUBLE) == pytest.approx(2**-26)
        assert singular_value_floor(1.0, "gram", SINGLE) == pytest.approx(2**-11.5)

    def test_scales_with_norm(self):
        assert singular_value_floor(100.0, "qr", DOUBLE) == pytest.approx(100 * 2**-52)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            singular_value_floor(1.0, "randomized", DOUBLE)

    def test_floor_ordering_matches_fig1(self):
        """gram-f32 > {qr-f32, gram-f64} > qr-f64."""
        f = {
            ("gram", SINGLE): singular_value_floor(1.0, "gram", SINGLE),
            ("qr", SINGLE): singular_value_floor(1.0, "qr", SINGLE),
            ("gram", DOUBLE): singular_value_floor(1.0, "gram", DOUBLE),
            ("qr", DOUBLE): singular_value_floor(1.0, "qr", DOUBLE),
        }
        assert f[("gram", SINGLE)] > f[("qr", SINGLE)] > f[("gram", DOUBLE)] > f[("qr", DOUBLE)]


class TestTrustworthyCount:
    def test_counts_above_floor(self):
        sigma = np.array([1.0, 1e-3, 1e-6, 1e-9, 1e-12])
        assert trustworthy_count(sigma, 1.0, "gram", DOUBLE) == 3  # floor ~1.5e-8
        assert trustworthy_count(sigma, 1.0, "qr", DOUBLE) == 5
        assert trustworthy_count(sigma, 1.0, "gram", SINGLE) == 2  # floor ~3.5e-4


class TestMinReachableTolerance:
    def test_values(self):
        assert min_reachable_tolerance("qr", DOUBLE) == pytest.approx(2**-52)
        assert min_reachable_tolerance("gram", SINGLE) == pytest.approx(
            np.sqrt(2**-23)
        )

    def test_paper_tolerance_claims(self):
        """Sec. 5: 1e-8 requires QR double; 1e-4 is QR-single territory."""
        assert min_reachable_tolerance("qr", DOUBLE) < 1e-8
        assert min_reachable_tolerance("gram", DOUBLE) > 1e-9
        assert min_reachable_tolerance("qr", SINGLE) < 1e-4
        assert min_reachable_tolerance("gram", SINGLE) > 1e-4


class TestSubspaceAngle:
    def test_same_space_is_zero(self, rng):
        U = np.linalg.qr(rng.standard_normal((10, 3)))[0]
        # Any basis of the same space, e.g. rotated columns.
        Q = np.linalg.qr(rng.standard_normal((3, 3)))[0]
        assert subspace_angle(U, U @ Q) == pytest.approx(0.0, abs=1e-7)

    def test_orthogonal_spaces(self):
        U = np.eye(4)[:, :2]
        V = np.eye(4)[:, 2:]
        assert subspace_angle(U, V) == pytest.approx(np.pi / 2)

    def test_known_angle(self):
        theta = 0.3
        U = np.array([[1.0], [0.0]])
        V = np.array([[np.cos(theta)], [np.sin(theta)]])
        assert subspace_angle(U, V) == pytest.approx(theta, rel=1e-9)
