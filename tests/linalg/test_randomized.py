"""Randomized SVD tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.data import geometric_spectrum, matrix_with_spectrum, low_rank_tensor
from repro.instrument import FlopCounter
from repro.linalg import randomized_left_svd, tensor_randomized_svd


class TestRandomizedLeftSvd:
    def test_exact_on_low_rank(self, rng):
        A = rng.standard_normal((20, 5)) @ rng.standard_normal((5, 300))
        U, s = randomized_left_svd(A, 5, rng=0)
        sref = np.linalg.svd(A, compute_uv=False)[:5]
        np.testing.assert_allclose(s, sref, rtol=1e-10)
        np.testing.assert_allclose(U.T @ U, np.eye(5), atol=1e-10)

    def test_decaying_spectrum_accurate(self):
        true = geometric_spectrum(30, 1.0, 1e-8)
        A = matrix_with_spectrum(30, 400, true, rng=3)
        _, s = randomized_left_svd(A, 8, rng=1, power_iters=1)
        np.testing.assert_allclose(s, true[:8], rtol=1e-6)

    def test_output_shapes(self, rng):
        A = rng.standard_normal((12, 80))
        U, s = randomized_left_svd(A, 4, rng=0)
        assert U.shape == (12, 4)
        assert s.shape == (4,)

    def test_subspace_captures_energy(self, rng):
        A = rng.standard_normal((15, 6)) @ rng.standard_normal((6, 200))
        U, _ = randomized_left_svd(A, 6, rng=0)
        residual = A - U @ (U.T @ A)
        assert np.linalg.norm(residual) < 1e-8 * np.linalg.norm(A)

    def test_reproducible_given_seed(self, rng):
        A = rng.standard_normal((10, 50))
        s1 = randomized_left_svd(A, 3, rng=7)[1]
        s2 = randomized_left_svd(A, 3, rng=7)[1]
        np.testing.assert_array_equal(s1, s2)

    def test_dtype_follows_input(self, rng):
        A = rng.standard_normal((10, 50)).astype(np.float32)
        U, s = randomized_left_svd(A, 3, rng=0)
        assert U.dtype == np.float32

    def test_power_iterations_help_flat_tails(self, rng):
        true = np.concatenate([np.ones(5), np.full(45, 0.5)])
        A = matrix_with_spectrum(50, 500, true, rng=5)
        sref = np.linalg.svd(A, compute_uv=False)[:5]
        err0 = np.abs(randomized_left_svd(A, 5, rng=1, power_iters=0)[1] - sref).max()
        err2 = np.abs(randomized_left_svd(A, 5, rng=1, power_iters=3)[1] - sref).max()
        assert err2 <= err0 + 1e-12

    def test_validation(self, rng):
        A = rng.standard_normal((10, 20))
        with pytest.raises(ConfigurationError):
            randomized_left_svd(A, 0)
        with pytest.raises(ConfigurationError):
            randomized_left_svd(A, 11)
        with pytest.raises(ConfigurationError):
            randomized_left_svd(A, 3, oversample=-1)
        with pytest.raises(ShapeError):
            randomized_left_svd(np.ones(5), 1)

    def test_counter(self, rng):
        c = FlopCounter()
        randomized_left_svd(rng.standard_normal((10, 60)), 3, rng=0, counter=c)
        assert c.total > 0


class TestTensorRandomizedSvd:
    def test_matches_leading_singular_values(self):
        X = low_rank_tensor((14, 12, 10), (3, 4, 2), rng=2, noise=1e-10)
        for n, r in enumerate((3, 4, 2)):
            _, s = tensor_randomized_svd(X, n, r, rng=0)
            sref = np.linalg.svd(X.unfold(n), compute_uv=False)[:r]
            np.testing.assert_allclose(s, sref, rtol=1e-5)

    def test_in_sthosvd(self):
        from repro.core import sthosvd

        X = low_rank_tensor((16, 14, 12), (3, 3, 3), rng=4, noise=1e-10)
        res = sthosvd(X, ranks=(3, 3, 3), method="randomized")
        assert res.tucker.rel_error(X) < 1e-6

    def test_sthosvd_requires_ranks(self):
        from repro.core import sthosvd
        from repro.errors import ConfigurationError

        X = low_rank_tensor((8, 8, 8), (2, 2, 2), rng=0)
        with pytest.raises(ConfigurationError):
            sthosvd(X, tol=1e-4, method="randomized")

    def test_rank_validation(self):
        X = low_rank_tensor((8, 8, 8), (2, 2, 2), rng=0)
        with pytest.raises(ConfigurationError):
            tensor_randomized_svd(X, 0, 99)
