"""Tests for the from-scratch Householder QR/LQ kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.instrument import FlopCounter
from repro.linalg import (
    form_q,
    form_q_lq,
    householder_reflector,
    lq_factor,
    lq_l,
    qr_factor,
    qr_r,
)


class TestReflector:
    def test_annihilates_tail(self, rng):
        x = rng.standard_normal(7)
        v, tau, beta = householder_reflector(x)
        Hx = x - tau * v * (v @ x)
        assert Hx[0] == pytest.approx(beta, rel=1e-12)
        np.testing.assert_allclose(Hx[1:], 0, atol=1e-12)
        assert abs(beta) == pytest.approx(np.linalg.norm(x), rel=1e-12)

    def test_already_annihilated(self):
        x = np.array([3.0, 0.0, 0.0])
        v, tau, beta = householder_reflector(x)
        assert tau == 0.0
        assert beta == 3.0

    def test_single_element(self):
        v, tau, beta = householder_reflector(np.array([-2.5]))
        assert tau == 0.0
        assert beta == -2.5

    def test_float32_stays_float32(self, rng):
        x = rng.standard_normal(5).astype(np.float32)
        v, tau, beta = householder_reflector(x)
        assert v.dtype == np.float32
        assert np.asarray(tau).dtype == np.float32

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            householder_reflector(np.array([]))

    def test_matrix_rejected(self):
        with pytest.raises(ShapeError):
            householder_reflector(np.zeros((2, 2)))


class TestQrFactor:
    @pytest.mark.parametrize("m,n", [(8, 5), (5, 5), (5, 8), (20, 3), (1, 4), (4, 1)])
    def test_reconstruction(self, rng, m, n):
        A = rng.standard_normal((m, n))
        packed, taus = qr_factor(A)
        k = min(m, n)
        Q = form_q(packed, taus)
        R = np.triu(packed[:k, :])
        np.testing.assert_allclose(Q @ R, A, atol=1e-12)
        np.testing.assert_allclose(Q.T @ Q, np.eye(k), atol=1e-12)

    def test_matches_numpy_r_up_to_signs(self, rng):
        A = rng.standard_normal((10, 4))
        R_ours = qr_r(A)
        R_np = np.linalg.qr(A)[1]
        np.testing.assert_allclose(np.abs(R_ours), np.abs(R_np), atol=1e-12)

    def test_counter_charged(self, rng):
        A = rng.standard_normal((10, 4))
        c = FlopCounter()
        qr_r(A, counter=c, mode=2)
        assert c.total > 0
        assert c.by_phase_mode[("lq", 2)] == c.total

    def test_non_matrix_rejected(self):
        with pytest.raises(ShapeError):
            qr_factor(np.zeros(5))


class TestLqFactor:
    @pytest.mark.parametrize("m,n", [(5, 8), (5, 5), (8, 5), (3, 20), (1, 4)])
    def test_reconstruction(self, rng, m, n):
        A = rng.standard_normal((m, n))
        packed, taus = lq_factor(A)
        k = min(m, n)
        Q = form_q_lq(packed, taus)
        L = np.tril(packed[:, :k])
        np.testing.assert_allclose(L @ Q, A, atol=1e-12)
        np.testing.assert_allclose(Q @ Q.T, np.eye(k), atol=1e-12)

    def test_lq_transpose_consistency(self, rng):
        """LQ of A and QR of A^T give transposed triangles (up to signs)."""
        A = rng.standard_normal((4, 9))
        L = lq_l(A)
        R = qr_r(A.T)
        np.testing.assert_allclose(np.abs(L), np.abs(R.T), atol=1e-12)

    def test_gram_invariant(self, rng):
        A = rng.standard_normal((4, 50))
        L = lq_l(A)
        np.testing.assert_allclose(L @ L.T, A @ A.T, atol=1e-10)


class TestFormQ:
    def test_thin_q_shape(self, rng):
        A = rng.standard_normal((9, 4))
        packed, taus = qr_factor(A)
        Q = form_q(packed, taus, ncols=2)
        assert Q.shape == (9, 2)
        np.testing.assert_allclose(Q.T @ Q, np.eye(2), atol=1e-12)

    def test_bad_ncols(self, rng):
        A = rng.standard_normal((5, 3))
        packed, taus = qr_factor(A)
        with pytest.raises(ShapeError):
            form_q(packed, taus, ncols=6)


@given(
    m=st.integers(1, 12),
    n=st.integers(1, 12),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_qr_gram_identity_property(m, n, seed):
    """R^T R == A^T A regardless of shape: the invariant TSQR relies on."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    R = qr_r(A)
    np.testing.assert_allclose(R.T @ R, A.T @ A, atol=1e-10)


@given(
    m=st.integers(1, 10),
    n=st.integers(1, 10),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_lq_gram_identity_property(m, n, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    L = lq_l(A)
    np.testing.assert_allclose(L @ L.T, A @ A.T, atol=1e-10)
