"""Quantitative verification of the paper's Theorems 1 and 2 (Sec. 3.2).

Rather than only checking which method fails where (Fig. 1's shape),
these tests measure the actual error quantities the theorems bound —
singular value errors, per-vector angles, subspace angles, and low-rank
approximation errors — and verify each sits within a modest constant of
its bound, and that Gram-SVD's errors exhibit the extra ||A||/sigma
amplification factor relative to QR-SVD's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import geometric_spectrum, matrix_with_spectrum, random_orthonormal
from repro.linalg import gram_svd, qr_svd, subspace_angle

# A comfortably-resolvable spectrum for double precision with known gaps.
N = 40
SIGMA = geometric_spectrum(N, 1.0, 1e-10)
EPS_D = 2.0**-52
EPS_S = 2.0**-23


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(77)
    U = random_orthonormal(N, N, rng)
    V = random_orthonormal(N, N, rng)
    A = (U * SIGMA) @ V.T
    return A, U


class TestTheorem1QrSvd:
    def test_singular_value_absolute_error(self, problem):
        """|sigma_i~ - sigma_i| = O(eps ||A||) for every i (eq. 1)."""
        A, _ = problem
        _, s = qr_svd(A)
        err = np.abs(s - SIGMA)
        assert err.max() < 100 * EPS_D * SIGMA[0]

    def test_subspace_angle_bound(self, problem):
        """theta(U_k, U_k~) = O(eps ||A|| / gap_k) (eq. 3)."""
        A, U = problem
        Uc, s = qr_svd(A)
        for k in (5, 10, 20):
            gap = SIGMA[k - 1] - SIGMA[k]
            theta = subspace_angle(U[:, :k], Uc[:, :k])
            assert theta < 1000 * EPS_D * SIGMA[0] / gap

    def test_low_rank_error_matches_exact_truncation(self, problem):
        """eq. (4): computed projector error ~ exact truncated-SVD error."""
        A, _ = problem
        Uc, _ = qr_svd(A)
        for k in (5, 15):
            exact = np.sqrt(np.sum(SIGMA[k:] ** 2))  # Frobenius tail
            P = Uc[:, :k]
            resid = np.linalg.norm(A - P @ (P.T @ A))
            assert resid == pytest.approx(exact, rel=1e-6)

    def test_single_precision_scales_with_eps(self, problem):
        A, _ = problem
        _, s32 = qr_svd(A.astype(np.float32))
        err32 = np.abs(np.asarray(s32, dtype=np.float64) - SIGMA).max()
        _, s64 = qr_svd(A)
        err64 = np.abs(s64 - SIGMA).max()
        # errors scale roughly like the machine epsilons (huge ratio)
        assert err32 > 1e4 * err64
        assert err32 < 1e4 * EPS_S * SIGMA[0]


class TestTheorem2GramSvd:
    def test_amplification_factor_on_singular_values(self, problem):
        """Gram's sigma_i error carries the extra ||A||/sigma_i factor
        (eq. 5): small values degrade dramatically faster than QR's."""
        A, _ = problem
        _, s_qr = qr_svd(A)
        _, s_gram = gram_svd(A)
        err_qr = np.abs(s_qr - SIGMA)
        err_gram = np.abs(s_gram - SIGMA)
        # At sigma_i ~ 1e-6, the amplification ||A||/sigma_i ~ 1e6.
        idx = int(np.argmin(np.abs(SIGMA - 1e-6)))
        assert err_gram[idx] > 10 * err_qr[idx]
        # Leading values are fine for both.
        assert err_gram[0] < 100 * EPS_D

    def test_relative_error_blows_up_at_sqrt_eps(self, problem):
        """Values below sqrt(eps)||A|| have O(1)+ relative error (Sec. 3.2)."""
        A, _ = problem
        _, s_gram = gram_svd(A)
        rel = np.abs(s_gram - SIGMA) / SIGMA
        below_floor = SIGMA < np.sqrt(EPS_D) * SIGMA[0] / 10
        above_floor = SIGMA > np.sqrt(EPS_D) * SIGMA[0] * 100
        assert rel[below_floor].min() > 0.5  # noise
        assert rel[above_floor].max() < 1e-2  # fine

    def test_subspace_angle_amplified(self, problem):
        """eq. (7): the subspace bound carries ||A||/sigma_k too."""
        A, U = problem
        Uq, _ = qr_svd(A)
        Ug, _ = gram_svd(A)
        # Choose k where sigma_k ~ 1e-7: QR fine, Gram noisy.
        k = int(np.argmin(np.abs(SIGMA - 1e-7)))
        th_qr = subspace_angle(U[:, :k], Uq[:, :k])
        th_gram = subspace_angle(U[:, :k], Ug[:, :k])
        assert th_gram > 100 * th_qr

    def test_both_fine_for_well_conditioned_leading_space(self, problem):
        """Where ||A||/sigma_k is modest the two methods agree — the
        reason Gram-SVD is usable at all for loose tolerances."""
        A, U = problem
        Uq, _ = qr_svd(A)
        Ug, _ = gram_svd(A)
        k = 4  # sigma_4 ~ 0.1
        assert subspace_angle(U[:, :k], Ug[:, :k]) < 1e-11
        assert subspace_angle(Uq[:, :k], Ug[:, :k]) < 1e-11
