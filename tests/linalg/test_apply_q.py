"""Implicit-Q application (ormqr/ormlq) tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.linalg import apply_q, apply_q_lq, form_q, form_q_lq, lq_factor, qr_factor


class TestApplyQ:
    @pytest.fixture()
    def factorization(self, rng):
        A = rng.standard_normal((12, 5))
        packed, taus = qr_factor(A)
        Q = form_q(packed, taus, ncols=12)
        return A, packed, taus, Q

    def test_q_times_c(self, factorization, rng):
        _, packed, taus, Q = factorization
        C = rng.standard_normal((12, 4))
        np.testing.assert_allclose(apply_q(packed, taus, C), Q @ C, atol=1e-12)

    def test_qt_times_c(self, factorization, rng):
        _, packed, taus, Q = factorization
        C = rng.standard_normal((12, 4))
        np.testing.assert_allclose(
            apply_q(packed, taus, C, trans=True), Q.T @ C, atol=1e-12
        )

    def test_reconstructs_a(self, factorization):
        A, packed, taus, _ = factorization
        R = np.triu(packed[:5, :])
        RC = np.vstack([R, np.zeros((7, 5))])
        np.testing.assert_allclose(apply_q(packed, taus, RC), A, atol=1e-12)

    def test_roundtrip_q_qt(self, factorization, rng):
        _, packed, taus, _ = factorization
        C = rng.standard_normal((12, 3))
        back = apply_q(packed, taus, apply_q(packed, taus, C, trans=True))
        np.testing.assert_allclose(back, C, atol=1e-12)

    def test_vector_input(self, factorization, rng):
        _, packed, taus, Q = factorization
        c = rng.standard_normal(12)
        out = apply_q(packed, taus, c)
        assert out.ndim == 1
        np.testing.assert_allclose(out, Q @ c, atol=1e-12)

    def test_input_not_modified(self, factorization, rng):
        _, packed, taus, _ = factorization
        C = rng.standard_normal((12, 2))
        before = C.copy()
        apply_q(packed, taus, C)
        np.testing.assert_array_equal(C, before)

    def test_row_mismatch(self, factorization):
        _, packed, taus, _ = factorization
        with pytest.raises(ShapeError):
            apply_q(packed, taus, np.zeros((5, 2)))


class TestApplyQLq:
    @pytest.fixture()
    def factorization(self, rng):
        A = rng.standard_normal((4, 11))
        packed, taus = lq_factor(A)
        Q = form_q_lq(packed, taus, nrows=11)
        return A, packed, taus, Q

    def test_c_times_q(self, factorization, rng):
        _, packed, taus, Q = factorization
        C = rng.standard_normal((3, 11))
        np.testing.assert_allclose(apply_q_lq(packed, taus, C), C @ Q, atol=1e-12)

    def test_c_times_qt(self, factorization, rng):
        _, packed, taus, Q = factorization
        C = rng.standard_normal((3, 11))
        np.testing.assert_allclose(
            apply_q_lq(packed, taus, C, trans=True), C @ Q.T, atol=1e-12
        )

    def test_reconstructs_a(self, factorization):
        A, packed, taus, _ = factorization
        L = np.tril(packed[:, :4])
        Lp = np.hstack([L, np.zeros((4, 7))])
        np.testing.assert_allclose(apply_q_lq(packed, taus, Lp), A, atol=1e-12)

    def test_column_mismatch(self, factorization):
        _, packed, taus, _ = factorization
        with pytest.raises(ShapeError):
            apply_q_lq(packed, taus, np.zeros((2, 5)))


@given(m=st.integers(2, 12), n=st.integers(1, 10), seed=st.integers(0, 10**5))
@settings(max_examples=40, deadline=None)
def test_apply_q_orthogonality_property(m, n, seed):
    """Q application preserves norms (orthogonal operator)."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    packed, taus = qr_factor(A)
    c = rng.standard_normal(m)
    out = apply_q(packed, taus, c)
    assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(c), rel=1e-10)
