"""Tests for the Gram-SVD and QR-SVD algorithms, including the paper's
Sec. 3.2 accuracy separation between them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.data import geometric_spectrum, matrix_with_spectrum
from repro.linalg import (
    gram_matrix,
    gram_svd,
    qr_svd,
    svd_from_gram,
    tensor_gram,
    tensor_gram_svd,
    tensor_qr_svd,
)


class TestGramMatrix:
    def test_matches_definition(self, rng):
        A = rng.standard_normal((5, 40))
        np.testing.assert_allclose(gram_matrix(A), A @ A.T, atol=1e-12)

    def test_symmetric(self, rng):
        G = gram_matrix(rng.standard_normal((6, 30)))
        np.testing.assert_array_equal(G, G.T)

    def test_tensor_gram_all_modes(self, tensor4):
        for n in range(4):
            Y = tensor4.unfold(n)
            np.testing.assert_allclose(tensor_gram(tensor4, n), Y @ Y.T, atol=1e-10)

    def test_tensor_gram_float32(self, tensor4_f32):
        G = tensor_gram(tensor4_f32, 1)
        assert G.dtype == np.float32


class TestSvdFromGram:
    def test_sorted_descending(self, rng):
        A = rng.standard_normal((6, 50))
        _, s = svd_from_gram(gram_matrix(A))
        assert np.all(np.diff(s) <= 0)

    def test_negative_eigenvalues_folded(self):
        # A Gram matrix polluted with a small negative eigenvalue (as
        # happens when accuracy is lost) must still yield sorted sigmas.
        G = np.diag([4.0, 1.0, -1e-12])
        _, s = svd_from_gram(G)
        assert s[0] == pytest.approx(2.0)
        assert np.all(s >= 0)

    def test_non_square_rejected(self):
        with pytest.raises(ShapeError):
            svd_from_gram(np.zeros((3, 4)))


class TestAgainstLapack:
    @pytest.mark.parametrize("fn", [qr_svd, gram_svd])
    def test_singular_values(self, rng, fn):
        A = rng.standard_normal((8, 100))
        _, s = fn(A)
        np.testing.assert_allclose(
            s, np.linalg.svd(A, compute_uv=False), atol=1e-10
        )

    @pytest.mark.parametrize("fn", [qr_svd, gram_svd])
    def test_left_vectors_span(self, rng, fn):
        A = rng.standard_normal((6, 80))
        U, s = fn(A)
        # U must diagonalize A A^T.
        np.testing.assert_allclose(U.T @ (A @ A.T) @ U, np.diag(s**2), atol=1e-8)

    def test_tensor_variants(self, tensor4):
        for n in range(4):
            sref = np.linalg.svd(tensor4.unfold(n), compute_uv=False)
            for fn in (tensor_qr_svd, tensor_gram_svd):
                _, s = fn(tensor4, n)
                np.testing.assert_allclose(s, sref, atol=1e-10)


class TestAccuracySeparation:
    """The heart of Sec. 3.2: QR-SVD resolves to eps, Gram-SVD to sqrt(eps)."""

    @pytest.fixture(scope="class")
    def decaying_matrix(self):
        s = geometric_spectrum(60, 1.0, 1e-12)
        return matrix_with_spectrum(60, 60, s, rng=11), s

    @staticmethod
    def _accurate_count(computed, true, tol_orders=1.0):
        computed = np.maximum(np.asarray(computed, dtype=np.float64), 1e-300)
        good = np.abs(np.log10(computed) - np.log10(true)) <= tol_orders
        # count the leading run of accurate values
        bad = np.nonzero(~good)[0]
        return int(bad[0]) if bad.size else len(true)

    def test_double_precision_ordering(self, decaying_matrix):
        A, s = decaying_matrix
        _, s_qr = qr_svd(A)
        _, s_gram = gram_svd(A)
        n_qr = self._accurate_count(s_qr, s)
        n_gram = self._accurate_count(s_gram, s)
        # QR resolves strictly deeper than Gram.
        assert n_qr > n_gram
        # Gram's floor is near sqrt(eps_d) ~ 1e-8: it cannot resolve 1e-11.
        assert s[n_gram - 1] > 1e-10
        # QR resolves everything here (floor eps_d ~ 1e-16 << 1e-12).
        assert n_qr == len(s)

    def test_single_precision_ordering(self, decaying_matrix):
        A, s = decaying_matrix
        Af = A.astype(np.float32)
        _, s_qr = qr_svd(Af)
        _, s_gram = gram_svd(Af)
        n_qr = self._accurate_count(s_qr, s)
        n_gram = self._accurate_count(s_gram, s)
        assert n_qr > n_gram
        # Gram single loses accuracy around sqrt(eps_s) ~ 3e-4.
        assert 1e-6 < s[n_gram - 1] < 1e-1

    def test_four_variant_ordering(self, decaying_matrix):
        """Fig. 1's ordering: Gram-f32 < QR-f32 <= Gram-f64 < QR-f64."""
        A, s = decaying_matrix
        Af = A.astype(np.float32)
        counts = {
            "gram32": self._accurate_count(gram_svd(Af)[1], s),
            "qr32": self._accurate_count(qr_svd(Af)[1], s),
            "gram64": self._accurate_count(gram_svd(A)[1], s),
            "qr64": self._accurate_count(qr_svd(A)[1], s),
        }
        assert counts["gram32"] < counts["qr32"]
        assert counts["gram32"] < counts["gram64"]
        assert counts["qr32"] <= counts["gram64"] + 5  # close, per Fig. 1
        assert counts["qr64"] == max(counts.values())
