"""One-sided Jacobi SVD tests (sequential kernel)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConvergenceError, ShapeError
from repro.instrument import FlopCounter
from repro.linalg import jacobi_left_svd, jacobi_orthogonalize_pairs
from repro.data import matrix_with_spectrum, geometric_spectrum


class TestOrthogonalizePairs:
    def test_single_pair_orthogonalizes(self, rng):
        W = rng.standard_normal((6, 2))
        rot = jacobi_orthogonalize_pairs(W)
        assert rot == 1
        assert abs(W[:, 0] @ W[:, 1]) < 1e-10 * np.linalg.norm(W)

    def test_orthogonal_input_no_rotation(self):
        W = np.eye(4)[:, :3].copy()
        assert jacobi_orthogonalize_pairs(W) == 0

    def test_norm_preserved(self, rng):
        W = rng.standard_normal((5, 4))
        before = np.linalg.norm(W)
        jacobi_orthogonalize_pairs(W)
        assert np.linalg.norm(W) == pytest.approx(before, rel=1e-12)

    def test_zero_column_skipped(self, rng):
        W = rng.standard_normal((5, 3))
        W[:, 1] = 0
        jacobi_orthogonalize_pairs(W)  # must not divide by zero
        np.testing.assert_array_equal(W[:, 1], 0)

    def test_explicit_pairs(self, rng):
        W = rng.standard_normal((6, 4))
        rot = jacobi_orthogonalize_pairs(W, pairs=[(0, 1)])
        assert rot <= 1
        assert abs(W[:, 0] @ W[:, 1]) < 1e-10 * np.linalg.norm(W)

    def test_vector_rejected(self):
        with pytest.raises(ShapeError):
            jacobi_orthogonalize_pairs(np.ones(4))


class TestJacobiLeftSvd:
    def test_matches_lapack(self, rng):
        A = rng.standard_normal((10, 8))
        U, s = jacobi_left_svd(A)
        np.testing.assert_allclose(s, np.linalg.svd(A, compute_uv=False), atol=1e-12)
        np.testing.assert_allclose(U.T @ U, np.eye(8), atol=1e-12)
        np.testing.assert_allclose(U.T @ (A @ A.T) @ U, np.diag(s**2), atol=1e-10)

    def test_triangular_input(self, rng):
        L = np.tril(rng.standard_normal((12, 12)))
        _, s = jacobi_left_svd(L)
        np.testing.assert_allclose(s, np.linalg.svd(L, compute_uv=False), atol=1e-11)

    def test_input_not_modified(self, rng):
        A = rng.standard_normal((6, 6))
        before = A.copy()
        jacobi_left_svd(A)
        np.testing.assert_array_equal(A, before)

    def test_exactly_rank_deficient(self, rng):
        A = rng.standard_normal((8, 2)) @ rng.standard_normal((2, 6))
        U, s = jacobi_left_svd(A)
        np.testing.assert_allclose(s[2:], 0, atol=1e-10)

    def test_float32(self, rng):
        A = rng.standard_normal((8, 8)).astype(np.float32)
        U, s = jacobi_left_svd(A)
        assert U.dtype == np.float32 and s.dtype == np.float32
        np.testing.assert_allclose(
            s, np.linalg.svd(A.astype(np.float64), compute_uv=False),
            rtol=2e-5, atol=1e-5,
        )

    def test_high_relative_accuracy(self):
        """Jacobi's selling point: tiny singular values to high relative
        accuracy on well-scaled matrices."""
        true = geometric_spectrum(20, 1.0, 1e-12)
        A = matrix_with_spectrum(20, 20, true, rng=1)
        _, s = jacobi_left_svd(A)
        rel = np.abs(s - true) / true
        assert rel.max() < 1e-3

    def test_convergence_error(self, rng):
        with pytest.raises(ConvergenceError):
            jacobi_left_svd(rng.standard_normal((20, 20)), max_sweeps=1)

    def test_counter(self, rng):
        c = FlopCounter()
        jacobi_left_svd(rng.standard_normal((6, 6)), counter=c)
        assert c.phase_total("svd") > 0


@given(
    m=st.integers(1, 9),
    n=st.integers(1, 9),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=50, deadline=None)
def test_jacobi_singular_values_property(m, n, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    _, s = jacobi_left_svd(A)
    ref = np.linalg.svd(A, compute_uv=False)
    np.testing.assert_allclose(s[: len(ref)], ref, atol=1e-9)
