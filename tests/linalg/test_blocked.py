"""Blocked (compact WY) Householder QR tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.linalg import build_t_factor, qr_factor_blocked, qr_r, qr_r_blocked


class TestBlockedQr:
    @pytest.mark.parametrize("m,n,block", [
        (40, 16, 8), (16, 16, 32), (64, 5, 2), (7, 25, 4), (33, 17, 16),
    ])
    def test_gram_identity(self, rng, m, n, block):
        A = rng.standard_normal((m, n))
        R = qr_r_blocked(A, block=block)
        np.testing.assert_allclose(R.T @ R, A.T @ A, atol=1e-10 * max(m, n))

    def test_matches_unblocked_up_to_signs(self, rng):
        A = rng.standard_normal((30, 12))
        np.testing.assert_allclose(
            np.abs(qr_r_blocked(A, block=5)), np.abs(qr_r(A)), atol=1e-10
        )

    def test_block_size_independent(self, rng):
        A = rng.standard_normal((25, 10))
        results = [np.abs(qr_r_blocked(A, block=b)) for b in (1, 3, 10, 64)]
        for R in results[1:]:
            np.testing.assert_allclose(R, results[0], atol=1e-10)

    def test_q_reconstruction_via_panels(self, rng):
        A = rng.standard_normal((20, 8))
        packed, panels = qr_factor_blocked(A, block=3)
        Q = np.eye(20)
        for off, V, T in reversed(panels):
            W = V.T @ Q[off:, :]
            Q[off:, :] -= V @ (T @ W)
        R = np.triu(packed[:8, :])
        np.testing.assert_allclose(Q[:, :8] @ R, A, atol=1e-11)
        np.testing.assert_allclose(Q.T @ Q, np.eye(20), atol=1e-11)

    def test_float32(self, rng):
        A = rng.standard_normal((30, 10)).astype(np.float32)
        R = qr_r_blocked(A)
        assert R.dtype == np.float32

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            qr_factor_blocked(np.ones(4))
        with pytest.raises(ShapeError):
            qr_factor_blocked(rng.standard_normal((4, 4)), block=0)


class TestTFactor:
    def test_block_reflector_equals_product(self, rng):
        """I - V T V^T must equal the product of the reflectors."""
        m, k = 12, 4
        A = rng.standard_normal((m, k))
        from repro.linalg import qr_factor

        packed, taus = qr_factor(A)
        V = np.zeros((m, k))
        for c in range(k):
            V[c, c] = 1
            V[c + 1 :, c] = packed[c + 1 :, c]
        T = build_t_factor(V, taus)
        block_q = np.eye(m) - V @ T @ V.T
        ref = np.eye(m)
        for c in range(k):
            v = V[:, c]
            ref = ref @ (np.eye(m) - taus[c] * np.outer(v, v))
        np.testing.assert_allclose(block_q, ref, atol=1e-12)

    def test_zero_tau_handled(self):
        V = np.eye(3, 2)
        T = build_t_factor(V, np.array([0.5, 0.0]))
        assert T[1, 1] == 0.0

    def test_tau_shape_checked(self):
        with pytest.raises(ShapeError):
            build_t_factor(np.eye(3, 2), np.array([0.5]))


@given(
    m=st.integers(1, 30),
    n=st.integers(1, 12),
    block=st.integers(1, 8),
    seed=st.integers(0, 10**5),
)
@settings(max_examples=40, deadline=None)
def test_blocked_gram_property(m, n, block, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    R = qr_r_blocked(A, block=block)
    np.testing.assert_allclose(R.T @ R, A.T @ A, atol=1e-8)
