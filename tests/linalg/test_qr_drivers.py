"""Tests for the geqr/gelq driver routines and backend agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.instrument import FlopCounter
from repro.linalg import geqr, gelq


class TestGeqr:
    @pytest.mark.parametrize("backend", ["lapack", "householder"])
    @pytest.mark.parametrize("m,n", [(12, 5), (5, 5), (5, 12)])
    def test_gram_identity(self, rng, backend, m, n):
        A = rng.standard_normal((m, n))
        R = geqr(A, backend=backend)
        assert R.shape == (min(m, n), n)
        np.testing.assert_allclose(R.T @ R, A.T @ A, atol=1e-10)

    def test_backends_agree_up_to_signs(self, rng):
        A = rng.standard_normal((10, 4))
        R1 = geqr(A, backend="lapack")
        R2 = geqr(A, backend="householder")
        np.testing.assert_allclose(np.abs(R1), np.abs(R2), atol=1e-10)

    def test_float32(self, rng):
        A = rng.standard_normal((20, 4)).astype(np.float32)
        R = geqr(A)
        assert R.dtype == np.float32

    def test_counter(self, rng):
        c = FlopCounter()
        geqr(rng.standard_normal((10, 4)), counter=c)
        assert c.total > 0

    def test_bad_backend(self, rng):
        with pytest.raises(ConfigurationError):
            geqr(rng.standard_normal((3, 3)), backend="cuda")

    def test_vector_rejected(self):
        with pytest.raises(ShapeError):
            geqr(np.ones(4))


class TestGelq:
    @pytest.mark.parametrize("backend", ["lapack", "householder"])
    @pytest.mark.parametrize("m,n", [(4, 15), (5, 5), (9, 4)])
    def test_gram_identity(self, rng, backend, m, n):
        A = rng.standard_normal((m, n))
        L = gelq(A, backend=backend)
        assert L.shape == (m, min(m, n))
        np.testing.assert_allclose(L @ L.T, A @ A.T, atol=1e-10)

    def test_lower_triangular(self, rng):
        L = gelq(rng.standard_normal((5, 20)))
        np.testing.assert_array_equal(np.triu(L, 1), 0)

    def test_on_transposed_view(self, rng):
        """The drivers must accept non-contiguous (transposed) views."""
        A = rng.standard_normal((30, 4))
        L = gelq(A.T)
        np.testing.assert_allclose(L @ L.T, A.T @ A, atol=1e-10)

    def test_singular_values_preserved(self, rng):
        A = rng.standard_normal((6, 40))
        L = gelq(A)
        np.testing.assert_allclose(
            np.linalg.svd(L, compute_uv=False),
            np.linalg.svd(A, compute_uv=False),
            atol=1e-10,
        )


class TestBlockedBackend:
    @pytest.mark.parametrize("m,n", [(40, 10), (10, 40), (12, 12)])
    def test_geqr_blocked(self, rng, m, n):
        A = rng.standard_normal((m, n))
        R = geqr(A, backend="blocked")
        np.testing.assert_allclose(R.T @ R, A.T @ A, atol=1e-10)

    @pytest.mark.parametrize("m,n", [(6, 30), (30, 6)])
    def test_gelq_blocked(self, rng, m, n):
        A = rng.standard_normal((m, n))
        L = gelq(A, backend="blocked")
        np.testing.assert_allclose(L @ L.T, A @ A.T, atol=1e-10)

    def test_counter_charged(self, rng):
        c = FlopCounter()
        geqr(rng.standard_normal((20, 5)), backend="blocked", counter=c)
        assert c.total > 0

    def test_sthosvd_with_blocked_backend(self, rng):
        from repro.core import sthosvd
        from repro.tensor import DenseTensor

        X = DenseTensor(rng.standard_normal((8, 9, 7)))
        a = sthosvd(X, tol=0.2, method="qr", backend="blocked")
        b = sthosvd(X, tol=0.2, method="qr", backend="lapack")
        assert a.ranks == b.ranks
