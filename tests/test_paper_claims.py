"""End-to-end integration tests of the paper's headline claims.

One test per claim, each exercising the full pipeline the way the
paper's evaluation does (the benchmark harness re-measures these at
larger scale; here they gate the test suite).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DenseTensor,
    DistributedTensor,
    GridComms,
    ProcessorGrid,
    compress,
    run_spmd,
    sthosvd,
    sthosvd_parallel,
)
from repro.data import geometric_spectrum, matrix_with_spectrum, tensor_with_mode_spectra
from repro.linalg import gram_svd, qr_svd
from repro.mpi import CostModel, ComputeRates
from repro.perf import ANDES, simulate_sthosvd, strong_scaling_grid


@pytest.fixture(scope="module")
def combustion_like():
    shape = (26, 24, 22)
    spectra = [geometric_spectrum(s, 1.0, 1e-10) for s in shape]
    return tensor_with_mode_spectra(shape, spectra, rng=99)


class TestClaim1NumericalStability:
    """'a numerically stable parallel algorithm for computing Tucker
    decompositions' — QR-SVD resolves eps, Gram-SVD only sqrt(eps)."""

    def test_matrix_level(self):
        s = geometric_spectrum(50, 1.0, 1e-14)
        A = matrix_with_spectrum(50, 50, s, rng=0)
        _, s_qr = qr_svd(A)
        _, s_gram = gram_svd(A)
        rel_qr = np.abs(s_qr - s) / s
        rel_gram = np.abs(s_gram - s) / s
        # At sigma ~ 1e-12 (below sqrt(eps_d)): QR fine, Gram lost.
        i = int(np.argmin(np.abs(s - 1e-12)))
        assert rel_qr[i] < 1e-2
        assert rel_gram[i] > 0.5

    def test_tensor_level_parallel(self, combustion_like):
        """The stable method survives parallel execution unchanged."""
        X = combustion_like

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((2, 2, 1)))
            dt = DistributedTensor.from_full(comms, X.data)
            res = sthosvd_parallel(dt, tol=1e-8, method="qr")
            return res.to_tucker().rel_error(X)

        err = run_spmd(prog, 4)[0]
        assert err <= 1e-8


class TestClaim2SinglePrecisionCapability:
    """'the generalization ... to enable single-precision computation'
    with QR-SVD achieving the same accuracy as double-precision Gram."""

    def test_qr_single_matches_gram_double(self, combustion_like):
        X = combustion_like
        tol = 1e-4
        qr_s = sthosvd(X, tol=tol, method="qr", precision="single")
        gram_d = sthosvd(X, tol=tol, method="gram", precision="double")
        assert qr_s.ranks == gram_d.ranks
        e1, e2 = qr_s.tucker.rel_error(X), gram_d.tucker.rel_error(X)
        assert abs(np.log10(e1) - np.log10(e2)) < 0.7
        assert e1 <= tol

    def test_gram_single_cannot(self, combustion_like):
        X = combustion_like
        res = sthosvd(X, tol=1e-4, method="gram", precision="single")
        assert res.tucker.compression_ratio() < 3.0  # failed to truncate


class TestClaim3RunningTimeReduction:
    """'improved running times (of up to 2x ...) for large approximation
    error thresholds' — via the cost model at paper scale and via
    logical clocks functionally."""

    def test_modeled_at_scale(self):
        runs = {}
        for method, prec in [("gram", "single"), ("gram", "double"),
                             ("qr", "single")]:
            runs[(method, prec)] = simulate_sthosvd(
                (256,) * 4, (32,) * 4, strong_scaling_grid(512, method),
                method=method, precision=prec,
                mode_order="backward" if method == "qr" else "forward",
                machine=ANDES,
            ).total_seconds
        # Gram-single ~2x faster than TuckerMPI (Gram-double).
        assert 1.8 < runs[("gram", "double")] / runs[("gram", "single")] < 2.2
        # QR-single faster than Gram-double.
        assert runs[("qr", "single")] < runs[("gram", "double")]

    def test_logical_clocks_functional(self, combustion_like):
        X = combustion_like.astype(np.float32)
        X64 = combustion_like

        def prog(comm, data):
            comms = GridComms(comm, ProcessorGrid((2, 2, 1)))
            dt = DistributedTensor.from_full(comms, data)
            sthosvd_parallel(dt, ranks=(6, 6, 6), method="qr")
            return comm.clock.now

        model = CostModel(compute=ComputeRates(double=6.4e9, single=13e9))
        t32 = run_spmd(prog, 4, X.data, cost_model=model).slowest_time
        t64 = run_spmd(prog, 4, X64.data, cost_model=model).slowest_time
        assert 1.5 < t64 / t32 < 2.3


class TestClaim4TightTolerances:
    """'the capability of accurately computing decompositions with very
    small approximation error thresholds (below 1e-8)'."""

    def test_only_qr_double_below_1em8(self, combustion_like):
        X = combustion_like
        tol = 3e-9
        ok = sthosvd(X, tol=tol, method="qr", precision="double")
        assert ok.tucker.rel_error(X) <= tol
        bad = sthosvd(X, tol=tol, method="gram", precision="double")
        # Gram-double either misses the error or wastes rank.
        assert (
            bad.tucker.rel_error(X) > tol
            or bad.tucker.compression_ratio() < ok.tucker.compression_ratio()
        )

    def test_auto_selection_routes_there(self):
        from repro.core import choose_variant

        assert choose_variant(3e-9).label == "qr-double"


class TestClaim5ScalesAsWellAsGram:
    """'our method scales as well as the existing approach'."""

    def test_parallel_efficiency_matches(self):
        speedups = {}
        for method in ("qr", "gram"):
            t = {}
            for cores in (32, 2048):
                t[cores] = simulate_sthosvd(
                    (256,) * 4, (32,) * 4, strong_scaling_grid(cores, method),
                    method=method,
                    mode_order="backward" if method == "qr" else "forward",
                    machine=ANDES,
                ).total_seconds
            speedups[method] = t[32] / t[2048]
        ratio = speedups["qr"] / speedups["gram"]
        assert 0.75 < ratio < 1.35  # same scaling behaviour


class TestEndToEndAuto:
    def test_compress_api_on_every_regime(self, combustion_like):
        X = combustion_like
        for tol in (1e-2, 1e-4, 1e-8):
            res = compress(X, tol)
            assert res.tucker.rel_error(X) <= tol * 1.01
