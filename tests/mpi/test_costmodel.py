"""Logical-clock cost model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi import CommCosts, ComputeRates, CostModel, RankClock, run_spmd


class TestCommCosts:
    def test_message_cost(self):
        c = CommCosts(alpha=1e-6, beta=1e-9)
        assert c.message_cost(1000) == pytest.approx(1e-6 + 1e-6)


class TestComputeRates:
    def test_single_twice_double(self):
        r = ComputeRates(double=5e9, single=10e9)
        assert r.flop_time(1e9, np.float64) == pytest.approx(0.2)
        assert r.flop_time(1e9, np.float32) == pytest.approx(0.1)

    def test_unknown_dtype(self):
        with pytest.raises(ValueError):
            ComputeRates().rate(np.int32)


class TestRankClock:
    def test_advance_and_phase(self):
        clk = RankClock()
        with clk.phase("lq", 0):
            clk.advance(1.0)
        with clk.phase("ttm", 0):
            clk.advance(0.5)
        assert clk.now == pytest.approx(1.5)
        assert clk.by_phase["lq"] == pytest.approx(1.0)
        assert clk.by_phase["ttm"] == pytest.approx(0.5)

    def test_sync_charges_idle_to_phase(self):
        clk = RankClock()
        with clk.phase("lq"):
            clk.sync_to(2.0)
        assert clk.now == 2.0
        assert clk.by_phase["lq"] == pytest.approx(2.0)

    def test_sync_to_past_is_noop(self):
        clk = RankClock()
        clk.advance(1.0)
        clk.sync_to(0.5)
        assert clk.now == 1.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            RankClock().advance(-1.0)

    def test_nested_phases_restore(self):
        clk = RankClock()
        with clk.phase("outer"):
            with clk.phase("inner"):
                clk.advance(1.0)
            clk.advance(2.0)
        assert clk.by_phase["inner"] == pytest.approx(1.0)
        assert clk.by_phase["outer"] == pytest.approx(2.0)


class TestModeledRuns:
    def test_clock_present_only_with_model(self):
        res = run_spmd(lambda c: c.clock, 2)
        assert res.clocks == [None, None]
        with pytest.raises(CommunicatorError):
            res.slowest_time

    def test_compute_advances_clock(self):
        model = CostModel(compute=ComputeRates(double=1e9, single=2e9))

        def prog(comm):
            comm.account_flops(10**9, np.float64)
            return comm.clock.now

        res = run_spmd(prog, 2, cost_model=model)
        assert res.values == [pytest.approx(1.0)] * 2
        assert res.slowest_time == pytest.approx(1.0)

    def test_single_precision_faster(self):
        model = CostModel()

        def prog(comm, dtype):
            comm.account_flops(10**8, dtype)
            return comm.clock.now

        t64 = run_spmd(prog, 1, np.float64, cost_model=model).slowest_time
        t32 = run_spmd(prog, 1, np.float32, cost_model=model).slowest_time
        assert t32 < t64

    def test_message_synchronizes_clocks(self):
        model = CostModel(comm=CommCosts(alpha=1.0, beta=0.0))

        def prog(comm):
            if comm.rank == 0:
                comm.account_flops(0)
                comm.send(np.zeros(1), 1)
            else:
                comm.recv(0)
            return comm.clock.now

        res = run_spmd(prog, 2, cost_model=model)
        # Receiver cannot finish before the sender's message exists.
        assert res.values[1] >= res.values[0]
        assert res.values[1] >= 1.0  # at least one alpha

    def test_straggler_dominates_barrier(self):
        model = CostModel()

        def prog(comm):
            if comm.rank == 0:
                comm.account_flops(10**9, np.float64)  # straggler
            comm.barrier()
            return comm.clock.now

        res = run_spmd(prog, 4, cost_model=model)
        t0 = 10**9 / model.compute.double
        for t in res.values:
            assert t >= t0

    def test_breakdown_from_slowest_rank(self):
        model = CostModel()

        def prog(comm):
            with comm.phase("lq", 0):
                comm.account_flops((comm.rank + 1) * 10**7, np.float64)
            return None

        res = run_spmd(prog, 3, cost_model=model)
        bd = res.slowest_rank_breakdown()
        assert bd["lq"] == pytest.approx(3 * 10**7 / model.compute.double)
