"""Nonblocking point-to-point and reduce_scatter tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi import run_spmd, waitall


class TestIsendIrecv:
    def test_basic_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(4), dest=1, tag=2)
                assert req.done()
                req.wait()
                return None
            req = comm.irecv(0, tag=2)
            return req.wait()

        res = run_spmd(prog, 2)
        np.testing.assert_array_equal(res[1], np.arange(4))

    def test_test_polls_without_blocking(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(0, tag=1)
                first_poll = req.test()[0]  # nothing sent yet... maybe
                comm.barrier()  # rank 0 sends before this barrier
                # After the barrier the message is definitely in the box.
                done, val = req.test()
                assert done
                return int(val[0]), first_poll in (True, False)
            comm.send(np.array([7]), 1, tag=1)
            comm.barrier()
            return None

        res = run_spmd(prog, 2)
        assert res[1][0] == 7

    def test_waitall_ordering(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.isend(np.array([i]), 1, tag=i)
                return None
            reqs = [comm.irecv(0, tag=i) for i in range(5)]
            vals = waitall(reqs)
            return [int(v[0]) for v in vals]

        res = run_spmd(prog, 2)
        assert res[1] == [0, 1, 2, 3, 4]

    def test_overlap_pattern(self):
        """Post all receives first, then sends — the overlap idiom."""

        def prog(comm):
            others = [r for r in range(comm.size) if r != comm.rank]
            reqs = {src: comm.irecv(src, tag=3) for src in others}
            for dst in others:
                comm.isend(np.array([comm.rank * 100 + dst]), dst, tag=3)
            got = {src: int(reqs[src].wait()[0]) for src in others}
            return all(got[src] == src * 100 + comm.rank for src in others)

        assert all(run_spmd(prog, 4).values)

    def test_wait_idempotent(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.array([1.5]), 1)
                return None
            req = comm.irecv(0)
            a = req.wait()
            b = req.wait()  # second wait returns the cached payload
            return float(a[0]), float(b[0])

        res = run_spmd(prog, 2)
        assert res[1] == (1.5, 1.5)

    def test_invalid_args(self):
        def prog(comm):
            comm.irecv(5)

        with pytest.raises(CommunicatorError):
            run_spmd(prog, 2)

    def test_from_token_reraises_staging_failure(self):
        """A send token resolved by a pump failure must surface the
        error from wait()/test(), never report a successful stage."""
        from repro.mpi.request import Request
        from repro.mpi.transport.worldproxy import SendToken

        token = SendToken()
        token.error = OSError("wire fell over")
        token.set()
        req = Request.from_token(token)
        with pytest.raises(CommunicatorError, match="wire fell over"):
            req.test()
        with pytest.raises(CommunicatorError, match="never reached"):
            req.wait()

    def test_from_token_clean_completion_unchanged(self):
        from repro.mpi.request import Request
        from repro.mpi.transport.worldproxy import SendToken

        token = SendToken()
        req = Request.from_token(token)
        assert req.test() == (False, None)
        token.set()
        assert req.test() == (True, None)
        assert req.wait() is None


class TestReduceScatter:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6])
    def test_sum_per_slot(self, p):
        def prog(comm):
            # rank r contributes value r*10+q to slot q
            values = [np.array([comm.rank * 10.0 + q]) for q in range(comm.size)]
            out = comm.reduce_scatter(values)
            expected = sum(r * 10.0 + comm.rank for r in range(comm.size))
            return float(out[0]) == expected

        assert all(run_spmd(prog, p).values)

    def test_custom_op(self):
        def prog(comm):
            values = [np.array([comm.rank + q]) for q in range(comm.size)]
            out = comm.reduce_scatter(values, op=np.maximum)
            return float(out[0])

        res = run_spmd(prog, 3)
        # slot q gets max over r of (r + q): (size-1) + q
        assert res.values == [2.0, 3.0, 4.0]

    def test_array_blocks(self):
        def prog(comm):
            values = [np.full((2, 2), comm.rank, dtype=float) for _ in range(comm.size)]
            out = comm.reduce_scatter(values)
            return float(out[0, 0])

        res = run_spmd(prog, 4)
        assert all(v == 6.0 for v in res.values)  # 0+1+2+3
