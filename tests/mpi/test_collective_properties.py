"""Property-based tests of collective semantics under random configurations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import run_spmd, allreduce_recursive_doubling, reduce_scatter_ring


@given(
    p=st.integers(1, 8),
    root=st.integers(0, 7),
    size=st.integers(0, 40),
    seed=st.integers(0, 10**5),
)
@settings(max_examples=25, deadline=None)
def test_bcast_delivers_exact_payload(p, root, size, seed):
    root %= p
    payload = np.random.default_rng(seed).standard_normal(size)

    def prog(comm):
        got = comm.bcast(payload if comm.rank == root else None, root=root)
        return np.array_equal(got, payload)

    assert all(run_spmd(prog, p).values)


@given(
    p=st.integers(1, 8),
    width=st.integers(1, 16),
    seed=st.integers(0, 10**5),
)
@settings(max_examples=25, deadline=None)
def test_allreduce_equals_local_sum(p, width, seed):
    rng = np.random.default_rng(seed)
    contributions = [rng.standard_normal(width) for _ in range(p)]
    expected = np.sum(contributions, axis=0)

    def prog(comm):
        out1 = comm.allreduce(contributions[comm.rank])
        out2 = allreduce_recursive_doubling(comm, contributions[comm.rank])
        return (
            np.allclose(out1, expected, atol=1e-10)
            and np.allclose(out2, expected, atol=1e-10)
        )

    assert all(run_spmd(prog, p).values)


@given(
    p=st.integers(1, 7),
    seed=st.integers(0, 10**5),
)
@settings(max_examples=20, deadline=None)
def test_reduce_scatter_implementations_agree(p, seed):
    rng = np.random.default_rng(seed)
    table = rng.standard_normal((p, p, 3))  # [source, slot, payload]

    def prog(comm):
        values = [table[comm.rank, q] for q in range(comm.size)]
        a = comm.reduce_scatter([v.copy() for v in values])
        b = reduce_scatter_ring(comm, [v.copy() for v in values])
        expected = table[:, comm.rank].sum(axis=0)
        return np.allclose(a, expected, atol=1e-10) and np.allclose(
            b, expected, atol=1e-10
        )

    assert all(run_spmd(prog, p).values)


@given(
    p=st.integers(2, 8),
    ncolors=st.integers(1, 3),
    seed=st.integers(0, 10**5),
)
@settings(max_examples=20, deadline=None)
def test_split_partitions_and_sums(p, ncolors, seed):
    rng = np.random.default_rng(seed)
    colors = [int(rng.integers(ncolors)) for _ in range(p)]

    def prog(comm):
        sub = comm.split(color=colors[comm.rank])
        total = sub.allreduce(np.array([float(comm.rank)]))
        members = [r for r in range(p) if colors[r] == colors[comm.rank]]
        return sub.size == len(members) and total[0] == sum(members)

    assert all(run_spmd(prog, p).values)


@given(
    p=st.integers(1, 6),
    seed=st.integers(0, 10**5),
)
@settings(max_examples=20, deadline=None)
def test_alltoall_is_transpose(p, seed):
    """alltoall implements a matrix transpose of the payload table."""
    rng = np.random.default_rng(seed)
    table = rng.standard_normal((p, p))

    def prog(comm):
        sent = [np.array([table[comm.rank, d]]) for d in range(comm.size)]
        got = comm.alltoall(sent)
        return all(got[s][0] == table[s, comm.rank] for s in range(comm.size))

    assert all(run_spmd(prog, p).values)
