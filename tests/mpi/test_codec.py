"""The shared transport codec must round-trip payloads bitwise.

Every non-threads backend (shm rings, framed sockets) routes ndarray
payloads through :mod:`repro.mpi.transport.codec`: arrays are split out
of the payload skeleton, shipped as raw bytes, and re-materialized on
the far side.  Bitwise fidelity here is what makes results
backend-invariant — any byte lost or reinterpreted would break the
``sthosvd`` equivalence guarantees downstream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.transport.codec import (
    decode_envelope,
    decode_exception,
    decode_origin,
    descr_nbytes,
    encode_envelope,
    encode_exception,
    encode_origin,
    join_arrays,
    materialize_array,
    prepare_arrays,
    split_arrays,
)

PAYLOADS = [
    np.arange(24, dtype=np.float64),
    np.asfortranarray(np.random.default_rng(0).standard_normal((5, 7))),
    np.random.default_rng(1).standard_normal((3, 4, 2))[::2],  # strided
    np.array(3.5),  # zero-dim
    np.arange(6, dtype=np.complex128) * (1 + 2j),
    np.array([], dtype=np.float32),
    np.arange(10, dtype=np.int64)[::3],  # non-contiguous 1-D
]


def _roundtrip(payload):
    skeleton, arrays = split_arrays(payload)
    views, descrs = prepare_arrays(arrays)
    rebuilt = [
        materialize_array(d, bytearray(bytes(v)))
        for d, v in zip(descrs, views)
    ]
    return join_arrays(skeleton, rebuilt)


@pytest.mark.parametrize("idx", range(len(PAYLOADS)))
def test_single_array_bitwise_roundtrip(idx):
    a = PAYLOADS[idx]
    out = _roundtrip(a)
    assert isinstance(out, np.ndarray)
    assert out.dtype == a.dtype and out.shape == a.shape
    assert np.array_equal(
        np.ascontiguousarray(a).view(np.uint8).reshape(-1) if a.size else a,
        np.ascontiguousarray(out).view(np.uint8).reshape(-1) if out.size else out,
    )


def test_nested_payload_roundtrip():
    payload = {
        "x": np.arange(8.0),
        "pair": (np.ones((2, 2)), [np.zeros(3), "tag"]),
        "scalar": 7,
        "none": None,
    }
    out = _roundtrip(payload)
    assert np.array_equal(out["x"], payload["x"])
    assert np.array_equal(out["pair"][0], payload["pair"][0])
    assert np.array_equal(out["pair"][1][0], payload["pair"][1][0])
    assert out["pair"][1][1] == "tag"
    assert out["scalar"] == 7 and out["none"] is None


def test_materialized_arrays_are_writable():
    """Receivers may reduce in place; the codec must not hand out
    read-only arrays (a regression the framed-socket path once had)."""
    out = _roundtrip(np.arange(5.0))
    out += 1.0
    assert out[0] == 1.0


def test_descr_nbytes_matches_buffer():
    a = np.asfortranarray(np.random.default_rng(2).standard_normal((4, 6)))
    views, descrs = prepare_arrays([a])
    assert descr_nbytes(descrs[0]) == len(bytes(views[0])) == a.nbytes


def test_fortran_order_preserved():
    a = np.asfortranarray(np.random.default_rng(3).standard_normal((4, 5)))
    out = _roundtrip(a)
    assert out.flags["F_CONTIGUOUS"]
    assert np.array_equal(out, a)


def test_envelope_roundtrip_preserves_metadata():
    from repro.mpi.context import Envelope

    env = Envelope(payload={"a": np.arange(4.0)}, send_time=1.25,
                   moved=True, nbytes=32, origin=None, seq=9,
                   checksum=1234)
    dec = decode_envelope(encode_envelope(env))
    assert dec.send_time == env.send_time
    assert dec.moved == env.moved
    assert dec.nbytes == env.nbytes
    assert dec.seq == env.seq and dec.checksum == env.checksum
    assert np.array_equal(dec.payload["a"], env.payload["a"])


def test_exception_roundtrip():
    from repro.errors import RankFailedError

    err = RankFailedError("rank 3 already failed (tag=7)")
    out = decode_exception(encode_exception(err))
    assert isinstance(out, RankFailedError)
    assert str(out) == str(err)


def test_origin_roundtrip():
    assert decode_origin(encode_origin(None)) is None
