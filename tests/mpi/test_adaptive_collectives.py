"""Adaptive collective engine: equivalence, zero-copy safety, dispatch.

Three suites pin down the size-adaptive engine:

* **Equivalence** — every collective algorithm (the old textbook
  default, each promoted alternative, and whatever the dispatch table
  selects) produces bitwise-identical results across P in {1, 2, 3, 5,
  8, 16}, including the non-power-of-two fold/unfold paths.  Payloads
  are integer-valued doubles, so every associativity order sums exactly.
* **Zero-copy safety** — ``send(copy=False)`` freezes the sender's
  buffer (reuse raises ``ValueError``) and the receiver's payload stays
  intact; read-only arrays are moved automatically (copy elision).
* **Dispatch observability** — tuning overrides demonstrably change the
  executed schedule (message counts), the legacy gather-to-root
  allgather is no longer a hotspot at P >= 16, and the TTM fiber
  reduce-scatter no longer snapshots its payloads.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.dist import (
    DistributedTensor,
    GridComms,
    ProcessorGrid,
    par_ttm_truncate,
)
from repro.dist.distribution import block_range
from repro.mpi import CollectiveTuning, CommTrace, run_spmd
from repro.tensor.dense import DenseTensor
from repro.tensor.ttm import ttm

P_SET = [1, 2, 3, 5, 8, 16]

# Tuning tables that force each long-message algorithm through the
# *dispatch* path (thresholds at zero) on tiny test payloads.
EAGER = CollectiveTuning(
    allreduce_ring_min_bytes=0,
    bcast_scatter_min_bytes=0,
    bcast_scatter_min_p=2,
    allgather_bruck_min_p=2,
)


def _ints(rank: int, size: int, seed: int = 0) -> np.ndarray:
    """Integer-valued float64 payload (exact under any summation order)."""
    rng = np.random.default_rng(1000 * seed + rank)
    return rng.integers(-50, 50, size=size).astype(np.float64)


def _assert_all_equal(reference: list, candidate: list) -> None:
    assert len(reference) == len(candidate)
    for ref, got in zip(reference, candidate):
        np.testing.assert_array_equal(np.asarray(ref), np.asarray(got))


class TestAllreduceEquivalence:
    @pytest.mark.parametrize("p", P_SET)
    def test_all_algorithms_bitwise_identical(self, p):
        def prog(comm, algorithm):
            x = _ints(comm.rank, 13)
            return comm.allreduce(x, algorithm=algorithm)

        ref = list(run_spmd(prog, p, "tree"))  # the old default
        for algo in ("recursive_doubling", "ring", None):
            _assert_all_equal(ref, list(run_spmd(prog, p, algo)))
        # Dispatched through the eager table (forces ring selection).
        _assert_all_equal(ref, list(run_spmd(prog, p, None, tuning=EAGER)))

    @pytest.mark.parametrize("p", [3, 5])
    def test_custom_op_through_nonpow2_fold(self, p):
        def prog(comm, algorithm):
            x = _ints(comm.rank, 9, seed=3)
            return comm.allreduce(x, op=np.maximum, algorithm=algorithm)

        ref = list(run_spmd(prog, p, "tree"))
        for algo in ("recursive_doubling", "ring"):
            _assert_all_equal(ref, list(run_spmd(prog, p, algo)))

    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_payload_shorter_than_ranks(self, p):
        """Ring blocks can be empty when the payload has < P elements."""
        def prog(comm, algorithm):
            x = _ints(comm.rank, 3, seed=5)
            return comm.allreduce(x, algorithm=algorithm)

        ref = list(run_spmd(prog, p, "tree"))
        _assert_all_equal(ref, list(run_spmd(prog, p, "ring")))


class TestBcastEquivalence:
    @pytest.mark.parametrize("p", P_SET)
    @pytest.mark.parametrize("size", [2, 7, 64])
    def test_binomial_vs_scatter_allgather(self, p, size):
        def prog(comm, algorithm):
            obj = _ints(0, size, seed=7) if comm.rank == 0 else None
            return comm.bcast(obj, root=0, algorithm=algorithm)

        ref = list(run_spmd(prog, p, "binomial"))  # the old default
        for algo in ("scatter_allgather", None):
            _assert_all_equal(ref, list(run_spmd(prog, p, algo)))
        _assert_all_equal(ref, list(run_spmd(prog, p, None, tuning=EAGER)))

    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_two_dimensional_payload_dispatches(self, p):
        """The engine's scatter+allgather path handles N-D payloads."""
        def prog(comm):
            obj = _ints(0, 24, seed=9).reshape(6, 4) if comm.rank == 0 else None
            return comm.bcast(obj, root=0)

        ref = list(run_spmd(prog, p))
        got = list(run_spmd(prog, p, tuning=EAGER))
        _assert_all_equal(ref, got)
        assert got[0].shape == (6, 4)

    @pytest.mark.parametrize("p", [2, 3, 8])
    def test_nonzero_root(self, p):
        def prog(comm):
            root = p - 1
            obj = _ints(99, 40, seed=11) if comm.rank == root else None
            return comm.bcast(obj, root=root)

        ref = list(run_spmd(prog, p))
        _assert_all_equal(ref, list(run_spmd(prog, p, tuning=EAGER)))


class TestAllgatherEquivalence:
    @pytest.mark.parametrize("p", P_SET)
    def test_all_algorithms_bitwise_identical(self, p):
        def prog(comm, algorithm):
            x = _ints(comm.rank, 11, seed=13)
            return comm.allgather(x, algorithm=algorithm)

        ref = list(run_spmd(prog, p, "gather_bcast"))  # the old default
        for algo in ("ring", "bruck", None):
            for tuning in (None, EAGER):
                got = list(run_spmd(prog, p, algo, tuning=tuning))
                for r in range(p):
                    _assert_all_equal(ref[r], got[r])

    @pytest.mark.parametrize("p", [1, 3, 5, 16])
    def test_object_payloads(self, p):
        """Bruck's block shuffling must handle non-array payloads too."""
        def prog(comm, algorithm):
            return comm.allgather(("rank", comm.rank), algorithm=algorithm)

        expected = [("rank", r) for r in range(p)]
        for algo in ("gather_bcast", "ring", "bruck", None):
            for values in run_spmd(prog, p, algo):
                assert values == expected


class TestReduceScatterEquivalence:
    @pytest.mark.parametrize("p", P_SET)
    def test_alltoall_vs_ring_bitwise_identical(self, p):
        def prog(comm, algorithm):
            # Uneven slot sizes (slot q has 4+q elements on every rank).
            values = [_ints(comm.rank, 4 + q, seed=17 + q) for q in range(p)]
            return comm.reduce_scatter(values, algorithm=algorithm)

        ref = list(run_spmd(prog, p, "alltoall"))  # the old default
        for algo in ("ring", None):
            _assert_all_equal(ref, list(run_spmd(prog, p, algo)))

    @pytest.mark.parametrize("p", [3, 8])
    def test_custom_op(self, p):
        def prog(comm, algorithm):
            values = [_ints(comm.rank, 6, seed=23 + q) for q in range(p)]
            return comm.reduce_scatter(values, op=np.maximum, algorithm=algorithm)

        ref = list(run_spmd(prog, p, "alltoall"))
        _assert_all_equal(ref, list(run_spmd(prog, p, "ring")))


class TestZeroCopySafety:
    def test_moved_buffer_is_frozen_and_receiver_intact(self):
        """Reusing a buffer after send(copy=False) raises instead of
        corrupting the receiver."""
        def prog(comm):
            if comm.rank == 0:
                buf = np.arange(8.0)
                comm.send(buf, 1, copy=False)
                with pytest.raises(ValueError):
                    buf[0] = 999.0
                comm.send(None, 1)  # let rank 1 finish checking first
                return None
            got = comm.recv(0)
            comm.recv(0)
            return np.array(got, copy=True)

        res = run_spmd(prog, 2)
        np.testing.assert_array_equal(res[1], np.arange(8.0))

    def test_default_send_still_copies(self):
        """The blocking-send contract is unchanged by default."""
        def prog(comm):
            if comm.rank == 0:
                buf = np.arange(4.0)
                comm.send(buf, 1)
                buf[:] = -1.0  # legal, and must not reach the receiver
                comm.send(None, 1)
                return None
            got = comm.recv(0)
            comm.recv(0)
            return np.array(got, copy=True)

        res = run_spmd(prog, 2)
        np.testing.assert_array_equal(res[1], np.arange(4.0))

    def test_readonly_array_elides_copy(self):
        trace = CommTrace()

        def prog(comm):
            if comm.rank == 0:
                buf = np.arange(16.0)
                buf.flags.writeable = False
                comm.send(buf, 1)
            else:
                comm.recv(0)

        run_spmd(prog, 2, comm_trace=trace)
        assert trace.moved_bytes(0) == 128
        assert trace.copied_bytes(0) == 0

    def test_collective_move_freezes_inputs(self):
        """reduce_scatter(copy=False) relinquishes the caller's pieces."""
        def prog(comm):
            p = comm.size
            values = [np.full(3, float(comm.rank + q)) for q in range(p)]
            out = comm.reduce_scatter(values, copy=False)
            for v in values:
                with pytest.raises(ValueError):
                    v[0] = -1.0
            return np.array(out, copy=True)

        res = run_spmd(prog, 4)
        for q in range(4):
            expected = np.full(3, float(sum(r + q for r in range(4))))
            np.testing.assert_array_equal(res[q], expected)


class TestDispatchObservability:
    def test_tuning_override_switches_allreduce_schedule(self):
        """Message counts prove which algorithm actually executed."""
        def prog(comm):
            return comm.allreduce(np.ones(4))

        t_default, t_ring = CommTrace(), CommTrace()
        run_spmd(prog, 4, comm_trace=t_default)
        run_spmd(prog, 4, comm_trace=t_ring,
                 tuning=CollectiveTuning(allreduce_ring_min_bytes=0))
        # Recursive doubling: log2(4) = 2 rounds x 4 ranks.
        assert t_default.total_messages() == 8
        # Ring: (P-1) reduce-scatter + (P-1) allgather rounds x 4 ranks.
        assert t_ring.total_messages() == 24

    def test_tuning_override_switches_bcast_schedule(self):
        def prog(comm):
            obj = np.ones(64) if comm.rank == 0 else None
            return comm.bcast(obj, root=0)

        t_binomial, t_sa = CommTrace(), CommTrace()
        run_spmd(prog, 4, comm_trace=t_binomial)
        run_spmd(prog, 4, comm_trace=t_sa,
                 tuning=CollectiveTuning(bcast_scatter_min_bytes=0,
                                         bcast_scatter_min_p=2))
        # Binomial tree: P - 1 point-to-point transfers in total.
        assert t_binomial.total_messages() == 3
        # SA: header tree (3) + scatter (3) + ring allgather (4 x 3).
        assert t_sa.total_messages() == 18

    def test_gather_root_no_longer_a_hotspot(self):
        """Regression (P >= 16): dispatched allgather is balanced; the
        legacy gather-to-root + bcast concentrated traffic on rank 0."""
        p = 16

        def prog(comm, algorithm):
            return comm.allgather(np.full(64, float(comm.rank)),
                                  algorithm=algorithm)

        t_new, t_old = CommTrace(), CommTrace()
        run_spmd(prog, p, None, comm_trace=t_new)
        run_spmd(prog, p, "gather_bcast", comm_trace=t_old)

        new_bytes = [t_new.sent_bytes(r) for r in range(p)]
        old_bytes = [t_old.sent_bytes(r) for r in range(p)]
        # Every rank sends the same volume under Bruck dissemination.
        assert max(new_bytes) <= 2 * (sum(new_bytes) / p)
        # The legacy schedule's worst rank is the root, and it carries
        # several times the balanced per-rank volume.
        assert old_bytes.index(max(old_bytes)) == 0
        assert max(old_bytes) >= 3 * max(new_bytes)

    def test_dict_payload_bytes_are_honest(self):
        trace = CommTrace()

        def prog(comm):
            if comm.rank == 0:
                comm.send({"block": np.zeros(10), "tag": 3}, 1)
            else:
                comm.recv(0)

        run_spmd(prog, 2, comm_trace=trace)
        assert trace.sent_bytes(0) == 80 + 8 + 16

    def test_dataclass_payload_bytes_are_honest(self):
        @dataclasses.dataclass
        class Header:
            data: np.ndarray
            mode: int

        trace = CommTrace()

        def prog(comm):
            if comm.rank == 0:
                comm.send(Header(data=np.zeros(4), mode=1), 1)
            else:
                comm.recv(0)

        run_spmd(prog, 2, comm_trace=trace)
        assert trace.sent_bytes(0) == 32 + 8 + 16


class TestTtmFiberReduceScatter:
    """The TTM hot path moves its staged pieces instead of copying them."""

    GRID = (4, 1, 1)
    X = np.random.default_rng(7).standard_normal((16, 6, 5))
    U = np.random.default_rng(8).standard_normal((16, 8))

    def test_new_path_copies_nothing_and_matches_legacy(self):
        t_new, t_old = CommTrace(), CommTrace()
        X, U, grid = self.X, self.U, self.GRID

        def prog_new(comm, trace):
            comms = GridComms(comm, ProcessorGrid(grid))
            dt = DistributedTensor.from_full(comms, X)
            trace.set_context("ttm-rs")
            out = par_ttm_truncate(dt, U, 0)
            trace.set_context(None)
            return np.array(out.local.data, copy=True)

        def prog_old(comm, trace):
            # The pre-dispatch schedule: stage the same pieces, then
            # alltoall + fold with defensive copies on every send.
            comms = GridComms(comm, ProcessorGrid(grid))
            dt = DistributedTensor.from_full(comms, X)
            p_n = grid[0]
            r0, r1 = block_range(X.shape[0], p_n, dt.coords[0])
            partial = ttm(dt.local, U[r0:r1, :].astype(dt.dtype), 0,
                          transpose=True)
            fiber = dt.comms.fiber(0)
            pieces = []
            for q in range(p_n):
                q0, q1 = block_range(U.shape[1], p_n, q)
                pieces.append(np.ascontiguousarray(partial.data[q0:q1]))
            trace.set_context("ttm-rs")
            block = fiber.reduce_scatter(pieces, algorithm="alltoall")
            trace.set_context(None)
            return np.array(block, copy=True)

        res_new = run_spmd(prog_new, 4, t_new, comm_trace=t_new)
        res_old = run_spmd(prog_old, 4, t_old, comm_trace=t_old)
        for r in range(4):
            np.testing.assert_allclose(res_new[r], res_old[r], atol=1e-12)

        # Zero-copy: the rewired path snapshots nothing; the legacy
        # schedule copied every payload it sent (>= 2x reduction in
        # copied bytes, trivially, since the new path copies zero).
        assert t_new.total_copied_bytes("ttm-rs") == 0
        assert t_new.total_moved_bytes("ttm-rs") > 0
        assert t_old.total_copied_bytes("ttm-rs") >= \
            2 * max(t_new.total_copied_bytes("ttm-rs"), 1)
        # Both schedules are bandwidth-optimal: wire volume is equal.
        assert t_new.total_bytes("ttm-rs") == t_old.total_bytes("ttm-rs")
