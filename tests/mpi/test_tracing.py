"""Communication-trace tests: assert the paper's message-count formulas
against the real execution of the parallel kernels."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dist import (
    DistributedTensor,
    GridComms,
    ProcessorGrid,
    butterfly_tsqr_reduce,
    par_tensor_gram,
    redistribute_unfolding_to_columns,
)
from repro.mpi import run_spmd, CommTrace


class TestTraceBasics:
    def test_counts_and_bytes(self):
        trace = CommTrace()

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1)  # 80 bytes
                comm.send(np.zeros(5, dtype=np.float32), 1)  # 20 bytes
            elif comm.rank == 1:
                comm.recv(0)
                comm.recv(0)

        run_spmd(prog, 2, comm_trace=trace)
        assert trace.sent_messages(0) == 2
        assert trace.sent_bytes(0) == 100
        assert trace.sent_messages(1) == 0

    def test_copied_vs_moved_split(self):
        trace = CommTrace()

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1)  # copied: 80 bytes
                comm.send(np.zeros(5), 1, copy=False)  # moved: 40 bytes
                frozen = np.zeros(3)
                frozen.flags.writeable = False
                comm.send(frozen, 1)  # copy elided: moved 24 bytes
            elif comm.rank == 1:
                for _ in range(3):
                    comm.recv(0)

        run_spmd(prog, 2, comm_trace=trace)
        assert trace.sent_bytes(0) == 144
        assert trace.copied_bytes(0) == 80
        assert trace.moved_bytes(0) == 64
        assert trace.total_copied_bytes() == 80
        assert trace.total_moved_bytes() == 64

    def test_copied_moved_default_zero(self):
        trace = CommTrace()
        assert trace.copied_bytes(0) == 0
        assert trace.moved_bytes(0) == 0
        # Legacy callers that don't pass `copied` count as fully copied.
        trace.record_send(0, 100)
        assert trace.copied_bytes(0) == 100
        assert trace.moved_bytes(0) == 0

    def test_contexts_attribute_traffic(self):
        trace = CommTrace()

        def prog(comm):
            trace.set_context("phase-a")
            comm.sendrecv(np.zeros(4), comm.rank ^ 1)
            trace.set_context("phase-b")
            comm.sendrecv(np.zeros(2), comm.rank ^ 1)
            trace.set_context(None)

        run_spmd(prog, 2, comm_trace=trace)
        assert trace.total_messages("phase-a") == 2
        assert trace.total_messages("phase-b") == 2
        assert trace.total_bytes("phase-a") == 2 * 32
        assert "phase-a" in trace.contexts()


class TestPaperMessageCounts:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_butterfly_log_p_messages(self, p):
        """Alg. 3's tree: log2(P) exchanges per rank (power-of-two P)."""
        trace = CommTrace()

        def prog(comm):
            R = np.triu(np.ones((4, 4)))
            butterfly_tsqr_reduce(comm, R)

        run_spmd(prog, p, comm_trace=trace)
        expected = int(math.log2(p))
        for r in range(p):
            assert trace.sent_messages(r) == expected

    @pytest.mark.parametrize("grid", [(4, 1, 1), (2, 3, 1)])
    def test_redistribution_pn_minus_1_messages(self, grid):
        """Sec. 3.5: the all-to-all sends P_n - 1 messages per processor."""
        X = np.random.default_rng(0).standard_normal((8, 9, 6))
        trace = CommTrace()
        n = 0
        p_n = grid[n]

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid(grid))
            dt = DistributedTensor.from_full(comms, X)
            trace.set_context("redist")
            redistribute_unfolding_to_columns(dt, n)
            trace.set_context(None)

        run_spmd(prog, int(np.prod(grid)), comm_trace=trace)
        for r in range(int(np.prod(grid))):
            assert trace.sent_messages(r, "redist") == p_n - 1

    def test_redistribution_volume_matches_model(self):
        """Per-rank redistribution volume ~ local tensor size * (P_n-1)/P_n."""
        X = np.random.default_rng(1).standard_normal((12, 10, 8))
        grid = (4, 1, 1)
        trace = CommTrace()

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid(grid))
            dt = DistributedTensor.from_full(comms, X)
            trace.set_context("redist")
            redistribute_unfolding_to_columns(dt, 0)
            trace.set_context(None)

        run_spmd(prog, 4, comm_trace=trace)
        local_bytes = X.nbytes / 4
        expected = local_bytes * 3 / 4
        for r in range(4):
            assert trace.sent_bytes(r, "redist") == pytest.approx(expected, rel=0.15)

    def test_gram_cheaper_in_messages_when_pn_1(self):
        """With P_n = 1 the Gram path skips redistribution entirely."""
        X = np.random.default_rng(2).standard_normal((6, 8, 10))
        t1, t2 = CommTrace(), CommTrace()

        def prog_mode(comm, mode, trace):
            comms = GridComms(comm, ProcessorGrid((1, 1, 4)))
            dt = DistributedTensor.from_full(comms, X)
            trace.set_context("gram")
            par_tensor_gram(dt, mode)
            trace.set_context(None)

        run_spmd(prog_mode, 4, 0, t1, comm_trace=t1)  # P_0 = 1
        run_spmd(prog_mode, 4, 2, t2, comm_trace=t2)  # P_2 = 4
        assert t1.total_bytes("gram") < t2.total_bytes("gram")

    def test_redistribution_is_zero_copy(self):
        """The alltoall payloads are staged temporaries — all moved."""
        X = np.random.default_rng(3).standard_normal((12, 10, 8))
        trace = CommTrace()

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((4, 1, 1)))
            dt = DistributedTensor.from_full(comms, X)
            trace.set_context("redist")
            redistribute_unfolding_to_columns(dt, 0)
            trace.set_context(None)

        run_spmd(prog, 4, comm_trace=trace)
        assert trace.total_bytes("redist") > 0
        assert trace.total_copied_bytes("redist") == 0
        assert trace.total_moved_bytes("redist") == trace.total_bytes("redist")

    def test_gram_allreduce_elides_copies(self):
        """G_local is marked read-only, so the allreduce moves every send."""
        X = np.random.default_rng(4).standard_normal((6, 8, 10))
        trace = CommTrace()

        def prog(comm):
            comms = GridComms(comm, ProcessorGrid((1, 1, 4)))
            dt = DistributedTensor.from_full(comms, X)
            trace.set_context("gram")
            par_tensor_gram(dt, 0)
            trace.set_context(None)

        run_spmd(prog, 4, comm_trace=trace)
        assert trace.total_bytes("gram") > 0
        assert trace.total_copied_bytes("gram") == 0


class TestReceiveTallies:
    def test_send_recv_totals_balance(self):
        """Every byte sent is received: world totals agree exactly
        (recv uses the sender's modeled wire size from the envelope)."""
        trace = CommTrace()

        def prog(comm):
            comm.allreduce(np.ones(8))
            comm.alltoall([np.full(3, comm.rank) for _ in range(comm.size)])
            comm.barrier()

        run_spmd(prog, 4, comm_trace=trace)
        assert trace.total_messages() == trace.total_recv_messages()
        assert trace.total_bytes() == trace.total_recv_bytes()
        assert trace.total_bytes() > 0

    def test_incast_asymmetry_at_gather_root(self):
        """A linear gather concentrates receives on the root."""
        trace = CommTrace()

        def prog(comm):
            comm.gather(np.ones(4), root=0)

        run_spmd(prog, 4, comm_trace=trace)
        assert trace.recv_messages(0) == 3
        assert trace.recv_bytes(0) == 3 * 32
        for r in range(1, 4):
            assert trace.recv_messages(r) == 0
            assert trace.sent_messages(r) == 1

    def test_recv_context_labels(self):
        trace = CommTrace()

        def prog(comm):
            trace.set_context("xchg")
            comm.sendrecv(np.zeros(4), comm.rank ^ 1)
            trace.set_context(None)

        run_spmd(prog, 2, comm_trace=trace)
        assert trace.total_recv_messages("xchg") == 2
        assert trace.total_recv_bytes("xchg") == 2 * 32
        assert trace.recv_bytes(0, "xchg") == 32

    def test_recv_only_context_still_listed(self):
        trace = CommTrace()
        trace.set_context("weird")
        trace.record_recv(0, 10)
        trace.set_context(None)
        assert "weird" in trace.contexts()
        assert 0 in trace.ranks("weird")


class TestExports:
    @staticmethod
    def _traced_world():
        trace = CommTrace()

        def prog(comm):
            comm.allreduce(np.ones(8))

        run_spmd(prog, 4, comm_trace=trace)
        return trace

    def test_to_dict_structure(self):
        trace = self._traced_world()
        snap = trace.to_dict()
        assert snap["context"] == "all"
        assert sorted(snap["ranks"]) == [0, 1, 2, 3]
        keys = {"sent_messages", "sent_bytes", "copied_bytes",
                "moved_bytes", "recv_messages", "recv_bytes",
                "retried_messages", "dropped_messages",
                "checksum_failures", "connect_retries"}
        for d in snap["ranks"].values():
            assert set(d) == keys
        assert set(snap["totals"]) == keys
        assert snap["totals"]["sent_messages"] == sum(
            d["sent_messages"] for d in snap["ranks"].values()
        )
        assert snap["totals"]["sent_bytes"] == snap["totals"]["recv_bytes"]

    def test_to_dict_is_json_serializable(self):
        import json

        trace = self._traced_world()
        assert json.loads(json.dumps(trace.to_dict()))["context"] == "all"

    def test_as_table_rows(self):
        trace = self._traced_world()
        table = trace.as_table(title="comm")
        assert "comm" in table
        for header in ("rank", "sent msgs", "recv bytes"):
            assert header in table
        assert "total" in table

    def test_empty_trace_exports(self):
        trace = CommTrace()
        snap = trace.to_dict()
        assert snap["ranks"] == {}
        assert snap["totals"]["sent_messages"] == 0
        assert "total" in trace.as_table()
