"""Cartesian communicator and alternative collective algorithm tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError, DistributionError
from repro.mpi import (
    CartComm,
    allgather_ring,
    allreduce_recursive_doubling,
    bcast_scatter_allgather,
    reduce_scatter_ring,
    run_spmd,
)

SIZES = [1, 2, 3, 4, 5, 7, 8]


class TestCartTopology:
    def test_coords_roundtrip(self):
        def prog(comm):
            cart = CartComm(comm, (2, 3, 2))
            ok = all(
                cart.rank_of(cart.coords_of(r)) == r for r in range(cart.size)
            )
            return ok, cart.coords == cart.coords_of(comm.rank)

        assert all(all(v) for v in run_spmd(prog, 12).values)

    def test_size_mismatch(self):
        def prog(comm):
            CartComm(comm, (2, 3))

        with pytest.raises(DistributionError):
            run_spmd(prog, 4)

    def test_shift_non_periodic_edges(self):
        def prog(comm):
            cart = CartComm(comm, (comm.size,))
            return cart.shift(0, 1)

        res = run_spmd(prog, 4)
        assert res[0] == (None, 1)
        assert res[3] == (2, None)
        assert res[1] == (0, 2)

    def test_shift_periodic(self):
        def prog(comm):
            cart = CartComm(comm, (comm.size,), periodic=[True])
            return cart.shift(0, 2)

        res = run_spmd(prog, 5)
        for r, (src, dst) in enumerate(res):
            assert src == (r - 2) % 5 and dst == (r + 2) % 5

    def test_sub_produces_fibers(self):
        def prog(comm):
            cart = CartComm(comm, (2, 4))
            fib1 = cart.fiber(1)
            # each mode-1 fiber has the 4 ranks sharing coords[0]
            total = fib1.comm.allreduce(np.array([cart.coords[0]]))
            return fib1.size, float(total[0]), fib1.rank == cart.coords[1]

        res = run_spmd(prog, 8)
        for r, (size, total, rank_ok) in enumerate(res):
            assert size == 4 and rank_ok
            c0 = r % 2
            assert total == 4 * c0

    def test_sub_keeps_multiple_dims(self):
        def prog(comm):
            cart = CartComm(comm, (2, 2, 3))
            plane = cart.sub([True, False, True])
            return plane.size, plane.dims

        res = run_spmd(prog, 12)
        assert all(v == (6, (2, 3)) for v in res.values)

    def test_cannot_drop_all_dims(self):
        def prog(comm):
            CartComm(comm, (2,)).sub([False])

        with pytest.raises(CommunicatorError):
            run_spmd(prog, 2)


@pytest.mark.parametrize("p", SIZES)
class TestAlternativeCollectives:
    def test_recursive_doubling_allreduce(self, p):
        def prog(comm):
            v = np.array([2.0 ** comm.rank, comm.rank])
            out = allreduce_recursive_doubling(comm, v)
            ref = comm.allreduce(v)
            return np.allclose(out, ref) and out[0] == 2.0**comm.size - 1

        assert all(run_spmd(prog, p).values)

    def test_ring_allgather(self, p):
        def prog(comm):
            out = allgather_ring(comm, np.array([comm.rank * 3.0]))
            return [float(x[0]) for x in out]

        for vals in run_spmd(prog, p):
            assert vals == [r * 3.0 for r in range(p)]

    def test_scatter_allgather_bcast(self, p):
        def prog(comm):
            root = comm.size - 1
            payload = np.arange(17.0) if comm.rank == root else None
            return bcast_scatter_allgather(comm, payload, root=root).tolist()

        for vals in run_spmd(prog, p):
            assert vals == list(map(float, range(17)))

    def test_ring_reduce_scatter(self, p):
        def prog(comm):
            vals = [np.array([comm.rank + 100.0 * q]) for q in range(comm.size)]
            out = reduce_scatter_ring(comm, vals)
            ref = comm.reduce_scatter(vals)
            return float(out[0]), float(ref[0])

        for r, (out, ref) in enumerate(run_spmd(prog, p)):
            assert out == ref == sum(q + 100.0 * r for q in range(p))


class TestAlgorithmEdgeCases:
    def test_bcast_payload_shorter_than_ranks(self):
        """Fewer elements than ranks: some scatter pieces are empty."""

        def prog(comm):
            payload = np.array([1.0, 2.0]) if comm.rank == 0 else None
            return bcast_scatter_allgather(comm, payload, root=0).tolist()

        for vals in run_spmd(prog, 5):
            assert vals == [1.0, 2.0]

    def test_bcast_requires_1d(self):
        def prog(comm):
            bcast_scatter_allgather(comm, np.zeros((2, 2)), root=0)

        with pytest.raises(CommunicatorError):
            run_spmd(prog, 2)

    def test_reduce_scatter_wrong_count(self):
        def prog(comm):
            reduce_scatter_ring(comm, [np.zeros(1)] * (comm.size + 1))

        with pytest.raises(CommunicatorError):
            run_spmd(prog, 3)

    def test_custom_op_max(self):
        def prog(comm):
            v = np.array([float(comm.rank)])
            return float(allreduce_recursive_doubling(comm, v, op=np.maximum)[0])

        assert all(v == 4.0 for v in run_spmd(prog, 5).values)
