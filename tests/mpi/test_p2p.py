"""Point-to-point semantics of the simulated MPI layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi import run_spmd


class TestSendRecv:
    def test_basic_exchange(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(4), dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)

        res = run_spmd(prog, 2)
        np.testing.assert_array_equal(res[1], np.arange(4))

    def test_fifo_ordering_per_channel(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(np.array([i]), dest=1, tag=0)
                return None
            return [int(comm.recv(0, tag=0)[0]) for _ in range(10)]

        res = run_spmd(prog, 2)
        assert res[1] == list(range(10))

    def test_tag_matching(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.array([1.0]), 1, tag=5)
                comm.send(np.array([2.0]), 1, tag=9)
                return None
            # receive out of send order by tag
            b = comm.recv(0, tag=9)
            a = comm.recv(0, tag=5)
            return float(a[0]), float(b[0])

        res = run_spmd(prog, 2)
        assert res[1] == (1.0, 2.0)

    def test_send_copies_payload(self):
        def prog(comm):
            if comm.rank == 0:
                buf = np.zeros(3)
                comm.send(buf, 1)
                buf[:] = 99.0  # mutation after send must not be visible
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(0)

        res = run_spmd(prog, 2)
        np.testing.assert_array_equal(res[1], np.zeros(3))

    def test_sendrecv_exchange(self):
        def prog(comm):
            partner = comm.rank ^ 1
            got = comm.sendrecv(np.array([comm.rank]), partner)
            return int(got[0])

        res = run_spmd(prog, 4)
        assert res.values == [1, 0, 3, 2]

    def test_sendrecv_self(self):
        def prog(comm):
            return int(comm.sendrecv(np.array([7]), comm.rank)[0])

        assert run_spmd(prog, 2).values == [7, 7]

    def test_invalid_rank(self):
        def prog(comm):
            comm.send(np.zeros(1), dest=5)

        with pytest.raises(CommunicatorError):
            run_spmd(prog, 2)

    def test_negative_user_tag_rejected(self):
        def prog(comm):
            comm.send(np.zeros(1), dest=0, tag=-3)

        with pytest.raises(CommunicatorError):
            run_spmd(prog, 1)


class TestFailureHandling:
    def test_exception_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.recv(1)  # would deadlock without abort

        with pytest.raises(ValueError, match="boom"):
            run_spmd(prog, 2)

    def test_deadlock_detected_by_timeout(self):
        def prog(comm):
            comm.recv((comm.rank + 1) % comm.size)  # everyone receives: deadlock

        with pytest.raises(CommunicatorError, match="timed out|aborted"):
            run_spmd(prog, 2, recv_timeout=0.2)

    def test_zero_procs_rejected(self):
        with pytest.raises(CommunicatorError):
            run_spmd(lambda c: None, 0)


class TestIntrospection:
    def test_rank_size(self):
        res = run_spmd(lambda c: (c.rank, c.size), 3)
        assert res.values == [(0, 3), (1, 3), (2, 3)]

    def test_serial_fast_path(self):
        res = run_spmd(lambda c: c.bcast(42, root=0), 1)
        assert res.values == [42]
