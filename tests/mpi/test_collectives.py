"""Collective operations across a range of communicator sizes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi import run_spmd

SIZES = [1, 2, 3, 4, 5, 7, 8, 12]


@pytest.mark.parametrize("p", SIZES)
class TestBcast:
    def test_from_every_root(self, p):
        def prog(comm):
            out = []
            for root in range(comm.size):
                payload = np.arange(root + 1) if comm.rank == root else None
                val = comm.bcast(payload, root=root)
                out.append(val.tolist())
            return out

        res = run_spmd(prog, p)
        expected = [list(range(root + 1)) for root in range(p)]
        for vals in res:
            assert vals == expected

    def test_python_object(self, p):
        def prog(comm):
            obj = {"a": 1} if comm.rank == 0 else None
            return comm.bcast(obj, root=0)

        for v in run_spmd(prog, p):
            assert v == {"a": 1}


@pytest.mark.parametrize("p", SIZES)
class TestReduceAllreduce:
    def test_sum_reduce(self, p):
        def prog(comm):
            return comm.reduce(np.array([comm.rank, 1.0]), root=0)

        res = run_spmd(prog, p)
        np.testing.assert_allclose(res[0], [p * (p - 1) / 2, p])
        assert all(v is None for v in res.values[1:])

    def test_allreduce_everywhere(self, p):
        def prog(comm):
            return comm.allreduce(np.array([2.0**comm.rank]))

        for v in run_spmd(prog, p):
            assert v[0] == pytest.approx(2.0**p - 1)

    def test_custom_op(self, p):
        def prog(comm):
            return comm.allreduce(np.array([comm.rank]), op=np.maximum)

        for v in run_spmd(prog, p):
            assert v[0] == p - 1


@pytest.mark.parametrize("p", SIZES)
class TestGatherScatter:
    def test_gather(self, p):
        def prog(comm):
            root = comm.size - 1
            return comm.gather(comm.rank * 10, root=root)

        res = run_spmd(prog, p)
        assert res[p - 1] == [r * 10 for r in range(p)]

    def test_scatter(self, p):
        def prog(comm):
            objs = [np.array([i, i * i]) for i in range(comm.size)] if comm.rank == 0 else None
            got = comm.scatter(objs, root=0)
            return got.tolist()

        res = run_spmd(prog, p)
        for r, v in enumerate(res):
            assert v == [r, r * r]

    def test_allgather(self, p):
        def prog(comm):
            return comm.allgather(comm.rank + 0.5)

        for v in run_spmd(prog, p):
            assert v == [r + 0.5 for r in range(p)]

    def test_scatter_wrong_count(self, p):
        def prog(comm):
            objs = [0] * (comm.size + 1) if comm.rank == 0 else None
            comm.scatter(objs, root=0)

        with pytest.raises(CommunicatorError):
            run_spmd(prog, p)


@pytest.mark.parametrize("p", SIZES)
class TestAlltoall:
    def test_permutation(self, p):
        def prog(comm):
            sends = [np.array([comm.rank, d]) for d in range(comm.size)]
            recvd = comm.alltoall(sends)
            # recvd[s] came from rank s and targeted me
            return all(
                int(recvd[s][0]) == s and int(recvd[s][1]) == comm.rank
                for s in range(comm.size)
            )

        assert all(run_spmd(prog, p).values)

    def test_wrong_count(self, p):
        def prog(comm):
            comm.alltoall([None] * (comm.size + 2))

        with pytest.raises(CommunicatorError):
            run_spmd(prog, p)


@pytest.mark.parametrize("p", SIZES)
def test_barrier_completes(p):
    def prog(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert all(run_spmd(prog, p).values)


def test_interleaved_collectives_and_p2p():
    """Collectives use a reserved tag space: user p2p cannot collide."""

    def prog(comm):
        if comm.rank == 0:
            comm.send(np.array([123.0]), 1, tag=0)
        total = comm.allreduce(np.array([1.0]))
        got = comm.recv(0, tag=0) if comm.rank == 1 else None
        return float(total[0]), None if got is None else float(got[0])

    res = run_spmd(prog, 2)
    assert res[0] == (2.0, None)
    assert res[1] == (2.0, 123.0)
