"""Transport conformance: every scenario must behave identically on
``backend="threads"``, ``backend="procs"``, and ``backend="sockets"``.

The contract under test is the one ``docs/mpi-runtime.md`` (Transports)
states: collectives, point-to-point (blocking and nonblocking), split,
clocks, comm tracing, span tracing, fault injection, and the
sanitizer's collective/deadlock diagnostics are backend-invariant —
same values bit for bit, same errors, same counters.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import sthosvd_parallel
from repro.data import low_rank_tensor
from repro.dist import DistributedTensor, GridComms, ProcessorGrid
from repro.errors import CollectiveMismatchError, RankFailedError
from repro.faults import CrashRule, FaultPlan, MessageFaultRule
from repro.mpi import CommTrace, CostModel, available_backends, run_spmd, waitall
from repro.obs import Tracer

BACKENDS = list(available_backends())


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def test_available_backends_names():
    assert BACKENDS == ["threads", "procs", "sockets"]


# ----------------------------------------------------------------------
# Collective equivalence
# ----------------------------------------------------------------------
def _collective_prog(comm):
    rng = np.random.default_rng(100 + comm.rank)
    x = rng.standard_normal(8)
    out = {}
    out["allreduce"] = comm.allreduce(x.copy())
    out["bcast"] = comm.bcast(x.copy() if comm.rank == 1 else None, root=1)
    out["allgather"] = np.concatenate(comm.allgather(x.copy()))
    pieces = [np.full(2, float(comm.rank * comm.size + d)) for d in range(comm.size)]
    out["alltoall"] = np.concatenate(comm.alltoall(pieces))
    gathered = comm.gather(x.copy(), root=0)
    out["gather"] = np.concatenate(gathered) if comm.rank == 0 else None
    out["reduce_scatter"] = comm.reduce_scatter([x.copy() * (d + 1) for d in range(comm.size)])
    sub = comm.split(color=comm.rank % 2, key=-comm.rank)
    out["split"] = (sub.rank, sub.size, float(sub.allreduce(x.copy())[0]))
    comm.barrier()
    return out


def test_collective_equivalence_across_backends():
    runs = {b: run_spmd(_collective_prog, 4, backend=b).values for b in BACKENDS}
    ref = runs[BACKENDS[0]]
    for b in BACKENDS[1:]:
        for rank in range(4):
            for key, want in ref[rank].items():
                got = runs[b][rank][key]
                if isinstance(want, np.ndarray):
                    assert np.array_equal(want, got), (b, rank, key)
                else:
                    assert want == got, (b, rank, key)


def test_sthosvd_bitwise_equivalence_across_backends():
    X = low_rank_tensor((8, 12, 6), (2, 4, 3), rng=9, noise=1e-9)

    def prog(comm):
        comms = GridComms(comm, ProcessorGrid((2, 2, 1)))
        dt = DistributedTensor.from_full(comms, X.data)
        res = sthosvd_parallel(dt, tol=1e-6, method="qr")
        return res.ranks, [np.array(f) for f in res.factors]

    runs = {b: run_spmd(prog, 4, backend=b).values for b in BACKENDS}
    ref = runs[BACKENDS[0]]
    for b in BACKENDS[1:]:
        for rank in range(4):
            assert ref[rank][0] == runs[b][rank][0]
            for fa, fb in zip(ref[rank][1], runs[b][rank][1]):
                assert np.array_equal(fa, fb)


# ----------------------------------------------------------------------
# Nonblocking semantics (S1): staging-tracked requests, ordering
# ----------------------------------------------------------------------
def test_isend_waitall_ordering(backend):
    def prog(comm):
        if comm.rank == 0:
            reqs = [comm.isend(np.array([i]), 1, tag=i) for i in range(8)]
            waitall(reqs)
            assert all(r.done() for r in reqs)
            return None
        vals = waitall([comm.irecv(0, tag=i) for i in range(8)])
        return [int(v[0]) for v in vals]

    res = run_spmd(prog, 2, backend=backend)
    assert res[1] == list(range(8))


def test_isend_completion_means_staged(backend):
    """A completed send request implies the payload is receivable."""

    def prog(comm):
        if comm.rank == 0:
            req = comm.isend(np.arange(16), 1, tag=5)
            req.wait()
            comm.barrier()
            return None
        comm.barrier()  # after rank 0's wait() the message must exist
        got = comm.recv(0, tag=5)
        return int(got.sum())

    res = run_spmd(prog, 2, backend=backend)
    assert res[1] == int(np.arange(16).sum())


def test_request_test_backoff_does_not_busy_spin(backend):
    """A test() poll loop on an unready request sleeps between polls."""

    def prog(comm):
        if comm.rank == 0:
            comm.recv(1, tag=9)  # parked until rank 1's poll loop ends
            comm.send(np.array([0]), 1, tag=1)
            return None
        req = comm.irecv(0, tag=1)  # not satisfied during the loop
        polls = 0
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < 0.05:
            done, _ = req.test()
            assert not done
            polls += 1
        comm.send(np.array([1]), 0, tag=9)
        req.wait()  # now rank 0 sends; the request completes
        return polls

    res = run_spmd(prog, 2, backend=backend)
    # With 1 us -> 1 ms exponential backoff, 50 ms of polling is a few
    # hundred iterations at most; a busy spin would be millions.
    assert 0 < res[1] < 10_000


# ----------------------------------------------------------------------
# Observability conformance: counters and shards
# ----------------------------------------------------------------------
def _traffic_prog(comm):
    trace = comm.context.comm_trace
    trace.set_context("stage-a")
    comm.send(np.ones(100), (comm.rank + 1) % comm.size, tag=1)
    comm.recv((comm.rank - 1) % comm.size, tag=1)
    trace.set_context(None)
    comm.barrier()
    return comm.rank


def test_comm_trace_counters_identical_across_backends():
    snaps = {}
    for b in BACKENDS:
        trace = CommTrace()
        run_spmd(_traffic_prog, 3, comm_trace=trace, backend=b)
        snaps[b] = trace.to_dict()
    ref = snaps[BACKENDS[0]]
    for b in BACKENDS[1:]:
        assert snaps[b] == ref
    # context labels set inside the rank program survive the fork
    assert ref["context"] == "all"
    for b in BACKENDS:
        assert any(True for _ in snaps[b]["ranks"])


def test_comm_trace_context_labels_cross_backends():
    for b in BACKENDS:
        trace = CommTrace()
        run_spmd(_traffic_prog, 3, comm_trace=trace, backend=b)
        assert trace.sent_messages(0, "stage-a") == 1, b
        assert trace.sent_bytes(0, "stage-a") == 800, b


def test_tracer_and_clock_shards_merge(backend):
    def prog(comm):
        comm.allreduce(np.ones(4))
        return comm.rank

    tracer = Tracer()
    res = run_spmd(prog, 3, cost_model=CostModel(), tracer=tracer,
                   backend=backend)
    assert tracer.ranks() == [0, 1, 2]
    assert "comm.allreduce" in tracer.span_names()
    assert all(c is not None and c.now > 0 for c in res.clocks)
    assert res.slowest_time > 0


# ----------------------------------------------------------------------
# Sanitizer diagnostics
# ----------------------------------------------------------------------
def test_sanitizer_collective_mismatch_diagnostic(backend):
    def prog(comm):
        if comm.rank == 0:
            comm.allreduce(np.ones(4))
        else:
            comm.barrier()
        return 1

    with pytest.raises(CollectiveMismatchError, match="allreduce"):
        run_spmd(prog, 2, sanitize=True, recv_timeout=10, backend=backend)


def test_sanitizer_message_leak_finding(backend):
    def prog(comm):
        if comm.rank == 0:
            comm.send(np.ones(3), 1, tag=4)  # never received
        comm.barrier()
        return 1

    from repro.sanitize import Sanitizer

    san = Sanitizer(strict=False)
    run_spmd(prog, 2, sanitize=san, backend=backend)
    assert any(f.kind == "message-leak" for f in san.findings)


# ----------------------------------------------------------------------
# Chaos smoke (S2 rides here too): crashes surface as RankFailedError
# ----------------------------------------------------------------------
def test_crashed_partner_fast_fails_recv(backend):
    def prog(comm):
        if comm.rank == 1:
            comm.recv(0, tag=5)
        elif comm.rank == 0:
            comm.send(np.ones(2), 1, tag=5)  # dies inside this op
        return comm.rank

    plan = FaultPlan(seed=7, crashes=(CrashRule(rank=0, at_op=1),))
    with pytest.raises(RankFailedError, match="already failed"):
        run_spmd(prog, 2, faults=plan, recv_timeout=15, backend=backend)


def test_chaos_smoke_shrink_recovery(backend):
    def prog(comm):
        try:
            comm.barrier()
            comm.barrier()
        except RankFailedError:
            comm.revoke()
            comm = comm.shrink()
        return float(comm.allreduce(np.array([1.0]))[0])

    plan = FaultPlan(
        seed=3,
        crashes=(CrashRule(rank=1, at_op=2),),
        messages=(MessageFaultRule(kind="drop", prob=0.02),),
    )
    res = run_spmd(prog, 3, faults=plan, resilience=True, recv_timeout=20,
                   backend=backend)
    assert res.failed_ranks == [1]
    survivors = [v for v in res.values if v is not None]
    assert survivors == [2.0, 2.0]
    assert (1, 2, "crash", ()) in res.faults.trace_key()


def test_fault_trace_deterministic_across_backends():
    def prog(comm):
        for _ in range(4):
            comm.send(np.ones(64), (comm.rank + 1) % comm.size, tag=2)
            comm.recv((comm.rank - 1) % comm.size, tag=2)
        return comm.rank

    plan = FaultPlan(seed=11, messages=(
        MessageFaultRule(kind="drop", prob=0.2),
    ))
    keys = []
    for b in BACKENDS:
        res = run_spmd(prog, 3, faults=plan, resilience=True,
                       recv_timeout=20, backend=b)
        keys.append(res.faults.trace_key())
    assert keys[0] and all(k == keys[0] for k in keys[1:])


# ----------------------------------------------------------------------
# Return values crossing the process boundary
# ----------------------------------------------------------------------
def test_full_result_object_crosses_process_boundary():
    """A rank program may return the whole ParallelSthosvdResult: on
    procs the embedded DistributedTensor detaches from its world, so
    layout queries and error estimates still work in the caller, while
    collectives on the detached core raise a clear diagnostic."""
    from repro.errors import DistributionError

    X = low_rank_tensor((8, 12, 6), (2, 4, 3), rng=9, noise=1e-9)

    def prog(comm):
        comms = GridComms(comm, ProcessorGrid((2, 2, 1)))
        dt = DistributedTensor.from_full(comms, X.data)
        return sthosvd_parallel(dt, tol=1e-6, method="qr")

    results = {b: run_spmd(prog, 4, backend=b)[0] for b in BACKENDS}
    ref = results[BACKENDS[0]]
    for b in BACKENDS[1:]:
        assert results[b].ranks == ref.ranks
        assert results[b].estimated_rel_error() == ref.estimated_rel_error()
    detached = results["procs"].core
    assert detached.global_shape == ref.core.global_shape
    assert detached.local.shape == ref.core.local.shape
    with pytest.raises(DistributionError, match="detached"):
        detached.gather()


def test_unpicklable_return_value_surfaces_diagnostic():
    """A return value that cannot cross the process boundary must raise
    a CommunicatorError naming the problem, not a silent worker death."""
    from repro.errors import CommunicatorError

    def prog(comm):
        import threading

        return threading.Lock()  # cannot pickle

    with pytest.raises(CommunicatorError,
                       match="could not cross the process boundary"):
        run_spmd(prog, 2, backend="procs")


# ----------------------------------------------------------------------
# Process-backend-specific lifecycle
# ----------------------------------------------------------------------
def test_procs_hard_worker_death_surfaces_rank_failed():
    """A worker that dies without a lifecycle message (simulating a
    segfault/OOM kill) must surface RankFailedError, not hang."""
    import os

    def prog(comm):
        if comm.rank == 1:
            os._exit(17)
        comm.recv(1, tag=9)
        return 0

    with pytest.raises(RankFailedError, match="rank 1"):
        run_spmd(prog, 2, recv_timeout=30, backend="procs")


def test_backend_env_var_fallback(monkeypatch):
    from repro.mpi.transport import make_transport

    monkeypatch.setenv("REPRO_SPMD_BACKEND", "procs")
    assert make_transport(None).name == "procs"
    monkeypatch.delenv("REPRO_SPMD_BACKEND")
    assert make_transport(None).name == "threads"


def test_unknown_backend_rejected():
    from repro.errors import CommunicatorError

    with pytest.raises(CommunicatorError, match="unknown SPMD backend"):
        run_spmd(lambda comm: 0, 1, backend="smoke-signals")


# ----------------------------------------------------------------------
# Flight recorder, telemetry, and postmortems (backend-invariant)
# ----------------------------------------------------------------------
def _crash_prog(comm):
    """Rank 0 dies inside its first op; rank 1's message is left queued."""
    if comm.rank == 1:
        comm.send(np.ones(4), 0, tag=5)
    return comm.recv((comm.rank + 1) % comm.size, tag=9)


_CRASH_PLAN = dict(seed=7, crashes=(CrashRule(rank=0, at_op=1),))


def _deadlock_prog(comm):
    return comm.recv((comm.rank + 1) % comm.size, tag=3)


def _event_signature(recorder, rank):
    """The deterministic projection of a rank's event stream."""
    sig = []
    for _seq, _ts, kind, name, detail in recorder.events(rank):
        stable = {k: v for k, v in detail.items()
                  if k not in ("duration_s",)}
        sig.append((kind, name, tuple(sorted(stable.items()))))
    return sig


def test_crash_postmortem_bundle(backend, tmp_path):
    from repro.obs import FlightRecorder, load_postmortem, render_postmortem

    rec = FlightRecorder(heartbeat_interval=0.05, postmortem_dir=str(tmp_path))
    with pytest.raises(RankFailedError):
        run_spmd(_crash_prog, 2, faults=FaultPlan(**_CRASH_PLAN),
                 recorder=rec, recv_timeout=15, backend=backend)

    bundle = rec.last_postmortem
    assert bundle is not None
    assert bundle["schema"] == "repro-postmortem/1"
    assert bundle["backend"] == backend
    assert bundle["error"]["type"] == "RankFailedError"
    assert bundle["aborted"]
    # every rank's recorder state made it into the bundle
    for rank in ("0", "1"):
        entry = bundle["ranks"][rank]
        assert entry["events_recorded"] > 0
        assert entry["last_events"], rank
        assert entry["span_stack"] == ["comm.recv"], rank
    # rank 1's send to the dead rank 0 is still in flight
    assert any(
        m["dest_world_rank"] == 0 and m["source_rank"] == 1 and m["tag"] == 5
        for m in bundle["in_flight"]
    )
    assert bundle["fault_trace"] == [[0, 1, "crash", []]]
    # the bundle also landed on disk and renders
    assert rec.last_postmortem_path is not None
    loaded = load_postmortem(rec.last_postmortem_path)
    assert loaded["ranks"] == bundle["ranks"]
    text = render_postmortem(loaded)
    assert "ROOT CAUSE" in text and "RankFailedError" in text


def test_deadlock_postmortem_bundle(backend, tmp_path):
    from repro.errors import DeadlockError
    from repro.obs import FlightRecorder
    from repro.sanitize import Sanitizer

    rec = FlightRecorder(heartbeat_interval=0.05, postmortem_dir=str(tmp_path))
    with pytest.raises(DeadlockError):
        run_spmd(_deadlock_prog, 2, recorder=rec, recv_timeout=30,
                 sanitize=Sanitizer(watchdog_interval=0.1), backend=backend)

    bundle = rec.last_postmortem
    assert bundle is not None
    deadlock = bundle["deadlock"]
    assert deadlock is not None and deadlock["reason"] == "wait-for cycle"
    edges = {(w["rank"], w["awaiting_rank"], w["tag"])
             for w in deadlock["waits"]}
    assert edges == {(0, 1, 3), (1, 0, 3)}
    for rank in ("0", "1"):
        assert bundle["ranks"][rank]["span_stack"] == ["comm.recv"], rank


def test_postmortem_events_deterministic_under_crash(backend):
    from repro.obs import FlightRecorder

    signatures = []
    for _ in range(2):
        rec = FlightRecorder(heartbeat_interval=0.05)
        with pytest.raises(RankFailedError):
            run_spmd(_crash_prog, 2, faults=FaultPlan(**_CRASH_PLAN),
                     recorder=rec, recv_timeout=15, backend=backend)
        signatures.append({r: _event_signature(rec, r) for r in rec.ranks()})
    assert signatures[0] == signatures[1]
    assert signatures[0][0] and signatures[0][1]


def _slow_ring_prog(comm):
    for _ in range(4):
        comm.send(np.ones(128), (comm.rank + 1) % comm.size, tag=2)
        comm.recv((comm.rank - 1) % comm.size, tag=2)
        time.sleep(0.08)
    return comm.rank


def test_midrun_telemetry_snapshot(backend):
    """The hub must see live per-rank state *while ranks run*, on both
    backends: threads share the recorder; procs stream heartbeats."""
    import threading

    from repro.obs import FlightRecorder, TelemetryHub

    rec = FlightRecorder(heartbeat_interval=0.05)
    hub = TelemetryHub()
    snaps = []
    stop = threading.Event()

    def sampler():
        while not stop.is_set():
            snaps.append(hub.snapshot())
            time.sleep(0.04)

    thread = threading.Thread(target=sampler)
    thread.start()
    try:
        res = run_spmd(_slow_ring_prog, 2, recorder=rec, telemetry=hub,
                       backend=backend)
    finally:
        stop.set()
        thread.join()
    assert sorted(res.values) == [0, 1]

    live = [
        s for s in snaps
        if s.get("attached")
        and any(v["status"] == "running" and v["events_recorded"] > 0
                for v in s["ranks"].values())
    ]
    assert live, f"no live mid-run snapshot on {backend}"
    if backend == "procs":
        # heartbeats carried the ages — some live snapshot heard a worker
        assert any(
            v["heartbeat_age_s"] is not None
            for s in live for v in s["ranks"].values()
        )
    final = hub.snapshot()
    assert all(v["status"] == "finalized" for v in final["ranks"].values())
    assert final["ranks"]["0"]["events_recorded"] >= 16  # 4 sends + 4 recvs
    assert hub.render().startswith("repro top")
