"""Communicator split/dup semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import run_spmd


class TestSplit:
    def test_even_odd_groups(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            total = sub.allreduce(np.array([comm.rank]))
            return sub.size, float(total[0])

        res = run_spmd(prog, 6)
        for r, (size, total) in enumerate(res):
            assert size == 3
            assert total == (0 + 2 + 4 if r % 2 == 0 else 1 + 3 + 5)

    def test_key_controls_new_rank(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reverse order
            return sub.rank

        res = run_spmd(prog, 4)
        assert res.values == [3, 2, 1, 0]

    def test_color_none_opts_out(self):
        def prog(comm):
            color = 0 if comm.rank < 2 else None
            sub = comm.split(color=color)
            if sub is None:
                return None
            return sub.allgather(comm.rank)

        res = run_spmd(prog, 4)
        assert res[0] == [0, 1]
        assert res[2] is None and res[3] is None

    def test_sub_communicator_isolated_from_parent(self):
        def prog(comm):
            sub = comm.split(color=comm.rank // 2)
            # messages in sub must not be visible to parent receives
            if sub.rank == 0:
                sub.send(np.array([sub.rank + 100]), 1, tag=0)
                return None
            return int(sub.recv(0, tag=0)[0])

        res = run_spmd(prog, 4)
        assert res[1] == 100 and res[3] == 100

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(color=comm.rank // 2)
            solo = half.split(color=half.rank)
            return solo.size

        assert run_spmd(prog, 4).values == [1, 1, 1, 1]

    def test_repeated_splits_get_fresh_comms(self):
        def prog(comm):
            a = comm.split(color=0)
            b = comm.split(color=0)
            # send in a, receive in b would deadlock if they shared a space;
            # verify isolation by exchanging distinct values concurrently.
            if comm.rank == 0:
                a.send(np.array([1.0]), 1, tag=0)
                b.send(np.array([2.0]), 1, tag=0)
                return None
            va = a.recv(0, tag=0)
            vb = b.recv(0, tag=0)
            return float(va[0]), float(vb[0])

        res = run_spmd(prog, 2)
        assert res[1] == (1.0, 2.0)


class TestDup:
    def test_dup_preserves_rank_order(self):
        def prog(comm):
            d = comm.dup()
            return d.rank, d.size

        res = run_spmd(prog, 3)
        assert res.values == [(0, 3), (1, 3), (2, 3)]
