"""Stress and property tests for the MPI runtime: random schedules,
failure injection, and cross-collective invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CommunicatorError
from repro.mpi import run_spmd


class TestRandomizedSchedules:
    @given(
        seed=st.integers(0, 10**6),
        p=st.integers(2, 6),
        nmsg=st.integers(1, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_point_to_point_traffic(self, seed, p, nmsg):
        """A random but matched send/recv schedule always delivers every
        payload to the right (destination, tag) with FIFO per channel."""
        rng = np.random.default_rng(seed)
        # schedule[i] = (src, dst, tag, value)
        schedule = [
            (int(rng.integers(p)), int(rng.integers(p)), int(rng.integers(3)), i)
            for i in range(nmsg)
        ]

        def prog(comm):
            me = comm.rank
            for src, dst, tag, val in schedule:
                if src == me:
                    comm.send(np.array([val]), dst, tag=tag)
            got = []
            for src, dst, tag, val in schedule:
                if dst == me:
                    got.append((src, tag, int(comm.recv(src, tag=tag)[0])))
            return got

        res = run_spmd(prog, p)
        for me in range(p):
            expected = [
                (src, tag, val) for src, dst, tag, val in schedule if dst == me
            ]
            assert res[me] == expected

    @given(
        seed=st.integers(0, 10**6),
        p=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_collective_sequences(self, seed, p):
        """Any uniform sequence of collectives completes and agrees."""
        rng = np.random.default_rng(seed)
        ops = [rng.choice(["bcast", "allreduce", "allgather", "barrier", "alltoall"])
               for _ in range(6)]
        roots = [int(rng.integers(p)) for _ in ops]

        def prog(comm):
            out = []
            for op, root in zip(ops, roots):
                if op == "bcast":
                    v = comm.bcast(np.array([root * 1.0]) if comm.rank == root else None,
                                   root=root)
                    out.append(float(v[0]))
                elif op == "allreduce":
                    out.append(float(comm.allreduce(np.array([1.0]))[0]))
                elif op == "allgather":
                    out.append(tuple(comm.allgather(comm.rank)))
                elif op == "alltoall":
                    r = comm.alltoall([np.array([comm.rank])] * comm.size)
                    out.append(tuple(int(x[0]) for x in r))
                else:
                    comm.barrier()
                    out.append("b")
            return out

        res = run_spmd(prog, p)
        for vals in res.values[1:]:
            assert vals == res[0]


class TestFailureInjection:
    @pytest.mark.parametrize("failing_rank", [0, 2])
    def test_failure_during_collective_unblocks_world(self, failing_rank):
        def prog(comm):
            if comm.rank == failing_rank:
                raise RuntimeError("injected fault")
            # Everyone else enters a collective that can never complete.
            comm.allreduce(np.array([1.0]))

        with pytest.raises(RuntimeError, match="injected fault"):
            run_spmd(prog, 4, recv_timeout=5.0)

    def test_failure_during_butterfly(self):
        from repro.dist import butterfly_tsqr_reduce

        def prog(comm):
            if comm.rank == 1:
                raise ValueError("mid-tree fault")
            R = np.triu(np.ones((3, 3)))
            butterfly_tsqr_reduce(comm, R)

        with pytest.raises(ValueError, match="mid-tree fault"):
            run_spmd(prog, 4, recv_timeout=5.0)

    def test_first_error_wins_reporting(self):
        """Whichever real exception occurred is reported, not the
        secondary CommunicatorErrors it causes on other ranks."""

        def prog(comm):
            if comm.rank == comm.size - 1:
                raise KeyError("root cause")
            comm.recv((comm.rank + 1) % comm.size)

        with pytest.raises(KeyError, match="root cause"):
            run_spmd(prog, 3, recv_timeout=5.0)

    def test_world_not_reusable_after_abort(self):
        holder = {}

        def prog(comm):
            holder["comm"] = comm
            if comm.rank == 0:
                raise RuntimeError("die")
            comm.barrier()

        with pytest.raises(RuntimeError):
            run_spmd(prog, 2, recv_timeout=5.0)
        with pytest.raises(CommunicatorError):
            holder["comm"].send(np.zeros(1), 0)


class TestScaleSmoke:
    def test_many_ranks(self):
        """32 simulated ranks through a full collective battery."""

        def prog(comm):
            total = comm.allreduce(np.array([comm.rank + 1.0]))
            sub = comm.split(color=comm.rank % 4)
            subtotal = sub.allreduce(np.array([1.0]))
            comm.barrier()
            return float(total[0]), float(subtotal[0])

        res = run_spmd(prog, 32)
        assert all(v == (32 * 33 / 2, 8.0) for v in res.values)

    def test_large_payload_integrity(self):
        payload = np.random.default_rng(0).standard_normal(200_000)

        def prog(comm):
            got = comm.bcast(payload if comm.rank == 0 else None, root=0)
            return float(np.abs(got - payload).max())

        res = run_spmd(prog, 4)
        assert all(v == 0.0 for v in res.values)
