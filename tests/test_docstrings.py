"""Documentation-coverage gate: every public symbol carries a docstring.

Deliverable-level enforcement: walking each package's ``__all__``, every
exported class and function must have a non-trivial docstring, every
public class's public methods too.  New API without documentation fails
the suite rather than slipping through review.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.tensor",
    "repro.linalg",
    "repro.mpi",
    "repro.dist",
    "repro.core",
    "repro.perf",
    "repro.data",
    "repro.util",
]


def _public_symbols():
    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name, None)
            if obj is None or inspect.ismodule(obj):
                continue
            yield pkg, name, obj


ALL_SYMBOLS = sorted(
    {(pkg, name): obj for pkg, name, obj in _public_symbols()}.items()
)


@pytest.mark.parametrize(
    "key,obj", ALL_SYMBOLS, ids=[f"{p}.{n}" for (p, n), _ in ALL_SYMBOLS]
)
def test_public_symbol_documented(key, obj):
    pkg, name = key
    if not (inspect.isclass(obj) or callable(obj)):
        return  # constants (e.g. precision singletons, grids dict)
    doc = inspect.getdoc(obj)
    assert doc and len(doc.strip()) >= 15, f"{pkg}.{name} lacks a real docstring"


@pytest.mark.parametrize(
    "key,obj",
    [(k, o) for k, o in ALL_SYMBOLS if inspect.isclass(o)],
    ids=[f"{p}.{n}" for (p, n), o in ALL_SYMBOLS if inspect.isclass(o)],
)
def test_public_class_methods_documented(key, obj):
    pkg, name = key
    undocumented = []
    for meth_name, meth in inspect.getmembers(obj, predicate=inspect.isfunction):
        if meth_name.startswith("_"):
            continue
        if meth.__qualname__.split(".")[0] != obj.__name__:
            continue  # inherited
        doc = inspect.getdoc(meth)
        if not doc or len(doc.strip()) < 10:
            undocumented.append(meth_name)
    assert not undocumented, f"{pkg}.{name} methods lack docstrings: {undocumented}"


def test_every_package_has_module_docstring():
    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, pkg
