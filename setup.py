"""Setuptools shim so `pip install -e . --no-use-pep517` works on
environments without the `wheel` package (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
