#!/usr/bin/env python3
"""The numerical heart of the paper: where each SVD algorithm stops working.

Recreates the Fig. 1 experiment — an 80x80 matrix with singular values
decaying geometrically from 1 to 1e-18 — and shows the computed spectra
of Gram-SVD and QR-SVD in both precisions against the truth, plus the
theoretical noise floors of Theorems 1-2 (eps*||A|| for QR,
sqrt(eps)*||A|| for Gram).

Run:  python examples/precision_tradeoffs.py
"""

import numpy as np

from repro.data import geometric_spectrum, matrix_with_spectrum
from repro.linalg import gram_svd, qr_svd, singular_value_floor
from repro.util import format_table

N = 80
true = geometric_spectrum(N, 1.0, 1e-18)
A = matrix_with_spectrum(N, N, true, rng=0)

variants = {
    "gram-single": (gram_svd, np.float32),
    "qr-single": (qr_svd, np.float32),
    "gram-double": (gram_svd, np.float64),
    "qr-double": (qr_svd, np.float64),
}

computed = {}
for name, (fn, dtype) in variants.items():
    computed[name] = np.asarray(fn(A.astype(dtype))[1], dtype=np.float64)

# ASCII rendering of Fig. 1: sample every 8th singular value.
rows = []
for i in range(0, N, 8):
    rows.append(
        [i + 1, true[i]] + [computed[name][i] for name in variants]
    )
print(format_table(
    ["i", "true sigma_i"] + list(variants), rows,
    title="Fig. 1: computed singular values (geometric decay 1 .. 1e-18)",
))

print("\nTheoretical noise floors (Thm. 1-2), ||A|| = 1:")
floor_rows = []
for name in variants:
    method, prec = name.split("-")
    floor_rows.append([name, singular_value_floor(1.0, method, prec)])
print(format_table(["variant", "floor"], floor_rows))

print(
    "\nHow to read it: each variant tracks the true spectrum until it\n"
    "hits its floor, then flattens into noise.  The order of failure is\n"
    "gram-single (sqrt(eps_s) ~ 3e-4), qr-single (eps_s ~ 1e-7),\n"
    "gram-double (sqrt(eps_d) ~ 1e-8), and qr-double tracks to 1e-18.\n"
    "ST-HOSVD's rank selection trusts these values, so a variant can\n"
    "only honour error tolerances looser than its floor — the rule that\n"
    "decides every accuracy result in the paper."
)
