#!/usr/bin/env python3
"""Compress a combustion-simulation tensor across error tolerances.

Reproduces the paper's Sec. 4.5 workflow on the HCCI surrogate: sweep
tolerances from 1e-2 to 1e-8 with every method x precision variant and
report compression ratio and achieved error — showing which variant is
the cheapest *accurate* choice at each tolerance (the paper's Tab. 2
decision table).

Run:  python examples/compress_combustion.py
"""

import numpy as np

from repro import sthosvd
from repro.data import hcci_surrogate
from repro.linalg import min_reachable_tolerance
from repro.util import format_table

X = hcci_surrogate(shape=(48, 48, 24, 48))
print(f"HCCI surrogate: {X.shape}, {X.nbytes / 1e6:.1f} MB\n")

VARIANTS = [
    ("gram", "single"),
    ("qr", "single"),
    ("gram", "double"),
    ("qr", "double"),
]

rows = []
for tol in (1e-2, 1e-4, 1e-6, 1e-8):
    for method, precision in VARIANTS:
        res = sthosvd(X, tol=tol, method=method, precision=precision,
                      mode_order="backward")
        err = res.tucker.rel_error(X)
        # A variant is "trustworthy" at this tolerance if its theoretical
        # accuracy floor is below the tolerance (Sec. 3.2).
        floor = min_reachable_tolerance(method, precision)
        ok = "yes" if tol > floor else "NO"
        rows.append(
            [f"{tol:.0e}", f"{method}-{precision}", ok,
             res.tucker.compression_ratio(), err,
             "meets" if err <= tol else "FAILS"]
        )

print(format_table(
    ["tol", "variant", "floor ok?", "compression", "actual err", "verdict"],
    rows,
    title="Which variant to use at each tolerance (cf. paper Tab. 2)",
))

print(
    "\nReading the table the paper's way:\n"
    "  tol 1e-2 : Gram-single — every variant is accurate; take the cheapest.\n"
    "  tol 1e-4 : QR-single   — Gram-single is past its sqrt(eps_s) floor.\n"
    "  tol 1e-6 : Gram-double — QR-single is past its eps_s floor.\n"
    "  tol 1e-8 : QR-double   — the only variant whose floor is below 1e-8."
)
