#!/usr/bin/env python3
"""Quickstart: compress a tensor with ST-HOSVD in three lines.

Builds a compressible synthetic tensor, computes a Tucker decomposition
to a 1e-4 relative error with the numerically stable QR-SVD method, and
verifies the result — then does the same with TuckerMPI's Gram-SVD
baseline for comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DenseTensor, sthosvd
from repro.data import low_rank_tensor

# --- make some compressible data (exactly low rank + tiny noise) --------
X = low_rank_tensor(
    shape=(60, 50, 40, 30), ranks=(8, 6, 5, 4), rng=0, noise=1e-8
)
print(f"input: {X.shape} tensor, {X.nbytes / 1e6:.1f} MB")

# --- compress to a 1e-4 relative error ----------------------------------
result = sthosvd(X, tol=1e-4, method="qr")
tucker = result.tucker

print(f"ranks chosen:       {tucker.ranks}")
print(f"compression ratio:  {tucker.compression_ratio():.0f}x")
print(f"estimated error:    {result.estimated_rel_error():.2e} (free, from singular values)")
print(f"actual error:       {tucker.rel_error(X):.2e} (reconstructed)")

# --- reconstruct ---------------------------------------------------------
X_hat = tucker.reconstruct()
assert X_hat.shape == X.shape

# --- compare against the Gram-SVD baseline -------------------------------
for method in ("qr", "gram"):
    for precision in ("double", "single"):
        res = sthosvd(X, tol=1e-4, method=method, precision=precision)
        print(
            f"{method:>4}-{precision:<6}: ranks {res.ranks}, "
            f"error {res.tucker.rel_error(X):.2e}, "
            f"{res.flops.total / 1e6:.0f} Mflop"
        )

# QR-SVD costs ~2x the flops of Gram-SVD but is accurate to eps instead
# of sqrt(eps) — which is why it can run in single precision (half the
# time on real hardware) where Gram-SVD cannot.
