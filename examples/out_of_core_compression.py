#!/usr/bin/env python3
"""Compress a raw tensor file that never fits in memory at once.

TuckerMPI's raison d'etre is compressing simulation dumps: terabytes of
raw floats on disk.  The single-pass structure of the paper's kernels
(one syrk per Gram block, one tpqrt per TSQR block) makes them naturally
streamable — this example spills a combustion-like tensor to a raw file,
compresses it with a deliberately tiny chunk budget (so the streaming
machinery genuinely engages), verifies the result against the in-memory
driver, and evaluates the reconstruction error *also* streaming (the
reference never loads either).

Run:  python examples/out_of_core_compression.py
"""

import os
import tempfile

from repro.core import sthosvd, sthosvd_out_of_core, streaming_rel_error
from repro.data import hcci_surrogate, save_raw
from repro.data.outofcore import OutOfCoreTensor
from repro.util import format_table

SHAPE = (48, 48, 24, 48)
CHUNK = 1 << 14  # 16k elements (~128 KB) per chunk: absurdly small on
                 # purpose, to demonstrate memory-bounded operation

X = hcci_surrogate(shape=SHAPE)

with tempfile.TemporaryDirectory() as d:
    raw = os.path.join(d, "simulation.bin")
    save_raw(X, raw)
    size_mb = os.path.getsize(raw) / 1e6
    print(f"raw file: {raw} ({size_mb:.0f} MB), chunk budget {CHUNK * 8 / 1e3:.0f} KB\n")

    # --- streaming compression ------------------------------------------
    res = sthosvd_out_of_core(
        raw, SHAPE, tol=1e-4, method="qr", mode_order="backward",
        max_elements=CHUNK,
    )
    print(f"ranks:        {res.ranks}")
    print(f"compression:  {res.tucker.compression_ratio():.1f}x")
    print(f"est. error:   {res.estimated_rel_error():.3e}")

    # --- streaming error evaluation --------------------------------------
    ooc = OutOfCoreTensor(raw, SHAPE)
    err = streaming_rel_error(res.tucker, ooc, slab_elements=CHUNK)
    print(f"actual error: {err:.3e} (computed without loading the file)\n")

    # --- cross-check against the in-memory driver ------------------------
    mem = sthosvd(X, tol=1e-4, method="qr", mode_order="backward")
    print(format_table(
        ["driver", "ranks", "rel error"],
        [
            ["out-of-core", str(res.ranks), err],
            ["in-memory", str(mem.ranks), mem.tucker.rel_error(X)],
        ],
        title="Same mathematics, bounded memory",
    ))
    assert res.ranks == mem.ranks

print(
    "\nScaling note: peak memory is O(chunk + I_n^2) regardless of the\n"
    "file size; the same code compresses a multi-TB dump.  The CLI\n"
    "exposes this as:  python -m repro.cli compress FILE --shape ... \\\n"
    "    --tol 1e-4 --out archive/ --out-of-core"
)
