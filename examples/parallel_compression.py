#!/usr/bin/env python3
"""Distributed ST-HOSVD on the simulated MPI runtime.

Runs the parallel algorithm (Alg. 3: fiber redistribution, local LQ,
butterfly TSQR, redundant SVD, TTM with reduce-scatter) on 8 simulated
ranks arranged in a 2x2x1x2 grid, with the alpha-beta-gamma cost model
attached so each rank carries a logical clock.  Prints the decomposition
quality and the slowest rank's per-phase modeled time breakdown — the
same quantity the paper's stacked-bar figures report.

Run:  python examples/parallel_compression.py
"""

import numpy as np

from repro import sthosvd_parallel
from repro.data import low_rank_tensor
from repro.dist import DistributedTensor, GridComms, ProcessorGrid
from repro.mpi import run_spmd, CostModel, CommCosts, ComputeRates
from repro.util import format_table

GRID = (2, 2, 1, 2)
X = low_rank_tensor((32, 32, 24, 32), (5, 6, 4, 5), rng=7, noise=1e-9)


def program(comm):
    """The SPMD program: every rank executes this function."""
    comms = GridComms(comm, ProcessorGrid(GRID))

    # Each rank takes its block of the (here replicated) input tensor.
    dt = DistributedTensor.from_full(comms, X.data)

    result = sthosvd_parallel(dt, tol=1e-6, method="qr", mode_order="backward")

    # Factor matrices are replicated; the core keeps the block
    # distribution.  Gather it to compute the true error (small data).
    tucker = result.to_tucker()
    return {
        "rank": comm.rank,
        "local_core_shape": result.core.local.shape,
        "ranks": result.ranks,
        "error": tucker.rel_error(X),
        "compression": result.compression_ratio(),
        "breakdown": comm.clock.breakdown() if comm.clock else {},
    }


# Andes-like machine parameters (per-core rates, network alpha/beta).
model = CostModel(
    comm=CommCosts(alpha=2e-6, beta=1 / 12e9),
    compute=ComputeRates(double=6.4e9, single=13e9),
)

res = run_spmd(program, nprocs=8, cost_model=model)

out = res[0]
print(f"grid:              {GRID} = {np.prod(GRID)} ranks")
print(f"tucker ranks:      {out['ranks']}")
print(f"compression:       {out['compression']:.0f}x")
print(f"relative error:    {out['error']:.2e}")
print(f"rank 0 core block: {out['local_core_shape']}")

print()
bd = res.slowest_rank_breakdown()
rows = [[phase, seconds * 1e3] for phase, seconds in sorted(bd.items())]
print(format_table(
    ["phase", "modeled ms"], rows,
    title=f"Slowest-rank breakdown (logical clocks, total {res.slowest_time*1e3:.2f} ms)",
))

# The same program runs unchanged on any grid whose size matches the
# rank count — try GRID = (8, 1, 1, 1) or (1, 1, 1, 8) and watch the
# redistribution cost move between modes.
