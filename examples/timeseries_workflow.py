#!/usr/bin/env python3
"""End-to-end simulation-archive workflow: per-step dumps to Tucker archive.

The combustion datasets the paper compresses are born as one file per
simulation time step.  This example walks the complete production
pipeline:

1. a fake simulation dumps per-step raw files;
2. the steps are assembled (streaming) into one natural-order tensor
   file — the paper's "use the first 100 of the available 400 time
   steps" idiom included;
3. the file is compressed out of core with automatic variant selection
   and a checkpoint directory (interruption-safe);
4. the archive is queried: a single time step is reconstructed via
   partial reconstruction, without expanding the whole tensor.

Run:  python examples/timeseries_workflow.py
"""

import os
import tempfile

from repro.cli import save_archive, load_archive
from repro.core import choose_variant, sthosvd_out_of_core, streaming_rel_error
from repro.data import (
    assemble_timesteps,
    hcci_surrogate,
    save_timesteps,
)
from repro.data.outofcore import OutOfCoreTensor
from repro.util import format_table

TOL = 1e-4

with tempfile.TemporaryDirectory() as root:
    # --- 1. the "simulation" writes per-step files -----------------------
    sim = hcci_surrogate(shape=(40, 40, 20, 48))  # last mode = 48 steps
    steps_dir = os.path.join(root, "dump")
    paths = save_timesteps(sim, steps_dir)
    print(f"simulation dumped {len(paths)} step files "
          f"({os.path.getsize(paths[0]) / 1e3:.0f} KB each)")

    # --- 2. assemble the first 32 steps, streaming -----------------------
    raw = os.path.join(root, "run.bin")
    ooc = assemble_timesteps(steps_dir, raw, steps=range(32))
    print(f"assembled tensor: {ooc.shape} "
          f"({os.path.getsize(raw) / 1e6:.1f} MB on disk)")

    # --- 3. compress out of core with auto-selected variant --------------
    variant = choose_variant(TOL)
    print(f"\ntolerance {TOL:.0e} -> variant {variant.label} "
          f"(floor {variant.floor:.1e}, margin {variant.margin:.0f}x)")
    res = sthosvd_out_of_core(
        raw, ooc.shape, precision=variant.precision, tol=TOL,
        method=variant.method, mode_order="backward",
        checkpoint_dir=os.path.join(root, "ckpt"),
    )
    err = streaming_rel_error(res.tucker.astype("double"),
                              OutOfCoreTensor(raw, ooc.shape))
    print(format_table(
        ["ranks", "compression", "est err", "actual err"],
        [[str(res.ranks), res.tucker.compression_ratio(),
          res.estimated_rel_error(), err]],
    ))

    # --- 4. archive + single-step query ----------------------------------
    arch = os.path.join(root, "archive")
    save_archive(res.tucker, arch, extra={"method": res.method})
    tucker, manifest = load_archive(arch)
    t = 17
    frame = tucker.reconstruct_slice(
        (slice(None), slice(None), slice(None), t)
    )
    print(f"\nreconstructed step {t} only: shape {frame.shape} "
          f"({frame.nbytes / 1e3:.0f} KB touched, vs "
          f"{os.path.getsize(raw) / 1e6:.1f} MB full tensor)")
    # verify against the original step file
    import numpy as np

    ref = np.fromfile(paths[t], dtype=np.float64).reshape(
        sim.shape[:3], order="F"
    )
    rel = float(
        np.linalg.norm(frame.data[:, :, :, 0] - ref) / np.linalg.norm(ref)
    )
    print(f"step-{t} relative error: {rel:.2e} (within the archive tolerance)")
    assert rel <= 5 * TOL
