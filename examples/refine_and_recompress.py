#!/usr/bin/env python3
"""Archive lifecycle: one tight master, many derived fidelities.

Production compression workflows keep a single tight-tolerance "master"
archive and derive looser (smaller) versions from it on demand —
recompression needs only the archive, never the original data.  When a
fixed-budget rank is required (e.g. a bandwidth cap), HOOI refinement
squeezes extra accuracy out of the same ranks.

This example:

1. builds a 1e-6 master archive of a combustion surrogate;
2. derives 1e-4 and 1e-2 versions by recompression, comparing each
   against compressing the original directly;
3. refines a rank-limited version with HOOI and shows the fit gain.

Run:  python examples/refine_and_recompress.py
"""

from repro.core import hooi, recompress, sthosvd
from repro.data import hcci_surrogate
from repro.util import format_table

X = hcci_surrogate(shape=(44, 44, 22, 44))

# --- 1. the master ----------------------------------------------------------
master = sthosvd(X, tol=1e-6, method="qr")
print(f"master archive: ranks {master.ranks}, "
      f"{master.tucker.compression_ratio():.1f}x, "
      f"error {master.tucker.rel_error(X):.2e}\n")

# --- 2. derived fidelities --------------------------------------------------
rows = []
prior = master.tucker.rel_error(X)
for tol in (1e-4, 1e-2):
    derived, bound = recompress(master.tucker, tol=tol, prior_rel_error=prior)
    direct = sthosvd(X, tol=tol, method="qr")
    rows.append([
        f"{tol:.0e}",
        str(derived.ranks), derived.rel_error(X),
        str(direct.ranks), direct.tucker.rel_error(X),
        bound,
    ])
print(format_table(
    ["target", "recompressed ranks", "err", "direct ranks", "err ",
     "bound"],
    rows,
    title="Derived archives vs compressing the original directly",
))
print("(identical ranks, same-order errors — and recompression never\n"
      " touched the original tensor)\n")

# --- 3. HOOI refinement at a hard rank budget -------------------------------
budget = (6, 6, 5, 6)
seed = sthosvd(X, ranks=budget, method="qr")
refined = hooi(X, ranks=budget, method="qr", max_iters=15)
print(format_table(
    ["algorithm", "ranks", "rel error"],
    [
        ["ST-HOSVD (quasi-optimal)", str(budget), seed.tucker.rel_error(X)],
        ["HOOI (refined)", str(budget), refined.tucker.rel_error(X)],
    ],
    title=f"Fixed rank budget {budget}",
))
gain = seed.tucker.rel_error(X) / refined.tucker.rel_error(X)
print(f"\nHOOI converged in {refined.iterations} sweeps "
      f"(fit {refined.final_fit:.8f}), error ratio {gain:.3f}x.")
