#!/usr/bin/env python3
"""Plan a large-scale run with the performance model.

Uses the alpha-beta-gamma machine model (calibrated to the paper's Andes
measurements) to answer the practical question the paper's Figs. 3-4
answer: *given my tensor, how many nodes should I use, and which
method/precision variant will be fastest at my accuracy target?*

Run:  python examples/scaling_study.py [I0 I1 ...] [--ranks R0 R1 ...]
"""

import argparse

from repro.perf import (
    ANDES,
    simulate_sthosvd,
    strong_scaling_grid,
    STRONG_SCALING_GRIDS,
    variant_label,
)
from repro.util import format_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("shape", nargs="*", type=int, default=[256, 256, 256, 256])
    ap.add_argument("--ranks", nargs="*", type=int, default=[32, 32, 32, 32])
    args = ap.parse_args()
    shape, ranks = tuple(args.shape), tuple(args.ranks)
    if len(shape) != 4 or len(ranks) != 4:
        ap.error("this example uses the paper's 4-mode Table-1 grids")

    print(f"tensor {shape} -> core {ranks} on Andes (modeled)\n")

    rows = []
    best = {}
    for cores in sorted(STRONG_SCALING_GRIDS):
        row = [cores]
        for method in ("qr", "gram"):
            grid = strong_scaling_grid(cores, method)
            order = "backward" if method == "qr" else "forward"
            for prec in ("single", "double"):
                run = simulate_sthosvd(
                    shape, ranks, grid, method=method, precision=prec,
                    mode_order=order, machine=ANDES,
                )
                row.append(run.total_seconds)
                best[(cores, method, prec)] = run
        rows.append(row)

    headers = ["cores"] + [
        variant_label(m, p)
        for m in ("qr", "gram")
        for p in ("single", "double")
    ]
    print(format_table(headers, rows, title="Modeled time [s] per variant (Table-1 grids)"))

    # Advice, paper-style: fastest variant per accuracy regime.
    print(
        "\nPicking a variant (Sec. 5):\n"
        "  tolerance > 1e-3       : Gram single (fastest, accurate enough)\n"
        "  1e-3 .. ~1e-7          : QR single  (Gram single past its floor)\n"
        "  ~1e-7 .. 1e-8          : Gram double\n"
        "  tighter than 1e-8      : QR double  (the only stable choice)"
    )

    # Parallel efficiency of the headline variant.
    t32 = best[(32, "qr", "single")].total_seconds
    print("\nQR-single parallel efficiency vs 32 cores:")
    eff_rows = []
    for cores in sorted(STRONG_SCALING_GRIDS):
        t = best[(cores, "qr", "single")].total_seconds
        eff_rows.append([cores, t, 100.0 * t32 / t / (cores / 32)])
    print(format_table(["cores", "time [s]", "efficiency %"], eff_rows))


if __name__ == "__main__":
    main()
