#!/usr/bin/env python3
"""Fixed-rank video compression (the paper's Sec. 4.5.3 video experiment).

Video tensors have plateau spectra (Fig. 7): ~2 orders of fast singular
value decay, then a long flat tail.  That means (a) large compression is
available only at loose error targets, and (b) the achievable error sits
far above every variant's noise floor — so ALL method/precision variants
deliver the same accuracy and the cheapest one (Gram-single) wins.

The paper compresses 1080x1920x3x2200 video to ranks 200x200x3x200
(570x); this example does the proportionate reduction on the surrogate,
saves/loads the result with the TuckerMPI-style raw I/O, and reports
per-frame reconstruction quality.

Run:  python examples/video_compression.py
"""

import os
import tempfile

import numpy as np

from repro import sthosvd
from repro.data import video_surrogate, save_raw, load_raw
from repro.util import format_table

SHAPE = (36, 64, 3, 96)  # height x width x channel x frame
RANKS = (7, 12, 3, 18)  # ~same reduction factors as the paper's 570x setup

X = video_surrogate(shape=SHAPE)
print(f"video surrogate: {SHAPE} ({X.nbytes / 1e6:.1f} MB)\n")

rows = []
results = {}
for method in ("gram", "qr"):
    for precision in ("single", "double"):
        res = sthosvd(X, ranks=RANKS, method=method, precision=precision)
        err = res.tucker.rel_error(X)
        results[(method, precision)] = res
        rows.append(
            [f"{method}-{precision}", res.tucker.compression_ratio(), err,
             res.flops.total / 1e6]
        )

print(format_table(
    ["variant", "compression", "rel error", "Mflop"],
    rows,
    title=f"Fixed ranks {RANKS}: every variant, same error (cf. Fig. 10)",
))

errs = [r[2] for r in rows]
assert max(errs) / min(errs) < 1.05, "variants should agree on this data"
print(
    "\nAll four variants achieve the same error -> use the cheapest\n"
    "(Gram-single: half the flops of QR, at half-precision speed).\n"
)

# --- per-frame quality of the reconstruction -----------------------------
best = results[("gram", "single")]
recon = best.tucker.reconstruct()
frame_errs = []
for f in (0, SHAPE[3] // 2, SHAPE[3] - 1):
    a = X.data[:, :, :, f].astype(np.float64)
    b = recon.data[:, :, :, f].astype(np.float64)
    rel = np.linalg.norm((a - b).ravel()) / np.linalg.norm(a.ravel())
    frame_errs.append([f, rel])
print(format_table(["frame", "rel error"], frame_errs, title="Per-frame quality"))

# --- round-trip through the TuckerMPI-style raw format --------------------
with tempfile.TemporaryDirectory() as d:
    path = os.path.join(d, "core.bin")
    save_raw(best.tucker.core, path)
    core_back = load_raw(path)
    assert core_back == best.tucker.core
    print(f"\ncore tensor round-tripped through raw binary ({os.path.getsize(path)} bytes)")
