#!/usr/bin/env python3
"""Automatic processor-grid tuning (replacing the paper's hand-tuning).

The paper picks its grids manually (Table 1) using two rules of thumb
from Sec. 4.2: give the first-processed mode a grid dimension of 1, and
front-load small dimensions onto early modes.  This example lets the
tuner search all factorizations of P through the performance model and
shows that (a) the rules of thumb emerge from the search, and (b) the
hand-picked Table-1 grids were already near-optimal.

Run:  python examples/grid_tuning.py
"""

from repro.perf import (
    ANDES,
    CASCADE_LAKE,
    simulate_sthosvd,
    strong_scaling_grid,
    tune_grid,
)
from repro.util import format_table

SHAPE, RANKS = (256,) * 4, (32,) * 4

# --- Andes: tuned vs Table 1 ------------------------------------------------
rows = []
for cores in (32, 128, 512, 2048):
    t1_grid = strong_scaling_grid(cores, "qr")
    t1 = simulate_sthosvd(SHAPE, RANKS, t1_grid, method="qr",
                          mode_order="backward", machine=ANDES)
    best = tune_grid(SHAPE, RANKS, cores, method="qr", machine=ANDES)[0]
    rows.append([
        cores, "x".join(map(str, t1_grid)), t1.total_seconds,
        "x".join(map(str, best.grid)) + f" ({best.mode_order})", best.seconds,
        100 * (t1.total_seconds / best.seconds - 1),
    ])
print(format_table(
    ["cores", "Table-1 grid", "T1 [s]", "tuned grid", "tuned [s]", "gain %"],
    rows,
    title="QR double, 256^4 -> 32^4 on Andes: hand-tuned vs searched",
))

# --- Cascade Lake: the geqr/gelq asymmetry drives the choice -----------------
print()
best3 = tune_grid((300,) * 4, (30,) * 4, 16, method="qr",
                  machine=CASCADE_LAKE, top_k=3)
worst = tune_grid((300,) * 4, (30,) * 4, 16, method="qr",
                  machine=CASCADE_LAKE, top_k=10**6)[-1]
rows = [["best " + "x".join(map(str, c.grid)), c.mode_order, c.seconds]
        for c in best3]
rows.append(["worst " + "x".join(map(str, worst.grid)), worst.mode_order,
             worst.seconds])
print(format_table(
    ["grid", "ordering", "modeled s"],
    rows,
    title="Cascade Lake, 16 procs: the search rediscovers Sec. 4.2's rules",
))
print(
    "\nEvery top configuration is backward ordering with P_3 = 1 — the\n"
    "geqr-over-gelq rule the paper derived by hand.  The spread between\n"
    "best and worst grid is the cost of ignoring it."
)

# --- memory-constrained tuning ------------------------------------------------
print()
limit = 2.6 * 2**30  # tight enough to forbid first-mode redistribution
constrained = tune_grid(SHAPE, RANKS, 32, method="qr", machine=ANDES,
                        memory_limit_bytes=limit, top_k=3)
rows = [["x".join(map(str, c.grid)), c.mode_order, c.seconds,
         c.peak_bytes / 2**30] for c in constrained]
print(format_table(
    ["grid", "ordering", "modeled s", "GiB/rank"],
    rows,
    title=f"Same tensor, 32 cores, memory capped at {limit/2**30:.1f} GiB/rank",
))
